//! Model-based property testing: the full disaggregated memory system
//! against a plain in-memory reference model, under random operation
//! sequences. Whatever the tiering, compression, batching, placement and
//! eviction machinery do internally, the observable key-value behaviour
//! must match a `HashMap`.
//!
//! # Determinism
//!
//! Every case is derived from `(base seed, test name, case index)`, so a
//! run is bit-for-bit reproducible. The base seed is pinned to
//! [`MODEL_SEED`] below; `DMEM_PROPTEST_SEED=<decimal or 0x-hex>` on the
//! environment overrides it (that is what a failure banner's replay line
//! sets). There is no `proptest-regressions` persistence file: the runner
//! never reads or writes one, so historical shrunk cases are promoted to
//! explicit `#[test]`s here instead (see `regression_*` below).

use memory_disaggregation::prelude::*;
use proptest::prelude::*;
use std::collections::HashMap;

/// Base RNG seed for this suite. Changing it changes every generated
/// case; bump it deliberately (and note why) rather than accidentally.
const MODEL_SEED: u64 = 0x5EED_D15A_0661_0001;

/// Suite config: explicit case count, pinned seed, env override wins.
fn model_config(cases: u32) -> ProptestConfig {
    // `with_cases` already absorbed `DMEM_PROPTEST_SEED` if it was set;
    // only pin MODEL_SEED when no override is present.
    let config = ProptestConfig::with_cases(cases);
    if std::env::var_os("DMEM_PROPTEST_SEED").is_some() {
        config
    } else {
        config.seed(MODEL_SEED)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put { server: usize, key: u64, len: usize, pref: u8 },
    PutBatch { server: usize, base: u64, count: usize },
    Get { server: usize, key: u64 },
    Delete { server: usize, key: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 0u64..24, 1usize..6000, 0u8..4).prop_map(|(server, key, len, pref)| Op::Put {
            server,
            key,
            len,
            pref
        }),
        (0usize..4, 0u64..16, 1usize..6).prop_map(|(server, base, count)| Op::PutBatch {
            server,
            base,
            count
        }),
        (0usize..4, 0u64..24).prop_map(|(server, key)| Op::Get { server, key }),
        (0usize..4, 0u64..24).prop_map(|(server, key)| Op::Delete { server, key }),
    ]
}

fn pref_of(raw: u8) -> TierPreference {
    match raw {
        0 => TierPreference::Auto,
        1 => TierPreference::NodeShared,
        2 => TierPreference::Remote,
        _ => TierPreference::Disk,
    }
}

fn value_for(server: usize, key: u64, len: usize) -> Vec<u8> {
    // Deterministic, content varies by (server, key, len).
    (0..len)
        .map(|i| (server as u64 * 31 + key * 17 + i as u64) as u8)
        .collect()
}

/// Promoted from the old `model_based.proptest-regressions` file: a
/// single pinned-tier put of 4097 bytes (one byte past the 4 KiB slab
/// class) once diverged from the model. Kept as an explicit test so the
/// case survives without a persistence file.
#[test]
fn regression_single_nodeshared_put_just_over_4k() {
    let mut config = ClusterConfig::small();
    config.node.recv_pool = ByteSize::from_kib(128);
    config.server.donation = DonationPolicy::fixed(0.05);
    let dm = DisaggregatedMemory::new(config).unwrap();
    let server = dm.servers()[0];
    let value = value_for(0, 0, 4097);
    dm.put_pref(server, 0, value.clone(), pref_of(1)).unwrap();
    assert_eq!(dm.get(server, 0).unwrap(), value);
    assert_eq!(dm.stats().entries, 1);
}

proptest! {
    #![proptest_config(model_config(24))]

    #[test]
    fn system_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut config = ClusterConfig::small();
        // Small pools so ops regularly cross tier boundaries.
        config.node.recv_pool = ByteSize::from_kib(128);
        config.server.donation = DonationPolicy::fixed(0.05);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let servers: Vec<ServerId> = dm.servers().to_vec();
        let mut model: HashMap<(usize, u64), Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { server, key, len, pref } => {
                    let value = value_for(server, key, len);
                    dm.put_pref(servers[server], key, value.clone(), pref_of(pref)).unwrap();
                    model.insert((server, key), value);
                }
                Op::PutBatch { server, base, count } => {
                    let batch: Vec<(u64, Vec<u8>)> = (0..count as u64)
                        .map(|i| (base + i, value_for(server, base + i, 512 + i as usize)))
                        .collect();
                    for (k, v) in &batch {
                        model.insert((server, *k), v.clone());
                    }
                    dm.put_batch(servers[server], batch, TierPreference::Auto).unwrap();
                }
                Op::Get { server, key } => {
                    let got = dm.get(servers[server], key).ok();
                    prop_assert_eq!(
                        got.as_ref(),
                        model.get(&(server, key)),
                        "get({}, {}) diverged", server, key
                    );
                }
                Op::Delete { server, key } => {
                    let deleted = dm.delete(servers[server], key).is_ok();
                    let existed = model.remove(&(server, key)).is_some();
                    prop_assert_eq!(deleted, existed, "delete({}, {}) diverged", server, key);
                }
            }
        }
        // Closing audit: every model entry readable with exact contents,
        // and the system tracks exactly the model's population.
        for ((server, key), value) in &model {
            let got = dm.get(servers[*server], *key).unwrap();
            prop_assert_eq!(&got, value);
        }
        prop_assert_eq!(dm.stats().entries, model.len());
    }

    #[test]
    fn model_holds_through_crash_repair_cycles(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        crash_node in 1u32..4,
    ) {
        use memory_disaggregation::sim::FailureEvent;
        // Remote-only cluster: every entry is triple-replicated, so one
        // crash + repair cycle must never lose data owned by other nodes.
        let mut config = ClusterConfig::small();
        config.nodes = 6;
        config.group_size = 6;
        config.server.donation = DonationPolicy::fixed(0.0);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let servers: Vec<ServerId> = dm.servers().to_vec();
        let mut model: HashMap<(usize, u64), Vec<u8>> = HashMap::new();

        // Only exercise servers on node 0, then crash a *different* node.
        for op in ops {
            match op {
                Op::Put { key, len, .. } => {
                    let value = value_for(0, key, len);
                    dm.put(servers[0], key, value.clone()).unwrap();
                    model.insert((0, key), value);
                }
                Op::PutBatch { base, count, .. } => {
                    let batch: Vec<(u64, Vec<u8>)> = (0..count as u64)
                        .map(|i| (base + i, value_for(0, base + i, 256)))
                        .collect();
                    for (k, v) in &batch {
                        model.insert((0, *k), v.clone());
                    }
                    dm.put_batch(servers[0], batch, TierPreference::Auto).unwrap();
                }
                Op::Get { key, .. } => {
                    let got = dm.get(servers[0], key).ok();
                    prop_assert_eq!(got.as_ref(), model.get(&(0, key)));
                }
                Op::Delete { key, .. } => {
                    let deleted = dm.delete(servers[0], key).is_ok();
                    prop_assert_eq!(deleted, model.remove(&(0, key)).is_some());
                }
            }
        }

        let victim = NodeId::new(crash_node);
        dm.failures().inject_now(FailureEvent::NodeDown(victim));
        dm.failures().inject_now(FailureEvent::NodeUp(victim));
        dm.handle_node_restart(victim).unwrap();
        dm.repair_replicas();

        for ((_, key), value) in &model {
            let got = dm.get(servers[0], *key).unwrap();
            prop_assert_eq!(&got, value, "entry {} lost through crash/repair", key);
        }
    }
}
