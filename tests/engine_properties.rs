//! Property tests on the paging engine: for random access streams over
//! every system, the engine must preserve its structural invariants.

use memory_disaggregation::prelude::*;
use memory_disaggregation::swap::{build_system, SystemKind};
use memory_disaggregation::types::DistributionRatio;
use proptest::prelude::*;

fn all_systems() -> Vec<SystemKind> {
    vec![
        SystemKind::Linux,
        SystemKind::Zswap,
        SystemKind::Nbdx,
        SystemKind::Infiniswap,
        SystemKind::fastswap_default(),
        SystemKind::FastSwap {
            ratio: DistributionRatio::FS_5_5,
            compression: CompressionMode::TwoGranularity,
            pbs: false,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn resident_set_never_exceeds_frames(
        accesses in proptest::collection::vec((0u64..96, any::<bool>()), 1..300),
        system_idx in 0usize..6,
    ) {
        let mut scale = SwapScale::small();
        scale.working_set_pages = 96;
        scale.memory_fraction = 0.33; // 32 frames
        let kind = all_systems()[system_idx];
        let mut engine = build_system(kind, &scale).unwrap();
        let frames = scale.frames();
        for (pfn, write) in accesses {
            engine.access(pfn, write).unwrap();
            prop_assert!(
                engine.resident_pages() <= frames,
                "{}: resident {} > frames {frames}",
                engine.system_name(),
                engine.resident_pages()
            );
        }
        let stats = engine.stats();
        // Conservation: every access is a hit, a writeback-buffer hit, or
        // one of the fault kinds.
        prop_assert!(stats.major_faults + stats.minor_faults + stats.writeback_hits <= stats.accesses);
        // Clean evictions never exceed total evictions implied by faults.
        prop_assert!(stats.swap_ins >= stats.major_faults, "{stats:?}");
    }

    #[test]
    fn time_is_monotone_and_positive(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..100),
    ) {
        let mut scale = SwapScale::small();
        scale.working_set_pages = 64;
        let mut engine = build_system(SystemKind::fastswap_default(), &scale).unwrap();
        let mut last = engine.clock().now();
        for (pfn, write) in accesses {
            engine.access(pfn, write).unwrap();
            let now = engine.clock().now();
            prop_assert!(now > last, "every access must consume virtual time");
            last = now;
        }
    }

    #[test]
    fn identical_streams_identical_outcomes(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..120),
    ) {
        let mut scale = SwapScale::small();
        scale.working_set_pages = 64;
        let run = |accesses: &[(u64, bool)]| {
            let mut engine = build_system(SystemKind::fastswap_default(), &scale).unwrap();
            for &(pfn, write) in accesses {
                engine.access(pfn, write).unwrap();
            }
            (engine.stats(), engine.clock().now())
        };
        prop_assert_eq!(run(&accesses), run(&accesses));
    }
}
