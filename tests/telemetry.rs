//! Telemetry integration tests (ISSUE 8, observability).
//!
//! Pins the deterministic time-series pipeline end to end: the rack
//! timeline must be byte-identical across reruns and worker counts, the
//! chaos `--faults` alert log must fire burn-rate and retry-storm
//! alerts whose windows overlap the injected fault schedule on every
//! seed, trace/timeline JSONL exports must survive a round trip through
//! `dmem_sim::jsonlite`, and a forced invariant violation must produce
//! the same flight-recorder dump run after run.

use memory_disaggregation::chaos::{run_schedule, run_seed, ChaosSettings};
use memory_disaggregation::rack::{run_rack, RackConfig};
use memory_disaggregation::sim::chaos::{ChaosConfig, ChaosSchedule, ChaosStep};
use memory_disaggregation::sim::{jsonlite, FailureEvent, SimDuration};
use memory_disaggregation::types::{NodeId, ReplicationFactor, ServerId};

fn faults_config() -> ChaosConfig {
    ChaosConfig {
        fabric_faults: true,
        ..ChaosConfig::default()
    }
}

fn faults_settings() -> ChaosSettings {
    ChaosSettings {
        faults: true,
        ..ChaosSettings::default()
    }
}

/// Parses the `[start..end ns)` window bounds out of an alert log line
/// (`w3 [150..200ns) FIRING name: detail`).
fn window_bounds(line: &str) -> (u64, u64) {
    let open = line.find('[').expect("alert line has window bounds");
    let close = line.find("ns)").expect("alert line has window bounds");
    let (a, b) = line[open + 1..close]
        .split_once("..")
        .expect("bounds are start..end");
    (a.parse().unwrap(), b.parse().unwrap())
}

/// The acceptance gate: on every seed of the CI sweep, the fault-mode
/// alert engine must flag at least one SLO burn-rate alert and one
/// retry-storm alert, and at least one firing window of each kind must
/// overlap the span of virtual instants where faults were injected —
/// the log pinpoints the injected trouble, not random background noise.
#[test]
fn faults_alerts_pinpoint_injected_windows() {
    let (config, settings) = (faults_config(), faults_settings());
    for seed in 0..32u64 {
        let stats = run_seed(seed, &config, &settings)
            .unwrap_or_else(|r| panic!("seed {seed:#x} violated an invariant:\n{r}"));
        assert!(
            !stats.fault_instants.is_empty(),
            "seed {seed:#x}: faults mode injected no faults"
        );
        let (lo, hi) = (
            *stats.fault_instants.iter().min().unwrap(),
            *stats.fault_instants.iter().max().unwrap(),
        );
        for kind in ["retry-backoff-burn", "retry-storm"] {
            let overlapping = stats
                .alert_log
                .iter()
                .filter(|l| l.contains("FIRING") && l.contains(kind))
                .filter(|l| {
                    let (start, end) = window_bounds(l);
                    start <= hi && end > lo
                })
                .count();
            assert!(
                overlapping >= 1,
                "seed {seed:#x}: no firing {kind} window overlaps injected faults \
                 [{lo}..{hi}]ns; log:\n{}",
                stats.alert_log.join("\n")
            );
        }
    }
}

/// Same seed, same digest: the alert log is a pure function of the
/// schedule, immune to wall-clock and allocation order.
#[test]
fn faults_alert_log_is_reproducible() {
    let (config, settings) = (faults_config(), faults_settings());
    let a = run_seed(7, &config, &settings).expect("seed 7 is clean");
    let b = run_seed(7, &config, &settings).expect("seed 7 is clean");
    assert!(a.telemetry_windows > 0, "faults mode must capture windows");
    assert_eq!(a.alert_digest, b.alert_digest);
    assert_eq!(a.alert_log, b.alert_log);
}

/// The rack timeline is part of the determinism contract: byte-identical
/// CSV and JSONL across reruns and across worker counts 1/2/4/8.
#[test]
fn rack_timeline_identical_across_workers_and_reruns() {
    let config = RackConfig::smoke();
    let base = run_rack(&config, 1);
    assert!(!base.timeline.windows.is_empty(), "vacuous: no windows");
    for workers in [1, 2, 4, 8] {
        let other = run_rack(&config, workers);
        assert_eq!(
            base.timeline.to_csv(),
            other.timeline.to_csv(),
            "timeline CSV diverged at workers={workers}"
        );
        assert_eq!(
            base.timeline.to_jsonl(),
            other.timeline.to_jsonl(),
            "timeline JSONL diverged at workers={workers}"
        );
    }
}

/// fig4_rack's JSONL exports must survive a round trip through the
/// in-tree parser: every trace line parses, the span count matches, the
/// `(at_ns, shard, seq)` mailbox ordering survives, and the timeline's
/// per-window counters re-sum to the report totals.
#[test]
fn fig4_rack_jsonl_round_trips_through_jsonlite() {
    let report = run_rack(&RackConfig::smoke(), 2);

    let lines: Vec<&str> = report.trace_jsonl.lines().collect();
    assert!(!lines.is_empty(), "vacuous: empty trace");
    let mut prev = (0u64, 0f64, 0f64);
    for (i, line) in lines.iter().enumerate() {
        let doc = jsonlite::parse(line)
            .unwrap_or_else(|e| panic!("trace line {i} is not valid JSON: {e}"));
        let field = |k: &str| {
            doc.get(k)
                .and_then(jsonlite::Value::as_f64)
                .unwrap_or_else(|| panic!("trace line {i} lacks numeric {k}"))
        };
        assert!(
            doc.get("kind").and_then(jsonlite::Value::as_str).is_some(),
            "trace line {i} lacks string kind"
        );
        let key = (field("at_ns") as u64, field("shard"), field("seq"));
        assert!(
            (key.0, key.1, key.2) >= prev,
            "trace line {i} breaks (at_ns, shard, seq) order"
        );
        prev = key;
    }

    let mut access_total = 0u64;
    let mut prev_window = -1i64;
    for (i, line) in report.timeline.to_jsonl().lines().enumerate() {
        let doc = jsonlite::parse(line)
            .unwrap_or_else(|e| panic!("timeline line {i} is not valid JSON: {e}"));
        let window = doc
            .get("window")
            .and_then(jsonlite::Value::as_f64)
            .expect("window index") as i64;
        assert!(window > prev_window, "timeline windows out of order");
        prev_window = window;
        if let Some(counters) = doc.get("counters") {
            if let Some(v) = counters
                .get("rack.access.total")
                .and_then(jsonlite::Value::as_f64)
            {
                access_total += v as u64;
            }
        }
    }
    assert_eq!(
        access_total, report.accesses,
        "per-window access deltas must re-sum to the report total"
    );
}

/// A forced convergence violation (factor-1 data on a crashed node)
/// must attach a flight-recorder dump, and the dump must be
/// byte-identical run after run — it is a pure function of the schedule.
#[test]
fn flight_dump_is_deterministic() {
    let config = ChaosConfig {
        nodes: 5,
        servers_per_node: 1,
        steps: 40,
        keys: 8,
        ..ChaosConfig::default()
    };
    let settings = ChaosSettings {
        replication: ReplicationFactor::SINGLE,
        ..ChaosSettings::default()
    };
    let s0 = ServerId::new(NodeId::new(0), 0);
    let mut steps = Vec::new();
    for key in 0..8 {
        steps.push(ChaosStep::Put {
            server: s0,
            key,
            len: 16 * 1024,
        });
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeDown(node)));
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeUp(node)));
    }
    steps.push(ChaosStep::Maintain {
        horizon: SimDuration::from_millis(250),
    });
    let schedule = ChaosSchedule { seed: 0xF1, steps };

    let dump_of = || {
        let violation = run_schedule(&schedule, &config, &settings)
            .expect_err("factor-1 data on a crashed node must violate convergence");
        violation.flight_dump.expect("violation carries a dump")
    };
    let (a, b) = (dump_of(), dump_of());
    assert!(
        a.starts_with("=== flight recorder dump:"),
        "dump has the canonical header; got:\n{a}"
    );
    assert!(a.contains("inject"), "dump shows the injected fault");
    assert!(a.contains("violation"), "dump shows the violation note");
    assert_eq!(a, b, "flight dump must be byte-identical across reruns");
}
