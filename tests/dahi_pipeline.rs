//! DAHI integration: the rdd engine over the disaggregated memory core.

use memory_disaggregation::rdd::job::{
    run_iterative_job, DatasetSize, JobSpec, SpillTier,
};

#[test]
fn fig10_order_svm_kmeans_lr_cc() {
    // The paper's Fig. 10 speedup order at medium datasets:
    // SVM > KMeans > LR > CC.
    let speedup = |name: &str| {
        let spec = JobSpec::named(name).unwrap();
        let vanilla =
            run_iterative_job(&spec, DatasetSize::Medium, SpillTier::VanillaDisk).unwrap();
        let dahi = run_iterative_job(&spec, DatasetSize::Medium, SpillTier::Dahi).unwrap();
        vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64
    };
    let svm = speedup("SVM");
    let kmeans = speedup("KMeans");
    let lr = speedup("LogisticRegression");
    let cc = speedup("ConnectedComponents");
    assert!(
        svm > kmeans && kmeans > lr && lr > cc,
        "order violated: SVM {svm:.1} KMeans {kmeans:.1} LR {lr:.1} CC {cc:.1}"
    );
    assert!(cc > 1.1, "even CC must benefit: {cc:.2}x");
}

#[test]
fn all_workloads_larger_datasets_larger_speedups() {
    for spec in JobSpec::fig10_suite() {
        let speedup = |size| {
            let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk).unwrap();
            let dahi = run_iterative_job(&spec, size, SpillTier::Dahi).unwrap();
            vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64
        };
        let medium = speedup(DatasetSize::Medium);
        let large = speedup(DatasetSize::Large);
        assert!(
            large > medium,
            "{}: large {large:.2}x <= medium {medium:.2}x",
            spec.name
        );
    }
}

#[test]
fn results_identical_when_fully_cached() {
    // Both tiers run the exact same deterministic computation; with no
    // spills, stats and timing coincide.
    let spec = JobSpec::named("ConnectedComponents").unwrap();
    let vanilla = run_iterative_job(&spec, DatasetSize::Small, SpillTier::VanillaDisk).unwrap();
    let dahi = run_iterative_job(&spec, DatasetSize::Small, SpillTier::Dahi).unwrap();
    assert_eq!(vanilla.cache.spills, 0);
    assert_eq!(dahi.cache.spills, 0);
    assert_eq!(vanilla.cache.memory_hits, dahi.cache.memory_hits);
}

#[test]
fn dahi_spills_land_in_disaggregated_memory_not_disk() {
    let spec = JobSpec::named("SVM").unwrap();
    let result = run_iterative_job(&spec, DatasetSize::Large, SpillTier::Dahi).unwrap();
    assert!(result.cache.spills > 0, "large dataset must spill");
    assert!(result.cache.spill_hits > 0, "iterations re-read spilled blocks");
    // A completion time in the disk regime would exceed seconds; DAHI
    // stays well under the vanilla run's.
    let vanilla = run_iterative_job(&spec, DatasetSize::Large, SpillTier::VanillaDisk).unwrap();
    assert!(result.completion.as_secs_f64() < vanilla.completion.as_secs_f64() / 2.0);
}
