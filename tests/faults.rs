//! Fabric fault-injection integration tests (ROADMAP "failure
//! semantics").
//!
//! These drive the chaos harness with the seeded fault layer installed
//! (`--faults` mode): verb drops, delays and duplication, host-pair
//! partitions and QP breaks. Every seed must hold the original cluster
//! invariants plus the two fault-mode invariants (reads never return
//! wrong or stale data; suspect primaries are repaired or evicted), and
//! the whole apparatus must stay byte-for-byte deterministic: same seed,
//! same retries, same digests, run after run and across parallel jobs.
//!
//! The file also pins the retry machinery itself: the backoff sequence,
//! timeout firing on the virtual clock under a 100%-drop profile, and
//! QP error→re-establish through the connection manager.

use memory_disaggregation::chaos::{run_seed, ChaosSettings};
use memory_disaggregation::net::{
    ChannelKind, ConnectionManager, Fabric, FabricFault, FabricFaults, FaultProfile,
    RetryPolicy,
};
use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::chaos::ChaosConfig;
use memory_disaggregation::sim::{DetRng, FailureInjector};
use std::sync::Arc;

fn faults_config() -> ChaosConfig {
    ChaosConfig {
        fabric_faults: true,
        ..ChaosConfig::default()
    }
}

fn faults_settings() -> ChaosSettings {
    ChaosSettings {
        faults: true,
        ..ChaosSettings::default()
    }
}

/// A fabric with the fault layer installed, plus its clock — the fixture
/// for the verb-level tests below.
fn faulted_fabric(profile: FaultProfile, seed: u64) -> (SimClock, Fabric, Arc<FabricFaults>) {
    let clock = SimClock::new();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures);
    let layer = Arc::new(FabricFaults::new(
        DetRng::new(seed),
        profile,
        RetryPolicy::default(),
    ));
    fabric.install_faults(Arc::clone(&layer));
    (clock, fabric, layer)
}

/// Acceptance gate: 32 distinct seeds under fault injection, every
/// invariant held — including the two fault-mode invariants — and the
/// sweep must demonstrably exercise retry, failover and suspicion (not
/// vacuously pass because no fault ever fired).
#[test]
fn fault_chaos_invariants_hold_across_32_seeds() {
    let config = faults_config();
    let settings = faults_settings();
    let mut acked_puts = 0usize;
    let mut verified_reads = 0usize;
    let mut retries = 0u64;
    let mut failovers = 0u64;
    let mut suspects = 0u64;
    for seed in 0..32u64 {
        match run_seed(seed, &config, &settings) {
            Ok(stats) => {
                assert!(stats.faults_mode, "seed {seed} ran without the fault layer");
                acked_puts += stats.acked_puts;
                verified_reads += stats.verified_reads;
                retries += stats.fault_retries;
                failovers += stats.failover_reads;
                suspects += stats.suspects_marked;
            }
            Err(report) => panic!("seed {seed} violated an invariant under faults:\n{report}"),
        }
    }
    assert!(acked_puts > 500, "too few acked puts: {acked_puts}");
    assert!(verified_reads > 2_000, "too few verified reads: {verified_reads}");
    // Observed sweep totals are ~4500/~700/~110; the floors only guard
    // against the fault path silently wiring itself out.
    assert!(retries > 500, "fault layer barely retried: {retries}");
    assert!(failovers > 32, "reads barely failed over: {failovers}");
    assert!(suspects > 0, "failover never marked a primary suspect");
}

/// Same seed, same fault schedule, same recovery decisions: the metrics
/// digest (which folds in the fabric-side fault counters) must be
/// byte-identical across reruns and independent of sibling threads.
#[test]
fn fault_runs_are_seed_deterministic_and_parallel_stable() {
    let config = faults_config();
    let settings = faults_settings();
    let a = run_seed(5, &config, &settings).expect("seed 5 holds invariants");
    let b = run_seed(5, &config, &settings).expect("seed 5 holds invariants");
    assert_eq!(a.metrics_digest, b.metrics_digest, "same seed, same counters");
    assert_eq!(a.fault_retries, b.fault_retries);
    assert_eq!(a.failover_reads, b.failover_reads);
    assert_eq!(a.suspects_marked, b.suspects_marked);
    assert!(
        a.metrics_digest.contains("faults.retry.attempts"),
        "fault-mode digest must fold in fabric counters: {}",
        a.metrics_digest
    );

    // Mirror `chaos --faults --jobs N`: run sibling seeds on threads and
    // require seed 5's digest to come out unchanged.
    let from_parallel = std::thread::scope(|scope| {
        let handles: Vec<_> = (4..8u64)
            .map(|seed| {
                let (config, settings) = (&config, &settings);
                scope.spawn(move || {
                    let stats = run_seed(seed, config, settings)
                        .unwrap_or_else(|report| panic!("seed {seed} failed:\n{report}"));
                    (seed, stats.metrics_digest)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("seed thread panicked"))
            .find(|(seed, _)| *seed == 5)
            .map(|(_, digest)| digest)
            .expect("seed 5 ran")
    });
    assert_eq!(from_parallel, a.metrics_digest, "digest independent of sibling threads");
}

/// The fault layer is strictly opt-in: a run without it carries no fault
/// or suspicion counters and reports zero fault-mode activity, so
/// fault-free sweeps stay byte-identical to builds predating the layer.
#[test]
fn fault_free_runs_carry_no_fault_state() {
    let stats = run_seed(0, &ChaosConfig::default(), &ChaosSettings::default())
        .expect("fault-free seed 0 holds invariants");
    assert!(!stats.faults_mode);
    assert_eq!(stats.fault_retries, 0);
    assert_eq!(stats.failover_reads, 0);
    assert_eq!(stats.suspects_marked, 0);
    for key in ["faults.", "cluster.failover", "cluster.suspect"] {
        assert!(
            !stats.metrics_digest.contains(key),
            "fault-free digest leaked `{key}`: {}",
            stats.metrics_digest
        );
    }
}

/// The retry policy's deterministic backoff: base 10 µs doubling to the
/// 160 µs cap, and the seeded jitter never leaves the [half, full]
/// envelope.
#[test]
fn backoff_sequence_doubles_to_the_cap_with_bounded_jitter() {
    let policy = RetryPolicy::default();
    let micros: Vec<u64> = (0..8).map(|i| policy.backoff(i).as_nanos() / 1_000).collect();
    assert_eq!(micros, vec![10, 20, 40, 80, 160, 160, 160, 160]);

    let (_, _, layer) = faulted_fabric(FaultProfile::chaos_default(), 11);
    for attempt in 0..6 {
        let full = policy.backoff(attempt);
        let j = layer.jittered_backoff(attempt);
        assert!(j.as_nanos() >= full.as_nanos() / 2, "below half-envelope: {j:?}");
        assert!(j <= full, "above the deterministic cap: {j:?}");
    }
}

/// Under a 100%-drop profile every attempt times out: the verb fails
/// with `Timeout` after exactly the policy's attempt budget, the virtual
/// clock advances by the burnt transfers plus the jittered backoffs, and
/// the retry counters account for every attempt.
#[test]
fn always_drop_profile_times_out_after_the_attempt_budget() {
    let profile = FaultProfile {
        drop: 1.0,
        delay: 0.0,
        max_delay: SimDuration::ZERO,
        duplicate: 0.0,
    };
    let (clock, fabric, _) = faulted_fabric(profile, 3);
    let mr = fabric.register(NodeId::new(1), ByteSize::from_kib(8)).unwrap();
    let qp = fabric.connect(NodeId::new(0), NodeId::new(1)).unwrap();

    let t0 = clock.now();
    let err = fabric.write(&qp, &[0u8; 512], &mr, 0).unwrap_err();
    assert!(matches!(err, DmemError::Timeout { .. }), "got {err:?}");

    let policy = RetryPolicy::default();
    let attempts = u64::from(policy.attempts);
    let metrics = fabric.metrics();
    assert_eq!(metrics.counter("faults.inject.drop").get(), attempts);
    assert_eq!(metrics.counter("faults.retry.attempts").get(), attempts - 1);
    assert_eq!(metrics.counter("faults.retry.exhausted").get(), 1);
    assert_eq!(metrics.counter("faults.retry.recovered").get(), 0);

    // Four jittered backoffs (10+20+40+80 µs full) stay inside the
    // [half, full] envelope; the drops additionally burn transfer time.
    let elapsed = clock.elapsed_since(t0);
    let full_backoff: u64 = (0..4).map(|i| policy.backoff(i).as_nanos()).sum();
    assert!(
        elapsed.as_nanos() >= full_backoff / 2,
        "clock barely moved: {elapsed:?}"
    );
    assert!(
        elapsed.as_nanos() <= full_backoff + 5_000_000,
        "clock ran away: {elapsed:?}"
    );
}

/// Scheduled faults fire in virtual-time order, lazily, when the fabric
/// next validates the path: a partition due first severs the pair (verbs
/// fail without consuming retry budget on a hopeless path is not
/// promised — they fail with `LinkDown` after exhausting retries), and
/// the heal due later restores it.
#[test]
fn scheduled_partition_and_heal_fire_in_clock_order() {
    let (clock, fabric, layer) = faulted_fabric(FaultProfile::none(), 9);
    let (a, b) = (NodeId::new(0), NodeId::new(1));
    let mr = fabric.register(b, ByteSize::from_kib(8)).unwrap();
    let qp = fabric.connect(a, b).unwrap();
    fabric.write(&qp, b"before", &mr, 0).unwrap();

    let now = clock.now();
    layer.schedule(now + SimDuration::from_micros(50), FabricFault::Partition { a, b });
    layer.schedule(now + SimDuration::from_millis(40), FabricFault::Heal { a, b });
    assert_eq!(layer.pending_len(), 2);
    assert!(!layer.partitioned(a, b), "faults apply lazily, not at schedule time");

    // Before the partition's due instant the path is clean.
    fabric.write(&qp, b"still ok", &mr, 0).unwrap();

    // Cross the first due instant: the partition applies on the next
    // path check and the verb fails link-down (order-blind pair).
    clock.advance(SimDuration::from_micros(60));
    let err = fabric.write(&qp, b"cut", &mr, 0).unwrap_err();
    assert!(
        matches!(err, DmemError::LinkDown { .. } | DmemError::Timeout { .. }),
        "got {err:?}"
    );
    assert!(layer.partitioned(b, a));
    assert_eq!(layer.pending_len(), 1, "heal still pending");

    // Cross the heal's due instant: traffic resumes.
    clock.advance(SimDuration::from_millis(40));
    fabric.write(&qp, b"healed", &mr, 0).unwrap();
    assert!(!layer.partitioned(a, b));
    assert_eq!(layer.pending_len(), 0);
}

/// QP error→re-establish: breaking the queue pairs drives verbs on the
/// cached channel to `LinkDown`, and the connection manager's probe
/// detects it and hands back a fresh, working queue pair.
#[test]
fn broken_qps_are_reestablished_through_the_connection_manager() {
    let clock = SimClock::new();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures);
    let cm = ConnectionManager::new(NodeId::new(0), fabric.clone());
    let peer = NodeId::new(2);

    let before = cm.channel(peer, ChannelKind::Data).unwrap();
    fabric.send(&before, b"ping".to_vec()).unwrap();

    let broken = fabric.break_qps(NodeId::new(0), peer);
    assert!(broken >= 1, "expected at least the data QP to break");
    assert!(
        matches!(
            fabric.send(&before, b"dead".to_vec()),
            Err(DmemError::LinkDown { .. })
        ),
        "verbs on a broken pair must fail link-down"
    );
    assert_eq!(fabric.metrics().counter("faults.qp.broken").get(), broken as u64);

    let after = cm.channel(peer, ChannelKind::Data).unwrap();
    assert_ne!(before.qp, after.qp, "probe must re-establish a fresh pair");
    fabric.send(&after, b"pong".to_vec()).unwrap();
}

/// PR 3's exact time-attribution identity (rows + untraced = total) must
/// survive fault injection: backoff waits and injected fault latencies
/// are recorded as async timeline events only, never as sync spans, so
/// they land in the `(untraced)` row instead of double-counting.
#[test]
fn attribution_identity_holds_under_fault_injection() {
    let profile = FaultProfile {
        drop: 0.10,
        delay: 0.20,
        max_delay: SimDuration::from_micros(20),
        duplicate: 0.05,
    };
    let (clock, fabric, _) = faulted_fabric(profile, 17);
    let mr = fabric.register(NodeId::new(1), ByteSize::from_kib(64)).unwrap();
    let qp = fabric.connect(NodeId::new(0), NodeId::new(1)).unwrap();

    clock.tracer().enable();
    let t0 = clock.now();
    for i in 0..200u64 {
        let _ = fabric.write(&qp, &[i as u8; 1024], &mr, (i % 32) * 1024);
        let _ = fabric.read(&qp, &mr, (i % 32) * 1024, 1024);
    }
    let trace = clock.tracer().finish();

    let metrics = fabric.metrics();
    let injected = metrics.counter("faults.inject.drop").get()
        + metrics.counter("faults.inject.delay").get()
        + metrics.counter("faults.inject.duplicate").get();
    assert!(injected > 0, "profile fired no faults in 400 verbs");
    assert!(metrics.counter("faults.retry.attempts").get() > 0);

    let attribution = trace.attribution(clock.elapsed_since(t0));
    assert_eq!(
        attribution.accounted_ns(),
        attribution.total_ns,
        "rows + untraced must equal total under faults"
    );
    assert_eq!(
        attribution.category_ns("faults"),
        0,
        "fault events are async-only and must not appear as attribution rows"
    );
    assert!(attribution.category_ns("net") > 0, "verb spans still attributed");
}

/// PR 6: the fault sweep with the shard-router conformance layer
/// watching every verb. Retried, failed-over, and duplicated traffic is
/// the adversarial input for the mailbox-order invariant — the router
/// panics (→ NoPanic violation) if any directed shard pair ever sees a
/// non-increasing `(virtual_time, seq)` key. Both fault-mode invariants
/// (reads never wrong or stale, suspects resolved at quiescence) must
/// hold, and every counter must match the unsharded run exactly.
#[test]
fn sharded_fault_sweep_holds_invariants_and_byte_identity() {
    let config = faults_config();
    let plain = faults_settings();
    let sharded = ChaosSettings {
        shards: 4,
        ..faults_settings()
    };
    let mut cross = 0u64;
    for seed in 0..8u64 {
        let a = run_seed(seed, &config, &plain)
            .unwrap_or_else(|r| panic!("seed {seed} failed unsharded:\n{r}"));
        let b = run_seed(seed, &config, &sharded)
            .unwrap_or_else(|r| panic!("seed {seed} failed at shards=4:\n{r}"));
        // Identity: the router observes, never steers.
        assert_eq!(a.metrics_digest, b.metrics_digest, "seed {seed}: digest diverged");
        assert_eq!(a.fault_retries, b.fault_retries, "seed {seed}");
        assert_eq!(a.failover_reads, b.failover_reads, "seed {seed}");
        assert_eq!(a.suspects_marked, b.suspects_marked, "seed {seed}");
        assert_eq!(a.verified_reads, b.verified_reads, "seed {seed}");
        assert!(b.cross_shard_verbs > 0, "seed {seed}: vacuous — no cross-shard verbs");
        cross += b.cross_shard_verbs;
    }
    assert!(cross > 1_000, "too little cross-shard fault traffic: {cross}");
}

/// PR 6 × PR 3: with the cluster partitioned into shard groups, latency
/// attribution still accounts for every nanosecond — the router adds no
/// spans and never advances the virtual clock, so telemetry identities
/// survive sharding.
#[test]
fn sharded_cluster_keeps_attribution_identity() {
    use memory_disaggregation::chaos::{chaos_cluster, ChaosSettings};
    use memory_disaggregation::core::DisaggregatedMemory;
    use memory_disaggregation::sim::chaos::ChaosConfig as SimChaosConfig;

    let cluster = chaos_cluster(&SimChaosConfig::default(), 9, &ChaosSettings::default());
    let dm = DisaggregatedMemory::new(cluster).expect("cluster config validates");
    dm.install_sharding(4);
    dm.clock().tracer().enable();
    let servers = dm.servers().to_vec();
    for key in 0..48u64 {
        let server = servers[key as usize % servers.len()];
        dm.put(server, key, vec![0xA5; 8 * 1024]).expect("put on healthy cluster");
        assert_eq!(dm.get(server, key).expect("get back"), vec![0xA5; 8 * 1024]);
    }
    let total = dm.clock().elapsed_since(memory_disaggregation::sim::SimInstant::from_nanos(0));
    let trace = dm.clock().tracer().finish();
    let attribution = trace.attribution(total);
    assert_eq!(
        attribution.accounted_ns(),
        total.as_nanos(),
        "attribution identity must hold with shards > 1"
    );
    let router = dm.shard_router().expect("router installed");
    assert!(
        router.cross_delivered() > 0,
        "8 KiB puts on a 256 KiB-slab cluster must cross shard boundaries"
    );
}
