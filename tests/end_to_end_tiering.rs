//! Whole-system integration: tiering, compression, batching and accounting
//! across every crate at once.

use memory_disaggregation::prelude::*;

fn cluster() -> DisaggregatedMemory {
    DisaggregatedMemory::new(ClusterConfig::small()).expect("valid config")
}

#[test]
fn tiering_order_matches_latency_hierarchy() {
    let dm = cluster();
    let server = dm.servers()[0];
    let clock = dm.clock().clone();

    // Shared-pool put/get: microsecond scale.
    dm.put_pref(server, 1, vec![1u8; 4096], TierPreference::NodeShared)
        .unwrap();
    let t0 = clock.now();
    dm.get(server, 1).unwrap();
    let shared = clock.now() - t0;

    // Remote put/get: slower than shared, much faster than disk.
    dm.put_pref(server, 2, vec![2u8; 4096], TierPreference::Remote)
        .unwrap();
    let t1 = clock.now();
    dm.get(server, 2).unwrap();
    let remote = clock.now() - t1;

    dm.put_pref(server, 3, vec![3u8; 4096], TierPreference::Disk)
        .unwrap();
    let t2 = clock.now();
    dm.get(server, 3).unwrap();
    let disk = clock.now() - t2;

    assert!(shared < remote, "shared {shared} !< remote {remote}");
    assert!(remote < disk, "remote {remote} !< disk {disk}");
    assert!(
        disk.as_nanos() / remote.as_nanos() > 50,
        "disk/remote gap collapsed: {disk} vs {remote}"
    );
}

#[test]
fn every_server_gets_an_isolated_namespace() {
    let dm = cluster();
    for (i, &server) in dm.servers().iter().enumerate() {
        dm.put(server, 7, vec![i as u8; 128]).unwrap();
    }
    for (i, &server) in dm.servers().iter().enumerate() {
        assert_eq!(dm.get(server, 7).unwrap(), vec![i as u8; 128]);
    }
    assert_eq!(dm.stats().entries, dm.servers().len());
}

#[test]
fn compressible_data_is_stored_compressed_everywhere() {
    let dm = cluster();
    let server = dm.servers()[0];
    for (key, pref) in [
        (1, TierPreference::NodeShared),
        (2, TierPreference::Remote),
        (3, TierPreference::Disk),
    ] {
        dm.put_pref(server, key, vec![0u8; 4096], pref).unwrap();
        let record = dm.record(server, key).unwrap();
        assert!(
            record.stored_len < 1024,
            "zero page must compress hard on {pref:?}: stored {}",
            record.stored_len
        );
        assert_eq!(dm.get(server, key).unwrap(), vec![0u8; 4096]);
    }
}

#[test]
fn incompressible_data_roundtrips_uncompressed() {
    use rand::{RngCore, SeedableRng};
    let dm = cluster();
    let server = dm.servers()[0];
    let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
    let mut page = vec![0u8; 4096];
    rng.fill_bytes(&mut page);
    dm.put(server, 1, page.clone()).unwrap();
    let record = dm.record(server, 1).unwrap();
    assert!(record.class.is_none(), "random page stored raw");
    assert_eq!(dm.get(server, 1).unwrap(), page);
}

#[test]
fn batched_put_get_roundtrip_across_tiers() {
    let dm = cluster();
    let server = dm.servers()[0];
    let batch: Vec<(u64, Vec<u8>)> = (0..32).map(|k| (k, vec![k as u8; 2048])).collect();
    dm.put_batch(server, batch, TierPreference::Remote).unwrap();
    let keys: Vec<u64> = (0..32).collect();
    let loaded = dm.get_batch(server, &keys).unwrap();
    for (k, data) in loaded.iter().enumerate() {
        assert_eq!(data, &vec![k as u8; 2048]);
    }
}

#[test]
fn stats_census_is_consistent_with_records() {
    let dm = cluster();
    let server = dm.servers()[0];
    for key in 0..20u64 {
        let pref = match key % 3 {
            0 => TierPreference::NodeShared,
            1 => TierPreference::Remote,
            _ => TierPreference::Disk,
        };
        dm.put_pref(server, key, vec![9u8; 512], pref).unwrap();
    }
    let stats = dm.stats();
    assert_eq!(stats.entries, 20);
    assert_eq!(stats.shared + stats.remote + stats.disk, 20);
    assert_eq!(stats.shared, 7);
    assert_eq!(stats.remote, 7);
    assert_eq!(stats.disk, 6);
}

#[test]
fn deleting_everything_leaves_no_residue() {
    let dm = cluster();
    let server = dm.servers()[0];
    for key in 0..10 {
        dm.put(server, key, vec![1u8; 1024]).unwrap();
    }
    for key in 0..10 {
        dm.delete(server, key).unwrap();
    }
    let stats = dm.stats();
    assert_eq!(stats.entries, 0);
    // Remote pools fully free again.
    for &node in dm.membership().nodes() {
        let s = dm.remote_store().stats(node).unwrap();
        assert_eq!(s.entries, 0, "{node} still hosts entries");
        assert_eq!(s.free, s.capacity);
    }
}

#[test]
fn group_leadership_and_map_arithmetic() {
    let mut config = ClusterConfig::paper_testbed();
    config.group_size = 8;
    let dm = DisaggregatedMemory::new(config).unwrap();
    // 32 nodes in groups of 8: leaders exist and are group members.
    let leader = dm.group_leader(NodeId::new(0)).unwrap();
    assert!(leader.index() < 8, "leader of group 0 must be in nodes 0..8");
    let peers = dm.group_peers(NodeId::new(9)).unwrap();
    assert_eq!(peers.len(), 7);
    assert!(peers.iter().all(|n| (8..16).contains(&n.index())));
}
