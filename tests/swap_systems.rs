//! Cross-system swap integration: the orderings every figure relies on.

use memory_disaggregation::prelude::*;
use memory_disaggregation::swap::{run_kv_throughput, SystemKind};
use memory_disaggregation::types::DistributionRatio;

fn fastswap(ratio: DistributionRatio) -> SystemKind {
    SystemKind::FastSwap {
        ratio,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    }
}

#[test]
fn fig7_ordering_holds_for_all_five_workloads() {
    let scale = SwapScale::small();
    for workload in ["PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"] {
        let linux = run_ml_workload(SystemKind::Linux, workload, &scale).unwrap();
        let inf = run_ml_workload(SystemKind::Infiniswap, workload, &scale).unwrap();
        let fast = run_ml_workload(SystemKind::fastswap_default(), workload, &scale).unwrap();
        assert!(
            fast.completion < inf.completion && inf.completion < linux.completion,
            "{workload}: fast {} / inf {} / linux {}",
            fast.completion,
            inf.completion,
            linux.completion
        );
        let speedup = linux.completion.as_nanos() as f64 / fast.completion.as_nanos() as f64;
        assert!(
            speedup > 10.0,
            "{workload}: FastSwap only {speedup:.1}x over Linux"
        );
    }
}

#[test]
fn fig8_throughput_monotone_in_shared_fraction() {
    // Paper: "as the percentage of remote memory increases ... throughputs
    // of all three applications drop accordingly."
    let scale = SwapScale::small();
    for workload in ["Redis", "Memcached", "VoltDB"] {
        let mut last = f64::INFINITY;
        for ratio in DistributionRatio::FIG8_SWEEP {
            let (throughput, _) =
                run_kv_throughput(fastswap(ratio), workload, &scale, 2_000).unwrap();
            assert!(
                throughput <= last * 1.10,
                "{workload}: throughput rose from {last:.0} to {throughput:.0} at {ratio}"
            );
            last = throughput;
        }
    }
}

#[test]
fn fig8_fs_sm_crushes_linux_and_beats_infiniswap() {
    let scale = SwapScale::small();
    let (fs_sm, _) =
        run_kv_throughput(fastswap(DistributionRatio::FS_SM), "Redis", &scale, 2_000).unwrap();
    let (linux, _) = run_kv_throughput(SystemKind::Linux, "Redis", &scale, 2_000).unwrap();
    let (inf, _) = run_kv_throughput(SystemKind::Infiniswap, "Redis", &scale, 2_000).unwrap();
    assert!(
        fs_sm / linux > 50.0,
        "FS-SM/Linux only {:.0}x (paper: up to 571x)",
        fs_sm / linux
    );
    assert!(
        fs_sm / inf > 2.0,
        "FS-SM/Infiniswap only {:.1}x (paper: 11.4x)",
        fs_sm / inf
    );
}

#[test]
fn fig8_fs_rdma_still_beats_infiniswap() {
    // Even with zero node-level shared memory, FastSwap's batched and
    // compressed remote path beats Infiniswap (paper: 3.2x on Redis).
    let scale = SwapScale::small();
    let (fs_rdma, _) =
        run_kv_throughput(fastswap(DistributionRatio::FS_RDMA), "Redis", &scale, 2_000).unwrap();
    let (inf, _) = run_kv_throughput(SystemKind::Infiniswap, "Redis", &scale, 2_000).unwrap();
    assert!(
        fs_rdma > inf,
        "FS-RDMA {fs_rdma:.0} ops/s must beat Infiniswap {inf:.0} ops/s"
    );
}

#[test]
fn nbdx_beats_infiniswap_slightly() {
    // Fig. 8 shows NBDX a touch ahead of Infiniswap (less block-layer
    // overhead), both far behind FastSwap.
    let scale = SwapScale::small();
    let (nbdx, _) = run_kv_throughput(SystemKind::Nbdx, "Memcached", &scale, 2_000).unwrap();
    let (inf, _) = run_kv_throughput(SystemKind::Infiniswap, "Memcached", &scale, 2_000).unwrap();
    assert!(nbdx > inf, "NBDX {nbdx:.0} !> Infiniswap {inf:.0}");
    assert!(nbdx < inf * 3.0, "gap implausibly wide");
}

#[test]
fn compression_reduces_remote_bytes_and_time() {
    // Fig. 5: enabling compression improves completion time. The win is
    // capacity: compressed pages pack more working set into the same
    // remote pools before anything spills to disk, so the experiment runs
    // with pools sized tightly against the uncompressed overflow.
    let mut scale = SwapScale::small();
    scale.remote_pool = ByteSize::from_kib(512);
    let with = run_ml_workload(
        SystemKind::FastSwap {
            ratio: DistributionRatio::FS_RDMA,
            compression: CompressionMode::FourGranularity,
            pbs: true,
        },
        "LogisticRegression",
        &scale,
    )
    .unwrap();
    let without = run_ml_workload(
        SystemKind::FastSwap {
            ratio: DistributionRatio::FS_RDMA,
            compression: CompressionMode::Off,
            pbs: true,
        },
        "LogisticRegression",
        &scale,
    )
    .unwrap();
    assert!(
        with.completion < without.completion,
        "compression on {} !< off {}",
        with.completion,
        without.completion
    );
}

#[test]
fn deterministic_runs_are_bit_identical() {
    let scale = SwapScale::small();
    let a = run_ml_workload(SystemKind::fastswap_default(), "KMeans", &scale).unwrap();
    let b = run_ml_workload(SystemKind::fastswap_default(), "KMeans", &scale).unwrap();
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.stats, b.stats);
    let mut other = scale.clone();
    other.seed ^= 1;
    let c = run_ml_workload(SystemKind::fastswap_default(), "KMeans", &other).unwrap();
    assert_ne!(a.completion, c.completion, "different seed, different run");
}
