//! Cross-shard determinism harness (ISSUE 6 acceptance gate).
//!
//! The sharded engine's contract is byte-identity: for a fixed scenario,
//! every observable output — chaos verdict lines, metrics digests, rack
//! CSV rows, merged trace exports — must be identical at every `--shards`
//! level and across reruns. These tests sweep 32 chaos seeds through
//! shard counts 1/2/4/8 and run the rack model at worker counts 1/2/4/8,
//! with non-vacuity floors so a regression that silently unplugs the
//! cross-shard path (zero cross traffic ⇒ trivially identical output)
//! fails loudly instead of passing quietly.

use memory_disaggregation::chaos::{run_seed, ChaosSettings, ChaosStats};
use memory_disaggregation::rack::{run_rack, RackConfig};
use memory_disaggregation::sim::chaos::ChaosConfig;

/// The full observable verdict of one chaos seed, exactly as the `chaos`
/// binary prints it (stats line + digest lines).
fn verdict(seed: u64, stats: &ChaosStats) -> String {
    let mut out = format!("seed {seed:#x}: ok ({stats})\n");
    if !stats.metrics_digest.is_empty() {
        out.push_str(&format!("  metrics: {}\n", stats.metrics_digest));
    }
    if !stats.qos_digest.is_empty() {
        out.push_str(&format!("  qos: {}\n", stats.qos_digest));
    }
    out
}

fn sweep_config() -> ChaosConfig {
    ChaosConfig {
        nodes: 5,
        servers_per_node: 1,
        steps: 60,
        keys: 8,
        ..ChaosConfig::default()
    }
}

fn settings_with_shards(shards: usize) -> ChaosSettings {
    ChaosSettings {
        shards,
        ..ChaosSettings::default()
    }
}

/// 32 seeds × shard counts 1/2/4/8: the verdict text (stats + digests)
/// must be byte-identical at every level, the run must exchange real
/// cross-shard traffic at every sharded level (non-vacuity), and a rerun
/// at one level must reproduce itself exactly.
#[test]
fn chaos_verdicts_are_byte_identical_across_shard_counts() {
    let config = sweep_config();
    let mut total_cross = 0u64;
    for seed in 0..32u64 {
        let base = run_seed(seed, &config, &settings_with_shards(1))
            .unwrap_or_else(|r| panic!("seed {seed} failed unsharded:\n{r}"));
        let base_verdict = verdict(seed, &base);
        assert_eq!(base.cross_shard_verbs, 0, "no router installed at shards=1");
        for shards in [2usize, 4, 8] {
            let sharded = run_seed(seed, &config, &settings_with_shards(shards))
                .unwrap_or_else(|r| panic!("seed {seed} failed at shards={shards}:\n{r}"));
            assert_eq!(
                verdict(seed, &sharded),
                base_verdict,
                "seed {seed}: verdict text diverged at shards={shards}"
            );
            // Non-vacuity: a 5-node cluster split into ≥2 host-groups
            // must push verbs across a shard boundary on every seed.
            assert!(
                sharded.cross_shard_verbs > 0,
                "seed {seed} at shards={shards}: no cross-shard verbs — the \
                 determinism check is vacuous"
            );
            total_cross += sharded.cross_shard_verbs;
        }
    }
    assert!(total_cross > 10_000, "suspiciously little cross-shard traffic: {total_cross}");

    // Rerun stability at a fixed level: same seed, same bytes.
    for seed in [0u64, 7, 31] {
        let a = run_seed(seed, &config, &settings_with_shards(4)).expect("clean");
        let b = run_seed(seed, &config, &settings_with_shards(4)).expect("clean");
        assert_eq!(verdict(seed, &a), verdict(seed, &b), "seed {seed} rerun diverged");
        assert_eq!(a.cross_shard_verbs, b.cross_shard_verbs);
    }
}

fn rack_config(seed: u64) -> RackConfig {
    RackConfig {
        hosts: 24,
        pages_per_host: 96,
        frames_per_host: 12,
        accesses_per_host: 30,
        hosts_per_shard: 3,
        trace_sample: 8,
        seed,
        ..RackConfig::rack_default(24)
    }
}

/// The rack model at worker counts 1/2/4/8: CSV row, full metrics line,
/// and the merged trace JSONL must be byte-identical, with enough remote
/// traffic to make the comparison meaningful.
#[test]
fn rack_outputs_are_byte_identical_across_worker_counts() {
    for seed in [0x00d1_5a66u64, 42] {
        let cfg = rack_config(seed);
        let base = run_rack(&cfg, 1);
        assert!(base.cross_messages > 0, "seed {seed:#x}: no cross-shard envelopes");
        assert!(base.remote_reads > 0, "seed {seed:#x}: no remote faults");
        assert!(!base.trace_jsonl.is_empty(), "seed {seed:#x}: empty trace export");
        for workers in [2usize, 4, 8] {
            let other = run_rack(&cfg, workers);
            assert_eq!(base.csv_row(), other.csv_row(), "workers={workers}");
            assert_eq!(base.metrics_line, other.metrics_line, "workers={workers}");
            assert_eq!(base.trace_jsonl, other.trace_jsonl, "workers={workers}");
            assert_eq!(base.digest, other.digest, "workers={workers}");
            assert_eq!(base.epochs, other.epochs, "workers={workers}");
        }
        // Rerun at a parallel level reproduces the sequential bytes.
        let again = run_rack(&cfg, 4);
        assert_eq!(base.csv_row(), again.csv_row(), "rerun diverged");
        assert_eq!(base.trace_jsonl, again.trace_jsonl, "rerun trace diverged");
    }
}

/// The merged trace export is ordered by the mailbox merge key
/// `(at_ns, shard, seq)` — the same total order the engine delivers in —
/// and every line is well-formed JSON with those fields.
#[test]
fn rack_trace_export_is_mailbox_ordered() {
    let report = run_rack(&rack_config(7), 2);
    let mut prev: Option<(u64, u64, u64)> = None;
    let mut lines = 0usize;
    for line in report.trace_jsonl.lines() {
        let field = |name: &str| -> u64 {
            let tag = format!("\"{name}\":");
            let at = line.find(&tag).unwrap_or_else(|| panic!("no {name} in {line}"));
            line[at + tag.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .unwrap_or_else(|_| panic!("bad {name} in {line}"))
        };
        let key = (field("at_ns"), field("shard"), field("seq"));
        if let Some(p) = prev {
            assert!(p <= key, "trace out of mailbox order: {p:?} then {key:?}");
        }
        prev = Some(key);
        lines += 1;
    }
    assert!(lines > 0, "trace export is empty");
}

/// Fault-mode chaos under sharding: the PR 5 sweep's byte-identity must
/// survive a shard router watching every retried, failed-over, duplicated
/// verb — the adversarial traffic for the mailbox-order invariant.
#[test]
fn faulted_chaos_is_shard_count_independent() {
    let config = ChaosConfig {
        nodes: 5,
        servers_per_node: 1,
        steps: 60,
        keys: 8,
        fabric_faults: true,
        ..ChaosConfig::default()
    };
    for seed in 0..8u64 {
        let base = run_seed(
            seed,
            &config,
            &ChaosSettings {
                faults: true,
                ..ChaosSettings::default()
            },
        )
        .unwrap_or_else(|r| panic!("seed {seed} failed unsharded:\n{r}"));
        let sharded = run_seed(
            seed,
            &config,
            &ChaosSettings {
                faults: true,
                shards: 4,
                ..ChaosSettings::default()
            },
        )
        .unwrap_or_else(|r| panic!("seed {seed} failed at shards=4:\n{r}"));
        assert_eq!(verdict(seed, &sharded), verdict(seed, &base), "seed {seed}");
        assert!(sharded.cross_shard_verbs > 0, "seed {seed}: vacuous fault run");
    }
}
