//! Chaos harness integration tests (ROADMAP "failure semantics").
//!
//! These drive the deterministic chaos engine end to end: many distinct
//! seeds must hold every cluster invariant, and a deliberately broken
//! configuration (replication factor 1 under node crashes) must be caught
//! with a seed-addressable, shrunk report.

use memory_disaggregation::chaos::{
    run_schedule, run_seed, shrink, ChaosSettings, InvariantKind,
};
use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::chaos::{ChaosConfig, ChaosSchedule, ChaosStep};
use memory_disaggregation::sim::{FailureEvent, SimDuration};

/// Acceptance gate: at least 32 distinct seeds, all invariants held.
#[test]
fn chaos_invariants_hold_across_32_seeds() {
    let config = ChaosConfig::default();
    let settings = ChaosSettings::default();
    let mut total = ChaosStatsRollup::default();
    for seed in 0..32u64 {
        match run_seed(seed, &config, &settings) {
            Ok(stats) => total.absorb(seed, stats.acked_puts, stats.verified_reads),
            Err(report) => panic!("seed {seed} violated an invariant:\n{report}"),
        }
    }
    // The sweep must exercise the system for real, not vacuously pass.
    assert!(total.acked_puts > 500, "too few acked puts: {total:?}");
    assert!(total.verified_reads > 2_000, "too few verified reads: {total:?}");
}

#[derive(Debug, Default)]
struct ChaosStatsRollup {
    seeds: usize,
    acked_puts: usize,
    verified_reads: usize,
}

impl ChaosStatsRollup {
    fn absorb(&mut self, _seed: u64, puts: usize, reads: usize) {
        self.seeds += 1;
        self.acked_puts += puts;
        self.verified_reads += reads;
    }
}

/// Acceptance gate for the QoS control plane: the same 32-seed sweep
/// with the multi-tenant engine installed must hold the original five
/// invariants plus tenant-quota and priority-eviction, and admission
/// control must demonstrably fire (not vacuously pass).
#[test]
fn qos_chaos_invariants_hold_across_32_seeds() {
    let config = ChaosConfig::default();
    let settings = ChaosSettings {
        qos: true,
        ..ChaosSettings::default()
    };
    let mut decisions = 0usize;
    let mut total = ChaosStatsRollup::default();
    for seed in 0..32u64 {
        match run_seed(seed, &config, &settings) {
            Ok(stats) => {
                assert!(
                    !stats.qos_digest.is_empty(),
                    "qos runs must carry a decision digest"
                );
                let n: usize = stats
                    .qos_digest
                    .strip_prefix("n=")
                    .and_then(|rest| rest.split_whitespace().next())
                    .and_then(|n| n.parse().ok())
                    .expect("digest shape is n=<count> fnv=<hash>");
                decisions += n;
                total.absorb(seed, stats.acked_puts, stats.verified_reads);
            }
            Err(report) => panic!("qos seed {seed} violated an invariant:\n{report}"),
        }
    }
    assert!(total.acked_puts > 500, "too few acked puts: {total:?}");
    assert!(decisions > 500, "QoS decisions must actually fire: {decisions}");
}

/// Token-bucket / decision-log determinism: the same seed yields a
/// byte-identical decision log (hence digest) run after run, and the
/// digest is independent of how many other seeds run on sibling threads
/// (each simulation is self-contained).
#[test]
fn qos_decision_log_is_deterministic() {
    let config = ChaosConfig::default();
    let settings = ChaosSettings {
        qos: true,
        ..ChaosSettings::default()
    };
    let a = run_seed(5, &config, &settings).expect("seed 5 is clean");
    let b = run_seed(5, &config, &settings).expect("seed 5 is clean");
    assert_eq!(a.qos_digest, b.qos_digest, "same seed, same decisions");
    assert_eq!(a.metrics_digest, b.metrics_digest);

    // Parallel sweep: run seeds 4..8 concurrently the way `chaos --jobs`
    // does and require seed 5's digest to come out unchanged.
    let parallel: Vec<(u64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (4..8u64)
            .map(|seed| {
                let config = &config;
                let settings = &settings;
                scope.spawn(move || {
                    let stats = run_seed(seed, config, settings).expect("clean");
                    (seed, stats.qos_digest)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let from_parallel = parallel
        .iter()
        .find(|(seed, _)| *seed == 5)
        .map(|(_, digest)| digest.clone())
        .unwrap();
    assert_eq!(from_parallel, a.qos_digest, "digest independent of sibling threads");
}

/// Virtual-time equivalence: with QoS *disabled* the system must behave
/// exactly as it did before the control plane existed — same verified
/// reads, same metric counters, and not a single `qos.*` or
/// `net.tenant-*` key anywhere.
#[test]
fn qos_disabled_runs_match_plain_runs_exactly() {
    let config = ChaosConfig::default();
    let plain = run_seed(9, &config, &ChaosSettings::default()).expect("clean");
    let disabled = run_seed(
        9,
        &config,
        &ChaosSettings {
            qos: false,
            ..ChaosSettings::default()
        },
    )
    .expect("clean");
    assert_eq!(plain.acked_puts, disabled.acked_puts);
    assert_eq!(plain.verified_reads, disabled.verified_reads);
    assert_eq!(plain.metrics_digest, disabled.metrics_digest);
    assert!(disabled.qos_digest.is_empty(), "no decision log without QoS");
    assert!(
        !disabled.metrics_digest.contains("qos."),
        "no qos counters without QoS: {}",
        disabled.metrics_digest
    );
}

/// Same seed, same schedule, same outcome — the property every report
/// depends on for reproduction.
#[test]
fn chaos_runs_are_reproducible_from_the_seed() {
    let config = ChaosConfig::default();
    let settings = ChaosSettings::default();
    let a = ChaosSchedule::generate(11, &config);
    let b = ChaosSchedule::generate(11, &config);
    assert_eq!(a, b);
    let ra = run_schedule(&a, &config, &settings).expect("seed 11 is clean");
    let rb = run_schedule(&b, &config, &settings).expect("seed 11 is clean");
    assert_eq!(ra.verified_reads, rb.verified_reads);
    assert_eq!(ra.acked_puts, rb.acked_puts);
}

/// Acceptance gate: a deliberately broken invariant — replication forced
/// to factor 1 with two injected node failures — is demonstrably caught,
/// and the report carries the seed plus a minimal event prefix that still
/// reproduces the violation.
#[test]
fn broken_replication_factor_is_caught_with_minimal_prefix() {
    let config = ChaosConfig {
        nodes: 4,
        servers_per_node: 1,
        keys: 8,
        ..ChaosConfig::default()
    };
    let settings = ChaosSettings {
        replication: ReplicationFactor::SINGLE,
        ..ChaosSettings::default()
    };
    let owner = ServerId::new(NodeId::new(0), 0);
    let mut steps = Vec::new();
    for key in 0..8 {
        // 16 KiB payloads bypass the node shared pool, so every entry is
        // a single remote replica somewhere on nodes 1..=3.
        steps.push(ChaosStep::Put {
            server: owner,
            key,
            len: 16 * 1024,
        });
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeDown(node)));
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeUp(node)));
    }
    steps.push(ChaosStep::Maintain {
        horizon: SimDuration::from_millis(250),
    });
    let schedule = ChaosSchedule {
        seed: 0xDEAD_BEEF,
        steps,
    };

    let violation = run_schedule(&schedule, &config, &settings)
        .expect_err("single-replica data lost in a crash cannot re-converge");
    assert_eq!(violation.invariant, InvariantKind::Convergence, "{violation}");

    let report = shrink(&schedule, violation, &config, &settings);
    assert_eq!(report.seed, 0xDEAD_BEEF, "report must carry the seed");
    assert!(
        report.minimal.len() < schedule.steps.len(),
        "prefix must shrink below the original {} steps:\n{report}",
        schedule.steps.len()
    );
    let replay = run_schedule(
        &ChaosSchedule {
            seed: report.seed,
            steps: report.minimal.clone(),
        },
        &config,
        &settings,
    );
    assert!(replay.is_err(), "minimal prefix must still reproduce:\n{report}");
    let rendered = format!("{report}");
    assert!(rendered.contains("0xdeadbeef"), "report names the seed: {rendered}");
    assert!(rendered.contains("convergence"), "report names the invariant: {rendered}");
}

/// The healthy triple-replicated cluster survives the exact same crash
/// pattern that breaks factor 1 — the invariant checkers are not simply
/// rejecting every schedule with failures in it.
#[test]
fn triple_replication_survives_the_same_crash_pattern() {
    let config = ChaosConfig {
        nodes: 5,
        servers_per_node: 1,
        keys: 8,
        ..ChaosConfig::default()
    };
    let owner = ServerId::new(NodeId::new(0), 0);
    let mut steps = Vec::new();
    for key in 0..8 {
        steps.push(ChaosStep::Put {
            server: owner,
            key,
            len: 16 * 1024,
        });
    }
    steps.push(ChaosStep::Inject(FailureEvent::NodeDown(NodeId::new(1))));
    steps.push(ChaosStep::Inject(FailureEvent::NodeUp(NodeId::new(1))));
    steps.push(ChaosStep::Maintain {
        horizon: SimDuration::from_millis(250),
    });
    let schedule = ChaosSchedule {
        seed: 0xDEAD_BEEF,
        steps,
    };
    let stats = run_schedule(&schedule, &config, &ChaosSettings::default())
        .unwrap_or_else(|v| panic!("triple replication must survive one crash: {v}"));
    assert_eq!(stats.acked_puts, 8);
}
