//! Allocator chaos sweep (ISSUE 9): 32 seeds mixing alloc / free /
//! update / get through an [`ObjectHeap`] while the fabric fault layer
//! drops, delays and duplicates verbs underneath it.
//!
//! Invariants judged on every seed:
//!
//! - **object integrity** — every live object reads back byte-exactly
//!   against an oracle model, after every schedule phase;
//! - **accounting exactness** — heap live-object/live-byte accounting
//!   equals the model's, and slot/reserved bytes dominate it;
//! - **metadata fault-survival** — a heap rebuilt purely from the
//!   backing store (recovery scan) has the same structural digest and
//!   serves the same bytes;
//! - **determinism** — the same seed replayed yields the same model
//!   digest, the same fetched-byte counters and the same retry counts.
//!
//! The sweep must also demonstrably exercise the fault layer (retries
//! observed somewhere across the 32 seeds), or it would vacuously pass.

use std::collections::BTreeMap;
use std::sync::Arc;

use memory_disaggregation::alloc::{Granularity, HeapConfig, ObjectHeap};
use memory_disaggregation::net::{FabricFaults, FaultProfile, RetryPolicy};
use memory_disaggregation::prelude::*;
use memory_disaggregation::qos::{QosConfig, QosEngine, TenantSpec};
use memory_disaggregation::sim::{splitmix64, DetRng};

const OPS_PER_SEED: usize = 140;

#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    model_digest: u64,
    metadata_digest: u64,
    fetched_bytes: u64,
    retries: u64,
    live_objects: usize,
}

fn payload(tag: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| splitmix64(tag ^ (i as u64 / 8)) as u8)
        .collect()
}

/// One seeded run: build a faulted, QoS-governed cluster, drive a
/// DetRng schedule through an object-granularity heap, check the
/// integrity invariants continuously, and reduce the end state to a
/// digest for the determinism gate.
fn run_seed(seed: u64) -> RunOutcome {
    let mut config = ClusterConfig::small();
    // Exact byte accounting in the invariant checks.
    config.compression = CompressionMode::Off;
    let dm = Arc::new(DisaggregatedMemory::new(config).expect("cluster config validates"));

    // Per-tenant accounting path: the heap's server belongs to a real
    // QoS tenant, so every backing put is admitted and metered.
    let engine = Arc::new(QosEngine::new(QosConfig::default()));
    dm.install_qos(Arc::clone(&engine));
    let gold = engine.register_tenant(TenantSpec::new("gold", 200, ByteSize::from_mib(8)));
    let silver = engine.register_tenant(TenantSpec::new("silver", 100, ByteSize::from_mib(4)));
    for (i, &server) in dm.servers().iter().enumerate() {
        engine.assign_server(server, if i % 2 == 0 { gold } else { silver });
    }

    // The fault layer draws from its own fork of the seed, like the
    // chaos harness, so fault noise is independent of the schedule.
    let faults = Arc::new(FabricFaults::new(
        DetRng::new(seed).fork("alloc.chaos.faults"),
        FaultProfile::chaos_default(),
        RetryPolicy::default(),
    ));
    dm.fabric().install_faults(Arc::clone(&faults));

    let server = dm.servers()[0];
    let heap_config = HeapConfig::new(Granularity::Object);
    let mut heap = ObjectHeap::new(Arc::clone(&dm), server, heap_config.clone());
    heap.arm_telemetry(dm.metrics());

    let mut rng = DetRng::new(seed).fork("alloc.chaos.schedule");
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut tag = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);

    for op in 0..OPS_PER_SEED {
        tag = tag.wrapping_add(1);
        let keys: Vec<u64> = model.keys().copied().collect();
        let roll = rng.unit();
        if keys.is_empty() || roll < 0.40 {
            // Size palette spans classes and the occasional multi-page
            // run, like the chaos value palette spans tiers.
            let len = match rng.below(10) {
                0..=5 => 16 + rng.below(240),
                6..=7 => 256 + rng.below(1800),
                8 => 2048 + rng.below(2048),
                _ => 4097 + rng.below(12_000),
            };
            let data = payload(tag, len);
            let addr = heap.alloc(&data).expect("alloc survives faults via retry");
            assert!(
                model.insert(addr, data).is_none(),
                "seed {seed}: allocator handed out a live address {addr}"
            );
        } else if roll < 0.55 {
            let addr = keys[rng.below(keys.len())];
            heap.free(addr).expect("free survives faults via retry");
            model.remove(&addr);
        } else if roll < 0.75 {
            let addr = keys[rng.below(keys.len())];
            let cur = model[&addr].len().max(1);
            let new_len = 1 + rng.below(cur);
            let data = payload(tag ^ 0xcafe, new_len);
            heap.update(addr, &data).expect("update survives faults via retry");
            model.insert(addr, data);
        } else {
            let addr = keys[rng.below(keys.len())];
            let got = heap.get(addr).expect("get survives faults via retry");
            assert_eq!(
                got, model[&addr],
                "seed {seed}: wrong bytes read at {addr} under faults"
            );
        }

        // Continuous accounting-exactness invariant.
        let stats = heap.stats();
        assert_eq!(stats.live_objects, model.len(), "seed {seed} op {op}: object count");
        let model_bytes: u64 = model.values().map(|v| v.len() as u64).sum();
        assert_eq!(stats.live_bytes, model_bytes, "seed {seed} op {op}: live bytes");
        assert!(stats.slot_bytes >= stats.live_bytes, "seed {seed} op {op}: slot slack");
        assert!(
            stats.reserved_bytes >= stats.slot_bytes,
            "seed {seed} op {op}: reserved dominates slots"
        );
        assert_eq!(
            stats.tenant.as_deref(),
            Some("gold"),
            "seed {seed}: heap server must resolve its QoS tenant"
        );
    }

    // Closing object-integrity audit: every live object byte-exact.
    for (addr, data) in &model {
        assert_eq!(
            &heap.get(*addr).expect("closing read"),
            data,
            "seed {seed}: closing audit mismatch at {addr}"
        );
    }

    // Metadata fault-survival: rebuild from the backing store alone.
    let mut rebuilt = ObjectHeap::reconstruct(Arc::clone(&dm), server, heap_config)
        .expect("recovery scan succeeds under a healed fabric");
    assert_eq!(
        rebuilt.metadata_digest(),
        heap.metadata_digest(),
        "seed {seed}: reconstructed metadata diverged"
    );
    for (addr, data) in &model {
        assert_eq!(
            &rebuilt.get(*addr).expect("post-recovery read"),
            data,
            "seed {seed}: post-recovery mismatch at {addr}"
        );
    }

    let mut model_digest: u64 = 0xcbf2_9ce4_8422_2325;
    for (addr, data) in &model {
        model_digest ^= splitmix64(*addr);
        for b in data {
            model_digest = model_digest.wrapping_mul(0x0000_0100_0000_01b3) ^ u64::from(*b);
        }
    }
    RunOutcome {
        model_digest,
        metadata_digest: heap.metadata_digest(),
        fetched_bytes: heap.stats().fetched_bytes,
        retries: dm.fabric().metrics().counter("faults.retry.attempts").get(),
        live_objects: model.len(),
    }
}

/// Acceptance gate: 32 seeds, every invariant held, and the sweep
/// demonstrably exercised the fault layer.
#[test]
fn alloc_chaos_invariants_hold_across_32_seeds() {
    let mut total_retries = 0u64;
    let mut total_live = 0usize;
    for seed in 0..32u64 {
        let outcome = run_seed(seed);
        total_retries += outcome.retries;
        total_live += outcome.live_objects;
    }
    assert!(total_live > 0, "sweep never left a live object to audit");
    assert!(
        total_retries > 0,
        "32 faulted seeds never retried a verb — the fault layer was not exercised"
    );
}

/// Determinism gate: same seed, same digests, same counters.
#[test]
fn alloc_chaos_seeds_are_deterministic() {
    for seed in [0u64, 7, 19] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(a, b, "seed {seed} diverged between identical runs");
    }
}
