//! Failure-injection integration: §IV-D semantics through the full stack.

use memory_disaggregation::prelude::*;
use memory_disaggregation::sim::FailureEvent;
use memory_disaggregation::types::EntryLocation;

fn remote_only_cluster(nodes: usize) -> DisaggregatedMemory {
    let mut config = ClusterConfig::small();
    config.nodes = nodes;
    config.group_size = nodes;
    config.server.donation = DonationPolicy::fixed(0.0); // force remote tier
    DisaggregatedMemory::new(config).unwrap()
}

fn replicas_of(dm: &DisaggregatedMemory, server: ServerId, key: u64) -> Vec<NodeId> {
    match dm.record(server, key).unwrap().location {
        EntryLocation::Remote { replicas } => replicas,
        other => panic!("expected remote location, got {other:?}"),
    }
}

#[test]
fn triple_replication_survives_two_failures() {
    let dm = remote_only_cluster(6);
    let server = dm.servers()[0];
    dm.put(server, 1, vec![0xAB; 2048]).unwrap();
    let replicas = replicas_of(&dm, server, 1);
    assert_eq!(replicas.len(), 3);
    dm.failures().inject_now(FailureEvent::NodeDown(replicas[0]));
    dm.failures().inject_now(FailureEvent::NodeDown(replicas[1]));
    assert_eq!(dm.get(server, 1).unwrap(), vec![0xAB; 2048]);
}

#[test]
fn link_failure_fails_over_to_other_replicas() {
    let dm = remote_only_cluster(6);
    let server = dm.servers()[0];
    dm.put(server, 1, vec![0xCD; 1024]).unwrap();
    let replicas = replicas_of(&dm, server, 1);
    // Cut the owner's links to the primary replica only.
    dm.failures()
        .inject_now(FailureEvent::LinkDown(server.node(), replicas[0]));
    assert_eq!(dm.get(server, 1).unwrap(), vec![0xCD; 1024]);
    // Heal and read again.
    dm.failures()
        .inject_now(FailureEvent::LinkUp(server.node(), replicas[0]));
    assert_eq!(dm.get(server, 1).unwrap(), vec![0xCD; 1024]);
}

#[test]
fn repair_after_crash_restores_triple_modularity() {
    let dm = remote_only_cluster(6);
    let server = dm.servers()[0];
    for key in 0..8 {
        dm.put(server, key, vec![key as u8; 1024]).unwrap();
    }
    // Crash one node that hosts replicas; its memory contents are lost.
    let victim = replicas_of(&dm, server, 0)[0];
    dm.failures().inject_now(FailureEvent::NodeDown(victim));
    dm.failures().inject_now(FailureEvent::NodeUp(victim));
    dm.handle_node_restart(victim).unwrap();

    let repaired = dm.repair_replicas();
    assert!(repaired > 0, "some entries must need repair");
    for key in 0..8 {
        let replicas = replicas_of(&dm, server, key);
        assert_eq!(replicas.len(), 3, "key {key} degree after repair");
        assert_eq!(dm.get(server, key).unwrap(), vec![key as u8; 1024]);
    }
}

#[test]
fn local_node_crash_has_os_swap_semantics() {
    // §IV-D: if the owner dies, the disaggregated memory system provides
    // the same failure semantics as losing OS swap — entries are gone.
    let dm = remote_only_cluster(4);
    let server = dm.servers()[0];
    dm.put(server, 1, vec![1u8; 512]).unwrap();
    let (_, purged) = dm.handle_node_restart(server.node()).unwrap();
    assert_eq!(purged, 1);
    assert!(dm.record(server, 1).is_none());
    assert!(dm.get(server, 1).is_err());
    // The restarted server can immediately store fresh entries.
    dm.put(server, 2, vec![2u8; 512]).unwrap();
    assert_eq!(dm.get(server, 2).unwrap(), vec![2u8; 512]);
}

#[test]
fn dead_replica_set_reports_unreachable_not_corrupt() {
    let dm = remote_only_cluster(4);
    let server = dm.servers()[0];
    dm.put(server, 1, vec![5u8; 256]).unwrap();
    for node in replicas_of(&dm, server, 1) {
        dm.failures().inject_now(FailureEvent::NodeDown(node));
    }
    let err = dm.get(server, 1).unwrap_err();
    assert!(
        matches!(err, DmemError::NodeUnavailable(_) | DmemError::LinkDown { .. }),
        "unexpected error {err:?}"
    );
}

#[test]
fn eviction_preserves_readability_and_updates_maps() {
    use memory_disaggregation::cluster::{Placer, RemoteSlabEvictor};
    use memory_disaggregation::sim::DetRng;

    let mut config = ClusterConfig::small();
    config.nodes = 6;
    config.group_size = 6;
    config.server.donation = DonationPolicy::fixed(0.0);
    config.node.recv_pool = ByteSize::from_kib(64);
    config.compression = CompressionMode::Off;
    let dm = DisaggregatedMemory::new(config).unwrap();
    let server = dm.servers()[0];
    for key in 0..12 {
        dm.put(server, key, vec![key as u8; 4096]).unwrap();
    }
    let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(40), 16);
    let placer = Placer::new(
        PlacementStrategy::WeightedRoundRobin,
        dm.membership().clone(),
        DetRng::new(5),
    );
    let outcome = dm.run_eviction(&evictor, &placer).unwrap();
    assert!(!outcome.moves.is_empty(), "pressure must trigger migration");
    // Every entry still readable after migration + map rewrite.
    for key in 0..12 {
        assert_eq!(dm.get(server, key).unwrap(), vec![key as u8; 4096]);
    }
}

#[test]
fn server_crash_blocks_writes_but_spares_neighbours() {
    let dm = remote_only_cluster(4);
    let (a, b) = (dm.servers()[0], dm.servers()[1]);
    dm.failures().inject_now(FailureEvent::ServerDown(a));
    assert!(matches!(
        dm.put(a, 1, vec![1]),
        Err(DmemError::ServerUnavailable(_))
    ));
    dm.put(b, 1, vec![2u8; 64]).unwrap();
    assert_eq!(dm.get(b, 1).unwrap(), vec![2u8; 64]);
}
