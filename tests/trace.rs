//! Tracing subsystem guarantees the telemetry layer is built on:
//! deterministic exports, full-stack span coverage, exact attribution,
//! and — critically for every figure — virtual-time equivalence between
//! traced and untraced runs.

use memory_disaggregation::sim::{jsonlite, SimDuration, Trace};
use memory_disaggregation::swap::{build_system_with_pages, SwapScale, SystemKind};
use memory_disaggregation::types::{ByteSize, CompressionMode, DistributionRatio};
use memory_disaggregation::workloads::{catalog, TraceConfig};

/// A small FastSwap scenario whose overflow exercises shared, remote and
/// fabric paths (the fig4 (a) shape at test scale).
fn scale() -> SwapScale {
    let mut scale = SwapScale::small();
    scale.shared_donation = 0.25;
    scale.remote_pool = ByteSize::from_kib(512);
    scale
}

fn run_scenario(traced: bool) -> (Trace, SimDuration) {
    let kind = SystemKind::FastSwap {
        ratio: DistributionRatio::FS_SM,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    };
    let scale = scale();
    let mut engine = build_system_with_pages(kind, &scale, 3.0, 0.4).unwrap();
    let profile = catalog::by_name("LogisticRegression").unwrap();
    let accesses = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
    if traced {
        engine.clock().tracer().enable();
    }
    let (_, completion) = engine.run(accesses).unwrap();
    let trace = engine.clock().tracer().finish();
    (trace, completion)
}

#[test]
fn same_seed_exports_are_byte_identical() {
    let (a, _) = run_scenario(true);
    let (b, _) = run_scenario(true);
    assert!(!a.spans.is_empty());
    assert_eq!(a.to_chrome_json(), b.to_chrome_json());
    assert_eq!(a.to_jsonl(), b.to_jsonl());
}

#[test]
fn traced_run_keeps_untraced_virtual_time() {
    // Spans never advance the clock, so figures produced with telemetry
    // on are byte-identical to the shipping CSVs.
    let (untraced, base) = run_scenario(false);
    assert!(untraced.spans.is_empty(), "tracer off must record nothing");
    let (_, traced) = run_scenario(true);
    assert_eq!(base.as_nanos(), traced.as_nanos());
}

#[test]
fn trace_covers_the_stack() {
    let (trace, _) = run_scenario(true);
    let cats = trace.categories();
    for expected in ["net", "swap", "core", "cluster"] {
        assert!(cats.contains(&expected), "missing {expected} in {cats:?}");
    }
}

#[test]
fn attribution_accounts_for_every_nanosecond() {
    let (trace, completion) = run_scenario(true);
    let attribution = trace.attribution(completion);
    assert_eq!(attribution.accounted_ns(), completion.as_nanos());
    assert!(attribution.category_ns("net") > 0);
    let text = attribution.to_string();
    assert!(text.contains("(untraced)"));
    assert!(text.contains("total"));
}

#[test]
fn chrome_export_parses_and_is_well_formed() {
    let (trace, _) = run_scenario(true);
    let doc = jsonlite::parse(&trace.to_chrome_json()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(jsonlite::Value::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.spans.len());
    for ev in events {
        assert!(ev.get("cat").and_then(jsonlite::Value::as_str).is_some());
        assert!(ev.get("ts").and_then(jsonlite::Value::as_f64).is_some());
        assert_eq!(ev.get("ph").and_then(jsonlite::Value::as_str), Some("X"));
    }
}
