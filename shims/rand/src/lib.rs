//! Offline shim for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the small slice of `rand` 0.8 it uses: the [`RngCore`] / [`SeedableRng`]
//! / [`Rng`] traits and a [`rngs::SmallRng`] implementation.
//!
//! `SmallRng` here is xoshiro256++ (the same family upstream `SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64 exactly as
//! `SeedableRng::seed_from_u64` does upstream. Streams are deterministic
//! per seed but are **not** bit-compatible with upstream `rand`; nothing
//! in this workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible `RngCore` operations (infallible here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, never failing in this shim.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the full value domain (the shim's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p.clamp(0.0, 1.0)
    }

    /// Fills `dest` with random data (rand's `Fill` shorthand for byte
    /// slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// xoshiro256++, the shim's small fast deterministic generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
