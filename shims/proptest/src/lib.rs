//! Offline deterministic shim for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, `prop_assert*`
//! macros, [`prop_oneof!`], [`Strategy`] with `prop_map`, integer/float
//! range strategies, tuple strategies, [`any`], [`collection::vec`] and a
//! [`test_runner::TestRunner`].
//!
//! Unlike upstream proptest there is **no shrinking and no persistence
//! file**: every run is fully deterministic. Cases are derived from
//! `Config::seed` (default [`test_runner::DEFAULT_SEED`], overridable per
//! config with [`test_runner::Config::seed`] or globally with the
//! `DMEM_PROPTEST_SEED` environment variable), the test's name and the
//! case index, so a reported failure names everything needed to replay
//! it: rerun the same test with the same seed and the same case index is
//! regenerated exactly.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The deterministic RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of values of one type.
///
/// This is the shim's flattened take on proptest's `Strategy`: a sampler
/// without shrink trees. `Value` must be `Debug` so failing cases can be
/// reported.
pub trait Strategy {
    /// The type of the generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives; see [`prop_oneof!`].
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..*self.end())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test execution: configuration, case derivation and failure reporting.
pub mod test_runner {
    use super::{Strategy, TestRng};
    use rand::SeedableRng;
    use std::fmt;

    /// Seed used when neither [`Config::seed`] nor `DMEM_PROPTEST_SEED`
    /// overrides it. Recorded here so failures are replayable forever.
    pub const DEFAULT_SEED: u64 = 0x243f_6a88_85a3_08d3;

    /// Why one generated case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An explicit `prop_assert*` failure.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(reason) => write!(f, "{reason}"),
            }
        }
    }

    /// A whole test's failure: the case that failed and how to replay it.
    #[derive(Debug)]
    pub struct TestError {
        /// Human-readable description: seed, case index, values, reason.
        pub message: String,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.message)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Base RNG seed; combined with the test name and case index.
        pub seed: u64,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                seed: env_seed().unwrap_or(DEFAULT_SEED),
            }
        }
    }

    impl Config {
        /// A config running `cases` cases with the default seed.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// Pins the base seed explicitly (wins over the environment).
        pub fn seed(mut self, seed: u64) -> Self {
            self.seed = seed;
            self
        }
    }

    fn env_seed() -> Option<u64> {
        let raw = std::env::var("DMEM_PROPTEST_SEED").ok()?;
        let raw = raw.trim();
        // Accept both the decimal form printed in failure banners and the
        // 0x-prefixed hex form used in docs and chaos reports.
        if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The RNG for `(seed, test name, case index)`. Public so the
    /// [`crate::proptest!`] macro (and replay tooling) can rebuild any
    /// reported case.
    pub fn case_rng(seed: u64, name: &str, case: u32) -> TestRng {
        TestRng::seed_from_u64(splitmix(
            seed ^ fnv1a(name.as_bytes()) ^ splitmix(u64::from(case)),
        ))
    }

    /// Formats the standard replay banner for a failing case.
    pub fn failure_banner(name: &str, seed: u64, case: u32, values: &str, reason: &str) -> String {
        format!(
            "proptest case failed: {name} (seed = {seed:#x}, case = {case}): \
             inputs: {values}: {reason}\n\
             replay: DMEM_PROPTEST_SEED={seed} cargo test {name}"
        )
    }

    /// Explicit runner (the `TestRunner::run` style of driving cases).
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// Creates a runner for `config`.
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `test` against `config.cases` generated values, stopping
        /// at the first failure.
        ///
        /// # Errors
        ///
        /// Returns a [`TestError`] describing the failing case.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), TestError> {
            for case in 0..self.config.cases {
                let mut rng = case_rng(self.config.seed, "test_runner", case);
                let value = strategy.sample(&mut rng);
                let desc = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(TestError {
                        message: failure_banner(
                            "test_runner",
                            self.config.seed,
                            case,
                            &desc,
                            &e.to_string(),
                        ),
                    });
                }
            }
            Ok(())
        }
    }
}

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Strategy};
}

/// Defines deterministic property tests; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($binder:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::case_rng(config.seed, stringify!($name), case);
                    $(
                        let $binder = $crate::Strategy::sample(&($strat), &mut proptest_rng);
                    )+
                    let values = [$(format!(concat!(stringify!($binder), " = {:?}"), $binder)),+]
                        .join(", ");
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        )) {
                            ::std::result::Result::Ok(r) => r,
                            ::std::result::Result::Err(panic) => {
                                let reason = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "panicked".to_string());
                                ::std::result::Result::Err(
                                    $crate::test_runner::TestCaseError::fail(format!(
                                        "panic: {reason}"
                                    )),
                                )
                            }
                        };
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "{}",
                            $crate::test_runner::failure_banner(
                                stringify!($name),
                                config.seed,
                                case,
                                &values,
                                &e.to_string(),
                            )
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::OneOf(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{Config, TestCaseError, TestRunner};

    #[test]
    fn runner_is_deterministic() {
        let strat = crate::collection::vec(0u64..100, 1..10);
        let mut seen_a = Vec::new();
        let mut seen_b = Vec::new();
        TestRunner::new(Config::with_cases(5).seed(7))
            .run(&strat, |v| {
                seen_a.push(v);
                Ok(())
            })
            .unwrap();
        TestRunner::new(Config::with_cases(5).seed(7))
            .run(&strat, |v| {
                seen_b.push(v);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen_a, seen_b);
    }

    #[test]
    fn runner_reports_failing_case() {
        let err = TestRunner::new(Config::with_cases(50).seed(1))
            .run(&(0u64..100), |v| {
                if v >= 50 {
                    return Err(TestCaseError::fail("too big"));
                }
                Ok(())
            })
            .unwrap_err();
        assert!(err.message.contains("too big"), "{}", err.message);
        assert!(err.message.contains("seed"), "{}", err.message);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_in_ranges(x in 5u64..10, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_vecs_and_oneof_compose(
            v in crate::collection::vec((0u8..4, any::<bool>()), 1..20),
            pick in prop_oneof![0u64..10, 90u64..100],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (small, _flag) in &v {
                prop_assert!(*small < 4);
            }
            prop_assert!(pick < 10 || (90..100).contains(&pick));
        }

        #[test]
        fn prop_map_applies(double in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(double % 2, 0);
            prop_assert_ne!(double, 99);
        }
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn failing_property_names_seed_and_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4).seed(3))]
            fn inner_always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner_always_fails();
    }
}
