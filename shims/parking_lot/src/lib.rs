//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `parking_lot` it actually uses: `Mutex` and
//! `RwLock` with infallible, non-poisoning guard acquisition. Locks are
//! backed by `std::sync`; a poisoned lock (a thread panicked while
//! holding it) is recovered rather than propagated, matching
//! `parking_lot`'s no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
