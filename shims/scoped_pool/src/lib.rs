//! A minimal scoped-thread worker pool.
//!
//! The build environment has no registry access, so instead of `rayon`
//! the workspace vendors the one primitive the bench and chaos drivers
//! need: a **deterministic-order parallel map** over independent jobs.
//!
//! `par_map` fans the items of a `Vec` across `jobs` scoped threads and
//! returns the results *in input order*, so a driver that renders results
//! sequentially afterwards produces byte-identical output to a sequential
//! run — parallelism never reorders anything observable. Work is handed
//! out through a shared atomic cursor (work stealing by index), so
//! uneven job costs still load-balance.
//!
//! ```
//! let squares = scoped_pool::par_map(4, (0u64..100).collect(), |_, n| n * n);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads worth spawning on this machine.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` scoped threads, returning the
/// results in input order. `f` receives `(index, item)` so callers can
/// label work without capturing per-item state.
///
/// With `jobs <= 1` (or a single item) everything runs inline on the
/// caller's thread — no threads are spawned, which keeps single-core and
/// `--jobs 1` runs exactly as cheap as the pre-pool sequential code.
///
/// # Panics
///
/// Propagates the first worker panic (after all workers have stopped).
pub fn par_map<I, R, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let workers = jobs.min(n);
    // Items move into per-slot cells a worker can take from; results land
    // in per-slot cells read back in order afterwards. Per-slot mutexes
    // are uncontended (each slot is touched by exactly one worker).
    let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("slot taken once");
                let r = f(i, item);
                *results[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            }));
        }
        for handle in handles {
            if let Err(panic) = handle.join() {
                std::panic::resume_unwind(panic);
            }
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map(8, (0u64..1000).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0u64..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_run() {
        let work = |_: usize, x: u64| -> u64 {
            // Uneven per-item cost to exercise the shared cursor.
            (0..(x % 7) * 100).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let items: Vec<u64> = (0..257).collect();
        assert_eq!(par_map(1, items.clone(), work), par_map(5, items, work));
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(4, Vec::<u8>::new(), |_, x| x), Vec::<u8>::new());
        assert_eq!(par_map(4, vec![9u8], |_, x| x + 1), vec![10]);
    }

    #[test]
    fn parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        par_map(2, vec![0u8, 1, 2, 3], |_, x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
