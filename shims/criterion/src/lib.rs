//! Offline shim for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal wall-clock bench harness with criterion's API shape:
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. It reports
//! mean ns/iter (and derived throughput) to stdout — no statistics
//! beyond that, no HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one iteration processes, for derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Abstract elements per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measures one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// (total duration, iterations) of the measured run.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up briefly, then scale iterations to a ~10 ms floor so
        // cheap routines aren't drowned by timer overhead.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 24 {
                let scaled = iters.saturating_mul(self.sample_size as u64 / 10 + 1);
                let start = Instant::now();
                for _ in 0..scaled {
                    black_box(routine());
                }
                self.measured = Some((start.elapsed(), scaled));
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let iters = self.sample_size.max(10) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn report(name: &str, measured: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = measured else {
        println!("{name}: no measurement");
        return;
    };
    let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (ns_per_iter / 1e9) / (1024.0 * 1024.0);
            format!(" ({mib_s:.1} MiB/s)")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (ns_per_iter / 1e9);
            format!(" ({elem_s:.0} elem/s)")
        }
        None => String::new(),
    };
    println!("{name}: {ns_per_iter:.0} ns/iter{rate} [{iters} iters]");
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report(
            &format!("{}/{}", self.name, id.into()),
            bencher.measured,
            self.throughput,
        );
        self
    }

    /// Ends the group (reporting happens per-benchmark; this is a no-op).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The bench harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone named benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
        };
        f(&mut bencher);
        report(&id.into(), bencher.measured, None);
        self
    }
}

/// Declares a group of benchmark functions as one callable.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().sample_size(10);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(4096));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(smoke, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }

    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(10);
        targets = smoke_target
    }

    #[test]
    fn configured_group_macro_runs() {
        configured();
    }
}
