//! # memory-disaggregation
//!
//! A from-scratch reproduction of *"Memory Disaggregation: Research
//! Problems and Opportunities"* (Liu et al., IEEE ICDCS 2019): a two-level
//! disaggregated memory system — node-coordinated shared memory pools plus
//! cluster-level remote memory over a simulated RDMA fabric — together
//! with the paper's two prototype applications, **FastSwap** (hybrid
//! disaggregated swapping) and **DAHI** (off-heap RDD caching), their
//! baselines (Linux disk swap, zswap, NBDX, Infiniswap, vanilla Spark),
//! and a bench harness regenerating every table and figure of the paper's
//! evaluation.
//!
//! This crate is the umbrella: it re-exports the public APIs of the
//! workspace crates so applications can depend on one crate.
//!
//! ## Quickstart
//!
//! ```
//! use memory_disaggregation::prelude::*;
//!
//! // A 4-node cluster, 2 virtual servers per node, paper defaults.
//! let dm = DisaggregatedMemory::new(ClusterConfig::small())?;
//! let server = dm.servers()[0];
//!
//! // Put tiers transparently: node shared pool → remote memory → disk.
//! dm.put(server, 42, vec![7u8; 4096])?;
//! assert_eq!(dm.get(server, 42)?, vec![7u8; 4096]);
//! # Ok::<(), memory_disaggregation::prelude::DmemError>(())
//! ```
//!
//! ## Layer map
//!
//! | Crate | Role |
//! |---|---|
//! | [`types`] | ids, sizes, errors, configuration |
//! | [`alloc`] | object-granularity far-memory heap (size-class allocator) |
//! | [`sim`] | virtual clock, device cost models, failure injection |
//! | [`net`] | simulated RDMA verbs, connection management, batching |
//! | [`compress`] | LZ page codec, size classes, zswap baseline |
//! | [`kv`] | Memcached-style cache with a disaggregated overflow tier |
//! | [`node`] | node-level shared memory pool (LDMC/LDMS) |
//! | [`qos`] | multi-tenant QoS: quotas, priority eviction, rate limits |
//! | [`cluster`] | groups, election, placement, replication, eviction |
//! | [`core`] | the tiered [`prelude::DisaggregatedMemory`] facade |
//! | [`swap`] | FastSwap + swap baselines over a paging engine |
//! | [`rdd`] | mini dataflow engine + DAHI off-heap cache |
//! | [`workloads`] | the paper's application models and traces |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod rack;

pub use dmem_alloc as alloc;
pub use dmem_cluster as cluster;
pub use dmem_compress as compress;
pub use dmem_kv as kv;
pub use dmem_core as core;
pub use dmem_net as net;
pub use dmem_node as node;
pub use dmem_qos as qos;
pub use dmem_rdd as rdd;
pub use dmem_sim as sim;
pub use dmem_swap as swap;
pub use dmem_types as types;
pub use dmem_workloads as workloads;

/// The most commonly used items, importable with one `use`.
pub mod prelude {
    pub use dmem_core::{DisaggregatedMemory, DmStats, TierPreference};
    pub use dmem_sim::{CostModel, SimClock, SimDuration};
    pub use dmem_swap::{run_ml_workload, SwapScale, SystemKind};
    pub use dmem_types::{
        ByteSize, ClusterConfig, CompressionMode, DistributionRatio, DmemError, DmemResult,
        DonationPolicy, NodeId, PlacementStrategy, ReplicationFactor, ServerId,
    };
}
