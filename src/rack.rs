//! Rack-scale disaggregated-memory simulation on the sharded engine.
//!
//! The paper's headline scenarios — whole racks serving far memory to
//! whole clusters — need simulations two orders of magnitude past the
//! tens-of-hosts figures. This model runs them: hundreds to thousands of
//! hosts, each with a bounded local frame cache faulting 4 KiB pages
//! from replicated remote memory over the fabric, with host outages,
//! read failover and suspect probing, executed by
//! [`ShardedEngine`] so the work spreads across cores
//! while every output byte stays independent of the worker count.
//!
//! Page *contents* are never materialized: both sides compute a
//! deterministic checksum from `(page, version)`
//! ([`page_checksum`]), so a 4 TiB logical address space costs no
//! memory, every read is verified end-to-end (a wrong or torn read
//! panics), and the checksum work itself is the per-shard compute that
//! parallelises.
//!
//! Consistency model: remote writes (dirty-page writebacks) bump the
//! page version and fan out to every replica; the *expectation* a
//! reader holds is raised only after **all** replicas acknowledged, so
//! a version older than expected can never be observed — the no-stale-
//! read invariant, checked on every fault. Outages model *reachability*
//! loss (reads and probes fail, failover engages), not data loss:
//! replica memory keeps applying writes while unreachable, as a
//! suspected-but-live memory server would.

use dmem_cluster::spread_replicas;
use dmem_net::{HostOutage, ShardFaultSchedule};
use dmem_sim::shard::{shard_rng, EngineReport, EpochCtx, ShardWorker, ShardedEngine};
use dmem_sim::{
    splitmix64, CostModel, DetRng, EventQueue, FlightRecorder, LocalMetrics, ShardClock,
    ShardEventLog, ShardId, ShardMap, ShardSampler, SimDuration, SimInstant, Timeline,
};
use std::collections::HashMap;
use std::fmt;

/// Configuration of one rack-scale run. All fields shape the *scenario*;
/// the worker count is a separate argument to [`run_rack`] and never
/// changes the output.
#[derive(Debug, Clone)]
pub struct RackConfig {
    /// Hosts in the rack.
    pub hosts: usize,
    /// Logical far-memory pages per host (never materialized).
    pub pages_per_host: u64,
    /// Local cache frames per host.
    pub frames_per_host: usize,
    /// Accesses each host issues (closed loop, one outstanding fault).
    pub accesses_per_host: u64,
    /// Replica copies per page (≥ 1).
    pub replicas: usize,
    /// Hosts per shard (the logical partition; fixed by the scenario).
    pub hosts_per_shard: usize,
    /// Fraction of accesses that dirty the page (trigger writeback on
    /// eviction).
    pub write_fraction: f64,
    /// Fraction of each host's pages forming its hot set.
    pub hot_fraction: f64,
    /// Probability an access lands in the hot set.
    pub hot_weight: f64,
    /// Whether hosts suffer outage windows (failover + probes engage).
    pub faults: bool,
    /// Fraction of hosts that suffer one outage (when `faults`).
    pub outage_fraction: f64,
    /// Keep one trace event in this many (0 disables the trace).
    pub trace_sample: u64,
    /// Telemetry sampling window: each shard captures its metric deltas
    /// on this virtual-time grid, merged post-run into
    /// [`RackReport::timeline`] in `(window, shard)` order — so the
    /// timeline is byte-identical at every worker count.
    /// `SimDuration::ZERO` disables sampling.
    pub timeline_window: SimDuration,
    /// Root seed; everything derives from it.
    pub seed: u64,
}

impl RackConfig {
    /// The `fig4_rack` sweep shape: replicated, faulted, traced.
    pub fn rack_default(hosts: usize) -> Self {
        RackConfig {
            hosts,
            pages_per_host: 4096,
            frames_per_host: 64,
            accesses_per_host: 200,
            replicas: 2,
            hosts_per_shard: 32,
            write_fraction: 0.3,
            hot_fraction: 0.02,
            hot_weight: 0.8,
            faults: true,
            outage_fraction: 0.05,
            trace_sample: 4096,
            timeline_window: SimDuration::from_micros(10),
            seed: 0x00d1_5a66,
        }
    }

    /// A small, fast shape for tests and the CI smoke.
    pub fn smoke() -> Self {
        RackConfig {
            hosts: 64,
            pages_per_host: 256,
            frames_per_host: 8,
            accesses_per_host: 60,
            hosts_per_shard: 8,
            trace_sample: 64,
            ..RackConfig::rack_default(64)
        }
    }

    /// The logical shard partition this configuration fixes.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::grouped(self.hosts, self.hosts.div_ceil(self.hosts_per_shard.max(1)))
    }

    /// The outage horizon estimate: long enough that every outage ends
    /// while traffic still flows, short enough that faults overlap the
    /// measured window.
    fn outage_horizon(&self) -> SimDuration {
        // Roughly half the expected virtual run length.
        SimDuration::from_micros(self.accesses_per_host.max(1))
    }
}

/// Deterministic checksum of the synthetic content of `(page, version)`.
///
/// Stands in for hashing a real 4 KiB page: 512 word-mixing rounds, so
/// serving and verifying a page costs real CPU on the owning shard and
/// the faulting shard — the per-shard compute that makes worker scaling
/// measurable. Any disagreement between the serving replica and the
/// reader means a wrong/torn read and panics the run.
pub fn page_checksum(page: u64, version: u32) -> u64 {
    let seed = splitmix64(page.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (u64::from(version) << 40));
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for word in 0..512u64 {
        acc = (acc ^ splitmix64(seed ^ word)).wrapping_mul(0x1000_0000_01b3);
    }
    acc
}

/// Cross-shard messages of the rack model. Every variant is a fabric
/// verb class: one-sided-read RPCs, replication writes, failover probes.
#[derive(Debug, Clone, Copy)]
enum RackMsg {
    /// Remote page fault: `requester` asks replica `replica_idx` of
    /// `page` for its content.
    ReadReq {
        page: u64,
        requester: usize,
        target: usize,
        replica_idx: usize,
    },
    /// Successful read: version + content checksum.
    ReadResp {
        page: u64,
        requester: usize,
        version: u32,
        checksum: u64,
    },
    /// The target was unreachable; the requester fails over.
    ReadNack {
        page: u64,
        requester: usize,
        target: usize,
        replica_idx: usize,
    },
    /// Replication write of a dirty page (writeback), new `version`.
    WriteReq {
        page: u64,
        target: usize,
        requester: usize,
        version: u32,
    },
    /// Replica acknowledged the write.
    WriteAck {
        page: u64,
        requester: usize,
        version: u32,
    },
    /// Failover probe: is `target` reachable again?
    ProbeReq { target: usize, requester: usize },
    /// Probe answer.
    ProbeAck {
        target: usize,
        requester: usize,
        up: bool,
    },
}

/// Local (intra-shard) events.
enum LocalEvent {
    /// A host issues its next access.
    Access { host: usize },
    /// A mailbox envelope came due.
    Deliver { msg: RackMsg },
}

/// A page fault in flight: what was asked for, when, and the version
/// floor any answer must satisfy.
#[derive(Debug, Clone, Copy)]
struct InflightFault {
    page: u64,
    /// The triggering access wants the page dirty once it lands.
    dirty: bool,
    started: SimInstant,
    /// `expected[page]` when the *current* read was issued: every
    /// writeback fully acknowledged before the read left must be
    /// visible at whichever replica answers — the no-stale-read
    /// invariant. (A writeback still in flight at issue time may
    /// legitimately be missed.)
    floor: u32,
}

/// One cached frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    version: u32,
    dirty: bool,
}

/// Per-host state, owned by the host's shard.
struct HostState {
    rng: DetRng,
    /// Resident pages (global ids) with their version + dirty bit.
    frames: HashMap<u64, Frame>,
    /// FIFO eviction order of resident pages.
    fifo: std::collections::VecDeque<u64>,
    /// Lower bound a read of each page must satisfy (raised only after
    /// all replicas acked the writeback).
    expected: HashMap<u64, u32>,
    /// Writebacks awaiting replica acks: (page, version) → acks left.
    pending_writes: HashMap<(u64, u32), usize>,
    /// Replica hosts currently suspected unreachable.
    suspects: Vec<usize>,
    /// The fault currently in flight (one outstanding per host).
    inflight: Option<InflightFault>,
    issued: u64,
    done: bool,
}

/// One shard of the rack: its hosts, replica store, outage windows.
struct RackShard {
    shard: ShardId,
    cfg: RackConfig,
    map: ShardMap,
    cost: CostModel,
    clock: ShardClock,
    queue: EventQueue<LocalEvent>,
    /// Host id → state, for hosts this shard owns.
    hosts: HashMap<usize, HostState>,
    /// Replica memory hosted here: (host, page) → version.
    store: HashMap<(usize, u64), u32>,
    /// Outage windows of this shard's hosts.
    outages: Vec<HostOutage>,
    metrics: LocalMetrics,
    log: ShardEventLog,
    sampler: ShardSampler,
}

impl RackShard {
    fn new(shard: ShardId, cfg: &RackConfig, map: &ShardMap, outages: Vec<HostOutage>) -> Self {
        let mut rack = RackShard {
            shard,
            cfg: cfg.clone(),
            map: map.clone(),
            cost: CostModel::paper_default(),
            clock: ShardClock::new(),
            queue: EventQueue::new(),
            hosts: HashMap::new(),
            store: HashMap::new(),
            outages,
            metrics: LocalMetrics::new(),
            log: ShardEventLog::new(shard.0, cfg.trace_sample),
            sampler: ShardSampler::new(shard.0, cfg.timeline_window),
        };
        // The shard owns its hosts' streams: all derive from the shard's
        // own (root_seed, shard_id)-split stream, never from a shared one.
        let stream = shard_rng(cfg.seed, shard);
        for host in map.hosts_of(shard) {
            let mut rng = stream.fork_indexed("rack.host", host as u64);
            let kickoff = SimInstant::from_nanos(rng.below(2_000) as u64);
            rack.hosts.insert(
                host,
                HostState {
                    rng,
                    frames: HashMap::new(),
                    fifo: std::collections::VecDeque::new(),
                    expected: HashMap::new(),
                    pending_writes: HashMap::new(),
                    suspects: Vec::new(),
                    inflight: None,
                    issued: 0,
                    done: false,
                },
            );
            rack.queue.schedule(kickoff, LocalEvent::Access { host });
        }
        rack
    }

    /// Whether `host` (owned by this shard) is inside an outage window.
    fn host_down(&self, host: usize, now: SimInstant) -> bool {
        self.outages
            .iter()
            .any(|o| o.host == host && o.from <= now && now < o.until)
    }

    /// Small fixed-size control message latency.
    fn msg_lat(&self) -> SimDuration {
        self.cost.rdma.transfer(64)
    }

    /// 4 KiB payload latency.
    fn page_lat(&self) -> SimDuration {
        self.cost.rdma.transfer(4096 + 64)
    }

    /// The replica set of `page` for `owner` (pure, shard-local).
    fn replicas_of(&self, page: u64, owner: usize) -> Vec<usize> {
        spread_replicas(page, owner, self.cfg.hosts, self.cfg.replicas, &self.map)
    }

    fn send(&self, ctx: &mut EpochCtx<RackMsg>, now: SimInstant, to_host: usize, lat: SimDuration, msg: RackMsg) {
        let dest = self.map.shard_of(to_host);
        ctx.send(dest, now, now + lat, msg);
    }

    /// Issues the read of `page` for `host` to replica `replica_idx`,
    /// failing over past suspects. Returns `false` when every replica is
    /// suspect (the caller stalls and retries).
    fn issue_read(
        &mut self,
        ctx: &mut EpochCtx<RackMsg>,
        now: SimInstant,
        host: usize,
        page: u64,
        from_idx: usize,
    ) -> bool {
        let replicas = self.replicas_of(page, host);
        let chosen = {
            let state = self.hosts.get_mut(&host).expect("host owned by shard");
            let idx =
                (from_idx..replicas.len()).find(|&i| !state.suspects.contains(&replicas[i]));
            if idx.is_some() {
                // Snapshot the stale-read floor at issue time: every
                // writeback fully acked *before now* must be visible to
                // this read, wherever it lands.
                let floor = state.expected.get(&page).copied().unwrap_or(0);
                if let Some(fault) = state.inflight.as_mut() {
                    fault.floor = floor;
                }
            }
            idx
        };
        let Some(idx) = chosen else { return false };
        let target = replicas[idx];
        let lat = self.msg_lat();
        self.send(
            ctx,
            now,
            target,
            lat,
            RackMsg::ReadReq {
                page,
                requester: host,
                target,
                replica_idx: idx,
            },
        );
        true
    }

    /// One access of `host`'s workload loop.
    fn access(&mut self, ctx: &mut EpochCtx<RackMsg>, now: SimInstant, host: usize) {
        let cfg_pages = self.cfg.pages_per_host;
        let (hot_fraction, hot_weight) = (self.cfg.hot_fraction, self.cfg.hot_weight);
        let write_fraction = self.cfg.write_fraction;
        let hit_cost = self.cost.dram.transfer(4096);
        let state = self.hosts.get_mut(&host).expect("host owned by shard");
        if state.issued >= self.cfg.accesses_per_host {
            state.done = true;
            return;
        }
        state.issued += 1;
        // Hot-set skew: a small set of pages absorbs most accesses.
        let hot_pages = ((cfg_pages as f64 * hot_fraction) as u64).max(1);
        let local = if state.rng.chance(hot_weight) {
            state.rng.below(hot_pages as usize) as u64
        } else {
            state.rng.below(cfg_pages as usize) as u64
        };
        let page = host as u64 * cfg_pages + local;
        let dirty = state.rng.chance(write_fraction);
        let think = SimDuration::from_nanos(200 + state.rng.below(200) as u64);
        let hit = match state.frames.get_mut(&page) {
            Some(frame) => {
                frame.dirty |= dirty;
                true
            }
            None => {
                // One outstanding fault per host; the dirty intent lands
                // with the frame when the response arrives. The floor is
                // stamped by `issue_read` when the read actually leaves.
                state.inflight = Some(InflightFault {
                    page,
                    dirty,
                    started: now,
                    floor: 0,
                });
                false
            }
        };
        self.metrics.inc("rack.access.total");
        if hit {
            self.metrics.inc("rack.access.hit");
            self.queue
                .schedule(now + hit_cost + think, LocalEvent::Access { host });
            return;
        }
        // Miss: remote fault.
        self.metrics.inc("rack.access.miss");
        self.log.push(now.nanos(), "fault", host as u64, page);
        if !self.issue_read(ctx, now, host, page, 0) {
            // Every replica suspect: stall and retry the whole access.
            self.metrics.inc("rack.read.stalled");
            let state = self.hosts.get_mut(&host).unwrap();
            state.inflight = None;
            state.issued -= 1;
            self.queue
                .schedule(now + STALL_RETRY, LocalEvent::Access { host });
        }
    }

    /// Installs a faulted-in page, evicting (and writing back) if full.
    fn install_frame(
        &mut self,
        ctx: &mut EpochCtx<RackMsg>,
        now: SimInstant,
        host: usize,
        page: u64,
        version: u32,
        dirty: bool,
    ) {
        let frames_cap = self.cfg.frames_per_host;
        let victim = {
            let state = self.hosts.get_mut(&host).unwrap();
            state.frames.insert(page, Frame { version, dirty });
            state.fifo.push_back(page);
            if state.frames.len() > frames_cap {
                let victim = state.fifo.pop_front().expect("fifo tracks frames");
                state.frames.remove(&victim).map(|f| (victim, f))
            } else {
                None
            }
        };
        if let Some((vpage, vframe)) = victim {
            if vframe.dirty {
                self.writeback(ctx, now, host, vpage, vframe.version + 1);
            }
        }
    }

    /// Replicated writeback of a dirty page at `version`.
    fn writeback(
        &mut self,
        ctx: &mut EpochCtx<RackMsg>,
        now: SimInstant,
        host: usize,
        page: u64,
        version: u32,
    ) {
        let replicas = self.replicas_of(page, host);
        self.metrics.inc("rack.writeback.pages");
        self.log.push(now.nanos(), "writeback", host as u64, page);
        *self
            .hosts
            .get_mut(&host)
            .unwrap()
            .pending_writes
            .entry((page, version))
            .or_insert(0) += replicas.len();
        for target in replicas {
            let lat = self.page_lat();
            self.send(
                ctx,
                now,
                target,
                lat,
                RackMsg::WriteReq {
                    page,
                    target,
                    requester: host,
                    version,
                },
            );
        }
    }

    fn deliver(&mut self, ctx: &mut EpochCtx<RackMsg>, now: SimInstant, msg: RackMsg) {
        match msg {
            RackMsg::ReadReq {
                page,
                requester,
                target,
                replica_idx,
            } => {
                if self.cfg.faults && self.host_down(target, now) {
                    // The requester learns after the RC retransmit budget
                    // burns: a penalty on top of the message flight.
                    self.metrics.inc("rack.read.nacked");
                    let lat = self.msg_lat() * 4;
                    self.send(
                        ctx,
                        now,
                        requester,
                        lat,
                        RackMsg::ReadNack {
                            page,
                            requester,
                            target,
                            replica_idx,
                        },
                    );
                    return;
                }
                let version = self
                    .store
                    .get(&(target, page))
                    .copied()
                    .unwrap_or(0);
                // Serving reads the replica memory and hashes the page:
                // the owning shard's share of the per-fault compute.
                let checksum = page_checksum(page, version);
                self.metrics.inc("rack.read.served");
                let lat = self.cost.dram.transfer(4096) + self.page_lat();
                self.send(
                    ctx,
                    now,
                    requester,
                    lat,
                    RackMsg::ReadResp {
                        page,
                        requester,
                        version,
                        checksum,
                    },
                );
            }
            RackMsg::ReadResp {
                page,
                requester,
                version,
                checksum,
            } => {
                // End-to-end verification: recompute the content hash.
                assert_eq!(
                    checksum,
                    page_checksum(page, version),
                    "host {requester} page {page}: wrong read (content mismatch at v{version})"
                );
                let state = self.hosts.get_mut(&requester).expect("requester owned");
                let fault = state.inflight.take().expect("fault in flight");
                assert_eq!(fault.page, page, "response matches the in-flight fault");
                assert!(
                    version >= fault.floor,
                    "host {requester} page {page}: stale read (v{version} < acked floor v{})",
                    fault.floor
                );
                self.metrics.inc("rack.read.remote");
                self.metrics
                    .record("rack.fault.ns", (now - fault.started).as_nanos());
                self.install_frame(ctx, now, requester, page, version, fault.dirty);
                let state = self.hosts.get_mut(&requester).unwrap();
                let think = SimDuration::from_nanos(200 + state.rng.below(200) as u64);
                self.queue
                    .schedule(now + think, LocalEvent::Access { host: requester });
            }
            RackMsg::ReadNack {
                page,
                requester,
                target,
                replica_idx,
            } => {
                self.metrics.inc("rack.read.failover");
                self.log.push(now.nanos(), "failover", requester as u64, target as u64);
                {
                    let state = self.hosts.get_mut(&requester).expect("requester owned");
                    if !state.suspects.contains(&target) {
                        state.suspects.push(target);
                    }
                }
                // Arm the probe loop for the suspect.
                self.metrics.inc("rack.probe.sent");
                self.send(
                    ctx,
                    now,
                    target,
                    PROBE_INTERVAL,
                    RackMsg::ProbeReq { target, requester },
                );
                // Fail the read over to the next replica.
                if !self.issue_read(ctx, now, requester, page, replica_idx + 1) {
                    self.metrics.inc("rack.read.stalled");
                    let state = self.hosts.get_mut(&requester).unwrap();
                    state.inflight = None;
                    state.issued -= 1;
                    self.queue
                        .schedule(now + STALL_RETRY, LocalEvent::Access { host: requester });
                }
            }
            RackMsg::WriteReq {
                page,
                target,
                requester,
                version,
            } => {
                // Replica memory applies writes even while unreachable:
                // outages model reachability, not data loss.
                let slot = self.store.entry((target, page)).or_insert(0);
                *slot = (*slot).max(version);
                self.metrics.inc("rack.write.applied");
                let lat = self.cost.dram.transfer(4096) + self.msg_lat();
                self.send(
                    ctx,
                    now,
                    requester,
                    lat,
                    RackMsg::WriteAck {
                        page,
                        requester,
                        version,
                    },
                );
            }
            RackMsg::WriteAck {
                page,
                requester,
                version,
            } => {
                let state = self.hosts.get_mut(&requester).expect("requester owned");
                let left = state
                    .pending_writes
                    .get_mut(&(page, version))
                    .expect("ack matches a pending writeback");
                *left -= 1;
                if *left == 0 {
                    state.pending_writes.remove(&(page, version));
                    // All replicas hold `version`: raise the floor.
                    let slot = state.expected.entry(page).or_insert(0);
                    *slot = (*slot).max(version);
                    self.metrics.inc("rack.writeback.acked");
                }
            }
            RackMsg::ProbeReq { target, requester } => {
                let up = !(self.cfg.faults && self.host_down(target, now));
                let lat = self.msg_lat();
                self.send(
                    ctx,
                    now,
                    requester,
                    lat,
                    RackMsg::ProbeAck {
                        target,
                        requester,
                        up,
                    },
                );
            }
            RackMsg::ProbeAck {
                target,
                requester,
                up,
            } => {
                if up {
                    self.metrics.inc("rack.probe.cleared");
                    self.log.push(now.nanos(), "suspect.cleared", requester as u64, target as u64);
                    let state = self.hosts.get_mut(&requester).expect("requester owned");
                    state.suspects.retain(|&s| s != target);
                } else {
                    // Still down: keep probing.
                    self.metrics.inc("rack.probe.sent");
                    self.send(
                        ctx,
                        now,
                        target,
                        PROBE_INTERVAL,
                        RackMsg::ProbeReq { target, requester },
                    );
                }
            }
        }
    }
}

/// Backoff before retrying an access whose replicas are all suspect.
const STALL_RETRY: SimDuration = SimDuration::from_micros(20);
/// Delay between failover probes of a suspect host.
const PROBE_INTERVAL: SimDuration = SimDuration::from_micros(50);

impl ShardWorker for RackShard {
    type Msg = RackMsg;

    fn run_epoch(&mut self, ctx: &mut EpochCtx<RackMsg>) {
        debug_assert_eq!(ctx.shard(), self.shard, "worker bound to its shard");
        for env in ctx.take_inbox() {
            self.queue
                .schedule(env.deliver_at, LocalEvent::Deliver { msg: env.msg });
        }
        while let Some((t, event)) = self.queue.pop_before(ctx.epoch_end()) {
            self.clock.advance_to(t);
            // Sample before handling: whatever this event increments is
            // attributed to the window containing `t`. Event times are
            // worker-count independent, so capture points are too.
            self.sampler.tick(t.nanos(), &self.metrics);
            match event {
                LocalEvent::Access { host } => self.access(ctx, t, host),
                LocalEvent::Deliver { msg } => self.deliver(ctx, t, msg),
            }
        }
    }

    fn next_local_at(&self) -> Option<SimInstant> {
        self.queue.next_at()
    }
}

/// Aggregate result of one rack run. Every field is a function of the
/// [`RackConfig`] only — reruns and different worker counts reproduce it
/// byte for byte.
#[derive(Debug, Clone)]
pub struct RackReport {
    /// Hosts simulated.
    pub hosts: usize,
    /// Logical shards (host-groups).
    pub shards: u32,
    /// Total accesses issued.
    pub accesses: u64,
    /// Frame-cache hits.
    pub hits: u64,
    /// Remote faults completed.
    pub remote_reads: u64,
    /// Dirty pages written back (replicated).
    pub writebacks: u64,
    /// Reads failed over to another replica.
    pub failovers: u64,
    /// Failover probes sent.
    pub probes: u64,
    /// Envelopes exchanged between distinct shards.
    pub cross_messages: u64,
    /// Envelopes that stayed within one shard.
    pub local_messages: u64,
    /// Epochs the engine executed.
    pub epochs: u64,
    /// Virtual end of the run.
    pub horizon: SimInstant,
    /// Median fault latency (ns, histogram bucket bound).
    pub fault_p50_ns: u64,
    /// Tail fault latency (ns, histogram bucket bound).
    pub fault_p99_ns: u64,
    /// FNV digest of the full merged counter snapshot.
    pub digest: String,
    /// Merged, canonically ordered trace export (JSONL).
    pub trace_jsonl: String,
    /// Name-sorted `key=value` pairs of all nonzero counters.
    pub metrics_line: String,
    /// Per-window counter/histogram timeline, merged from the per-shard
    /// samplers in `(window, shard)` order. Empty when
    /// [`RackConfig::timeline_window`] is zero.
    pub timeline: Timeline,
}

impl RackReport {
    /// CSV header matching [`RackReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "hosts,shards,accesses,hits,remote_reads,writebacks,failovers,probes,\
         cross_msgs,local_msgs,epochs,fault_p50_ns,fault_p99_ns,digest"
    }

    /// One CSV row of this report (virtual metrics only — never
    /// wall-clock, so the file is byte-identical at every worker count).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.hosts,
            self.shards,
            self.accesses,
            self.hits,
            self.remote_reads,
            self.writebacks,
            self.failovers,
            self.probes,
            self.cross_messages,
            self.local_messages,
            self.epochs,
            self.fault_p50_ns,
            self.fault_p99_ns,
            self.digest,
        )
    }
}

impl fmt::Display for RackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hosts={} shards={} accesses={} hits={} remote_reads={} writebacks={} \
             failovers={} probes={} cross={} local={} epochs={} p50={}ns p99={}ns digest={}",
            self.hosts,
            self.shards,
            self.accesses,
            self.hits,
            self.remote_reads,
            self.writebacks,
            self.failovers,
            self.probes,
            self.cross_messages,
            self.local_messages,
            self.epochs,
            self.fault_p50_ns,
            self.fault_p99_ns,
            self.digest,
        )
    }
}

fn fnv1a_str(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Runs one rack scenario with `workers` OS threads.
///
/// The scenario — including its logical shard partition — is fixed by
/// `config`; `workers` only fans the shards across threads. Output is
/// byte-identical for every worker count.
///
/// # Panics
///
/// Panics if an invariant breaks mid-run (wrong read, stale read,
/// mailbox misorder) or the run ends unquiesced (unfinished hosts,
/// unacked writebacks, unresolved suspects).
pub fn run_rack(config: &RackConfig, workers: usize) -> RackReport {
    let map = config.shard_map();
    let schedule = if config.faults {
        ShardFaultSchedule::generate(
            config.seed ^ 0xfau64,
            config.hosts,
            config.outage_horizon(),
            config.outage_fraction,
        )
    } else {
        ShardFaultSchedule::generate(0, 0, SimDuration::from_nanos(1), 0.0)
    };
    let shards: Vec<RackShard> = (0..map.shards())
        .map(|s| {
            let shard = ShardId(s);
            RackShard::new(shard, config, &map, schedule.for_hosts(map.hosts_of(shard)))
        })
        .collect();

    // Conservative lookahead: every rack message rides the RDMA fabric,
    // so the minimum cross-shard latency is one small-message transfer.
    let min_latency = CostModel::paper_default().rdma.transfer(64);
    let epoch = min_latency;
    let (mut shards, engine) = ShardedEngine::run(workers, shards, epoch, min_latency);

    // Deterministic post-run: merge shard-local state in shard order.
    let mut merged = LocalMetrics::new();
    let mut logs = Vec::with_capacity(shards.len());
    let mut shard_windows = Vec::new();
    let mut quiescence_failures: Vec<String> = Vec::new();
    for shard in shards.iter_mut() {
        merged.merge_from(&shard.metrics);
        logs.push(shard.log.clone());
        let sampler = std::mem::replace(
            &mut shard.sampler,
            ShardSampler::new(0, SimDuration::ZERO),
        );
        shard_windows.extend(sampler.finish(engine.horizon.nanos(), &shard.metrics));
        // Quiescence invariants, per host. Failures are collected instead
        // of asserted inline so a broken run can dump the flight recorder
        // (recent trace events + metric windows) before panicking.
        for (host, state) in shard.hosts.iter() {
            if !(state.done && state.issued == config.accesses_per_host) {
                quiescence_failures.push(format!(
                    "host {host} finished {}/{} accesses",
                    state.issued, config.accesses_per_host
                ));
            }
            if !state.pending_writes.is_empty() {
                quiescence_failures.push(format!("host {host} ended with unacked writebacks"));
            }
            if !state.suspects.is_empty() {
                quiescence_failures.push(format!(
                    "host {host} ended with unresolved suspects {:?}",
                    state.suspects
                ));
            }
            if state.inflight.is_some() {
                quiescence_failures.push(format!("host {host} ended mid-fault"));
            }
        }
    }
    let timeline = Timeline::merge_shards(config.timeline_window.as_nanos(), shard_windows);
    if !quiescence_failures.is_empty() {
        // Recent merged trace events in canonical (at_ns, shard, seq)
        // order, plus the last metric windows — same dump format the
        // chaos harness emits on invariant violations.
        let mut events: Vec<_> = shards
            .iter()
            .flat_map(|s| s.log.events().iter().map(|e| (e.at_ns, s.shard.0, e)))
            .collect();
        events.sort_by_key(|(at, shard, e)| (*at, *shard, e.seq));
        let mut recorder = FlightRecorder::new();
        for (at, shard, event) in events {
            recorder.note(
                at,
                event.kind,
                format!("shard={shard} host={} detail={}", event.host, event.detail),
            );
        }
        for window in &timeline.windows {
            recorder.push_window(window);
        }
        eprintln!("{}", recorder.dump("rack quiescence assert"));
        panic!(
            "rack run ended unquiesced ({} failures): {}",
            quiescence_failures.len(),
            quiescence_failures.join("; ")
        );
    }

    let metrics_line = merged
        .counter_snapshot()
        .into_iter()
        .filter(|(_, v)| *v > 0)
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    let digest = format!("{:016x}", fnv1a_str(&metrics_line));

    RackReport {
        hosts: config.hosts,
        shards: map.shards(),
        accesses: merged.counter("rack.access.total"),
        hits: merged.counter("rack.access.hit"),
        remote_reads: merged.counter("rack.read.remote"),
        writebacks: merged.counter("rack.writeback.pages"),
        failovers: merged.counter("rack.read.failover"),
        probes: merged.counter("rack.probe.sent"),
        cross_messages: engine.cross_messages,
        local_messages: engine.local_messages,
        epochs: engine.epochs,
        horizon: engine_horizon(&engine),
        fault_p50_ns: merged.quantile("rack.fault.ns", 0.5),
        fault_p99_ns: merged.quantile("rack.fault.ns", 0.99),
        digest,
        trace_jsonl: ShardEventLog::merge_to_jsonl(&logs),
        metrics_line,
        timeline,
    }
}

fn engine_horizon(engine: &EngineReport) -> SimInstant {
    engine.horizon
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RackConfig {
        RackConfig {
            hosts: 16,
            pages_per_host: 64,
            frames_per_host: 16,
            accesses_per_host: 20,
            hosts_per_shard: 4,
            trace_sample: 16,
            ..RackConfig::rack_default(16)
        }
    }

    #[test]
    fn rack_is_worker_count_independent() {
        let cfg = tiny();
        let base = run_rack(&cfg, 1);
        assert!(base.cross_messages > 0, "vacuous: no cross-shard traffic");
        assert!(base.remote_reads > 0, "vacuous: no remote faults");
        assert!(!base.timeline.windows.is_empty(), "vacuous: no timeline");
        for workers in [2, 4] {
            let other = run_rack(&cfg, workers);
            assert_eq!(base.csv_row(), other.csv_row(), "workers={workers}");
            assert_eq!(base.metrics_line, other.metrics_line, "workers={workers}");
            assert_eq!(base.trace_jsonl, other.trace_jsonl, "workers={workers}");
            assert_eq!(
                base.timeline.to_csv(),
                other.timeline.to_csv(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn rack_faults_engage_failover() {
        let mut cfg = tiny();
        cfg.outage_fraction = 0.5;
        cfg.accesses_per_host = 60;
        let report = run_rack(&cfg, 2);
        assert!(report.failovers > 0, "outages must force failovers");
        assert!(report.probes > 0, "failovers must arm probes");
        // run_rack asserted quiescence: suspects resolved, writes acked.
    }

    #[test]
    fn rack_fault_free_mode_is_quiet() {
        let mut cfg = tiny();
        cfg.faults = false;
        let report = run_rack(&cfg, 1);
        assert_eq!(report.failovers, 0);
        assert_eq!(report.probes, 0);
        assert!(report.remote_reads > 0);
    }

    #[test]
    fn page_checksum_distinguishes_versions() {
        assert_ne!(page_checksum(7, 0), page_checksum(7, 1));
        assert_ne!(page_checksum(7, 0), page_checksum(8, 0));
        assert_eq!(page_checksum(7, 3), page_checksum(7, 3));
    }
}
