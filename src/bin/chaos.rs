//! Seeded chaos runner.
//!
//! Runs the deterministic chaos harness over one seed or a seed range and
//! exits nonzero on the first invariant violation, printing the seed, the
//! violated invariant, and the minimal failing event prefix.
//!
//! Seeds run fanned across cores (`--jobs N`, default: available
//! parallelism) — each seed's simulation is fully deterministic and
//! self-contained, and verdicts print in seed order, so the output is
//! byte-identical to a sequential run. A seeds/second rate goes to
//! stderr.
//!
//! ```text
//! cargo run --bin chaos -- --seeds 0..32
//! cargo run --bin chaos -- --seed 0x2a --steps 200 --jobs 4
//! ```

use memory_disaggregation::chaos::{run_schedule, run_seed, ChaosSettings, InvariantKind};
use memory_disaggregation::sim::chaos::{ChaosConfig, ChaosSchedule, ChaosStep};
use memory_disaggregation::sim::{FailureEvent, SimDuration};
use memory_disaggregation::types::{NodeId, ReplicationFactor, ServerId};
use std::process::ExitCode;
use std::time::Instant;

fn parse_u64(text: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| format!("not a number: {text}"))
}

fn usage() -> String {
    "usage: chaos [--seed N | --seeds A..B] [--steps N] [--keys N] [--nodes N] [--jobs N] \
     [--qos] [--faults] [--cxl] [--shards N] [--flight-fixture]"
        .to_string()
}

/// Forces a known invariant failure (factor-1 data lost to a node crash,
/// judged by the convergence checker) and prints the resulting flight
/// recorder dump. Everything runs on the virtual clock from a pinned
/// seed, so the output is byte-identical across reruns — ci.sh diffs it
/// against a committed golden to smoke-test the dump path end to end.
fn run_flight_fixture() -> bool {
    let config = ChaosConfig {
        nodes: 5,
        servers_per_node: 1,
        steps: 40,
        keys: 8,
        ..ChaosConfig::default()
    };
    let settings = ChaosSettings {
        replication: ReplicationFactor::SINGLE,
        ..ChaosSettings::default()
    };
    let s0 = ServerId::new(NodeId::new(0), 0);
    let mut steps = Vec::new();
    for key in 0..8 {
        steps.push(ChaosStep::Put {
            server: s0,
            key,
            len: 16 * 1024,
        });
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeDown(node)));
    }
    for node in [NodeId::new(1), NodeId::new(2)] {
        steps.push(ChaosStep::Inject(FailureEvent::NodeUp(node)));
    }
    steps.push(ChaosStep::Maintain {
        horizon: SimDuration::from_millis(250),
    });
    let schedule = ChaosSchedule {
        seed: 0xBAD_5EED,
        steps,
    };
    match run_schedule(&schedule, &config, &settings) {
        Ok(stats) => {
            println!("flight fixture: unexpectedly clean ({stats})");
            false
        }
        Err(violation) => {
            println!("flight fixture: forced violation");
            println!("{violation}");
            print!("{}", violation.flight_dump.as_deref().unwrap_or("(no flight dump)\n"));
            violation.invariant == InvariantKind::Convergence
        }
    }
}

fn run() -> Result<bool, String> {
    let mut config = ChaosConfig::default();
    let mut seeds: Vec<u64> = Vec::new();
    let mut jobs = scoped_pool::available_parallelism();
    let mut qos = false;
    let mut faults = false;
    let mut cxl = false;
    let mut shards = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => seeds.push(parse_u64(&value("--seed")?)?),
            "--qos" => qos = true,
            "--faults" => faults = true,
            "--cxl" => cxl = true,
            "--flight-fixture" => return Ok(run_flight_fixture()),
            "--jobs" => {
                jobs = parse_u64(&value("--jobs")?)?.max(1) as usize;
            }
            // Host-group count for the shard-router conformance layer.
            // Purely observational: stdout is byte-identical at every
            // value (the determinism gate in ci.sh diffs 1 vs 4).
            "--shards" => {
                shards = parse_u64(&value("--shards")?)?.max(1) as usize;
            }
            "--seeds" => {
                let spec = value("--seeds")?;
                let (a, b) = spec
                    .split_once("..")
                    .ok_or(format!("--seeds wants A..B, got {spec}"))?;
                let (a, b) = (parse_u64(a)?, parse_u64(b)?);
                if a >= b {
                    return Err(format!("empty seed range {spec}"));
                }
                seeds.extend(a..b);
            }
            "--steps" => config.steps = parse_u64(&value("--steps")?)? as usize,
            "--keys" => config.keys = parse_u64(&value("--keys")?)?,
            "--nodes" => config.nodes = parse_u64(&value("--nodes")?)? as usize,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
    }
    if seeds.is_empty() {
        seeds.extend(0..8);
    }
    // The schedule generator and the harness's fault layer switch on
    // together: schedules gain partition/heal/QP-break steps, and the
    // fabric gains seeded verb drops/delays/duplication with retry.
    config.fabric_faults = faults;
    // Same pairing for the CXL tier: schedules gain pool-node outage
    // windows and remote atomics, the cluster gains the pool itself.
    config.cxl = cxl;

    let settings = ChaosSettings {
        qos,
        faults,
        shards,
        cxl,
        ..ChaosSettings::default()
    };
    let total = seeds.len();
    let wall = Instant::now();
    // Each seed is an independent deterministic sim; fan across cores and
    // print verdicts in seed order so stdout is byte-identical to a
    // sequential run.
    let verdicts = scoped_pool::par_map(jobs, seeds.clone(), |_, seed| {
        run_seed(seed, &config, &settings)
    });
    let elapsed = wall.elapsed();
    let mut all_clean = true;
    for (seed, verdict) in seeds.into_iter().zip(verdicts) {
        match verdict {
            Ok(stats) => {
                println!("seed {seed:#x}: ok ({stats})");
                if !stats.metrics_digest.is_empty() {
                    println!("  metrics: {}", stats.metrics_digest);
                }
                if !stats.qos_digest.is_empty() {
                    println!("  qos: {}", stats.qos_digest);
                }
                if !stats.alert_digest.is_empty() {
                    println!(
                        "  alerts: {} ({} windows)",
                        stats.alert_digest, stats.telemetry_windows
                    );
                    for line in &stats.alert_log {
                        println!("    {line}");
                    }
                }
            }
            Err(report) => {
                all_clean = false;
                println!("seed {seed:#x}: FAILED");
                println!("{report}");
                if let Some(dump) = &report.violation.flight_dump {
                    print!("{dump}");
                }
            }
        }
    }
    // Rate to stderr: stdout stays reserved for the verdicts.
    eprintln!(
        "[chaos] {total} seeds in {:.2}s ({:.1} seeds/s, jobs={jobs})",
        elapsed.as_secs_f64(),
        total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    Ok(all_clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
