//! The QoS engine: tenant registry, admission control, priority-aware
//! victim selection, fabric rate limiting and the closed-loop controller.
//!
//! The engine is *pure policy*: it decides, the caller (usually
//! `dmem-core`) acts. That keeps every decision unit-testable without a
//! cluster, and keeps the dependency arrow pointing the right way —
//! `dmem-core` depends on `dmem-qos`, never the reverse.
//!
//! Every decision is appended to a deterministic log (and folded into a
//! running FNV-1a digest), which is how the chaos harness proves that the
//! same seed yields byte-identical QoS behaviour across runs and across
//! parallel execution.

use crate::bucket::TokenBucket;
use crate::tenant::TenantSpec;
use dmem_sim::{AlertRule, Histogram, MetricsRegistry, SimDuration, SimInstant};
use dmem_types::{ByteSize, EntryId, NodeId, ServerId, TenantId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Tuning knobs for the engine and its controller.
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Aggregate fabric rate across *all* tenants, bytes per virtual
    /// second. `None` leaves the aggregate unmetered.
    pub aggregate_rate: Option<u64>,
    /// Burst allowance for every token bucket.
    pub burst: ByteSize,
    /// Donation fraction step the controller requests per violated tick.
    pub donation_step: f64,
    /// Throttle levels cap. Each level halves a tenant's effective fabric
    /// rate (the bucket charge doubles), so level 6 = 1/64 bandwidth.
    pub max_throttle: u8,
    /// At or above this throttle level a tenant's new puts are *shed*:
    /// admitted straight to disk instead of competing for fast tiers.
    pub shed_level: u8,
    /// Minimum windowed get samples before the controller judges an SLO.
    pub min_slo_samples: u64,
    /// Decision-log line cap (the digest always covers every decision).
    pub log_capacity: usize,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            aggregate_rate: None,
            burst: ByteSize::from_kib(256),
            donation_step: 0.05,
            max_throttle: 6,
            shed_level: 4,
            min_slo_samples: 8,
            log_capacity: 1 << 16,
        }
    }
}

/// Verdict of [`QosEngine::admit_fast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// The bytes may land in a fast tier (quota headroom exists).
    Admit,
    /// Over quota — degrade this put to disk (never a hard failure).
    RejectQuota,
    /// The tenant is being shed by the controller — route to disk.
    Shed,
}

/// A fast-tier victim candidate chosen by [`QosEngine::pick_victim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The entry to demote.
    pub entry: EntryId,
    /// Its owning tenant.
    pub tenant: TenantId,
    /// That tenant's priority at selection time.
    pub priority: u8,
    /// Stored bytes the demotion will free.
    pub bytes: u64,
}

/// One applied-or-requested eviction, kept for the chaos priority
/// invariant: a victim may never out-rank its beneficiary while the
/// beneficiary is under quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionRecord {
    /// Tenant whose put triggered the eviction.
    pub beneficiary: TenantId,
    /// Beneficiary priority at decision time.
    pub beneficiary_priority: u8,
    /// Whether the beneficiary was under its quota (it always should be —
    /// over-quota puts are rejected before reaching eviction).
    pub beneficiary_under_quota: bool,
    /// Tenant whose page was demoted.
    pub victim: TenantId,
    /// Victim priority at decision time.
    pub victim_priority: u8,
    /// The demoted entry.
    pub entry: EntryId,
}

/// Controller output the caller applies to the cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// Grow (or shrink, negative) a server's donation fraction.
    AdjustDonation {
        /// Server whose donation should move.
        server: ServerId,
        /// Signed fraction delta (clamped by the donation policy).
        delta: f64,
    },
}

/// Point-in-time view of one tenant for reports and invariant checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id.
    pub id: TenantId,
    /// Tenant name.
    pub name: String,
    /// Priority.
    pub priority: u8,
    /// Fast-tier quota in bytes.
    pub quota: u64,
    /// Fast-tier resident bytes right now.
    pub resident: u64,
    /// Current throttle level.
    pub throttle: u8,
}

/// Where a resident entry lives, for victim filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FastTier {
    Shared(NodeId),
    Nvm(NodeId),
    Cxl,
    Remote,
}

#[derive(Debug, Clone, Copy)]
struct Resident {
    bytes: u64,
    tier: FastTier,
}

#[derive(Debug)]
struct TenantState {
    spec: TenantSpec,
    resident: u64,
    entries: BTreeMap<EntryId, Resident>,
    bucket: Option<TokenBucket>,
    throttle: u8,
    slo_prev: [u64; 65],
}

impl TenantState {
    fn new(spec: TenantSpec, burst: u64) -> Self {
        let bucket = spec
            .fabric_rate
            .map(|rate| TokenBucket::new(rate, burst));
        TenantState {
            spec,
            resident: 0,
            entries: BTreeMap::new(),
            bucket,
            throttle: 0,
            slo_prev: [0; 65],
        }
    }

    fn under_quota(&self, extra: u64) -> bool {
        self.resident.saturating_add(extra) <= self.spec.quota.as_u64()
    }
}

struct Inner {
    tenants: Vec<TenantState>,
    owners: HashMap<ServerId, TenantId>,
    aggregate: Option<TokenBucket>,
    log: Vec<String>,
    log_capacity: usize,
    log_count: u64,
    log_hash: u64,
    evictions: Vec<EvictionRecord>,
}

/// The multi-tenant QoS control plane (paper §IV-F, policies 1 & 2).
///
/// Thread-safe and shareable; all methods take `&self`. Install one per
/// cluster, register tenants, assign servers, then let `dmem-core`
/// consult it on every put/get and each maintenance tick.
///
/// # Examples
///
/// ```
/// use dmem_qos::{AdmitDecision, QosConfig, QosEngine, TenantSpec};
/// use dmem_types::{ByteSize, NodeId, ServerId, TenantId};
///
/// let qos = QosEngine::new(QosConfig::default());
/// let tenant = qos.register_tenant(TenantSpec::new("kv", 200, ByteSize::from_kib(8)));
/// let server = ServerId::new(NodeId::new(0), 0);
/// qos.assign_server(server, tenant);
/// assert_eq!(qos.tenant_of(server), tenant);
///
/// // 8 KiB quota: two 4 KiB pages fit, the third degrades to disk.
/// assert_eq!(qos.admit_fast(tenant, 4096), AdmitDecision::Admit);
/// # let e = |k| dmem_types::EntryId::new(server, k);
/// # qos.note_fast_resident(tenant, e(0), 4096, dmem_qos::ResidentTier::Shared(NodeId::new(0)));
/// # qos.note_fast_resident(tenant, e(1), 4096, dmem_qos::ResidentTier::Shared(NodeId::new(0)));
/// assert_eq!(qos.admit_fast(tenant, 4096), AdmitDecision::RejectQuota);
/// ```
pub struct QosEngine {
    config: QosConfig,
    inner: Mutex<Inner>,
    metrics: Mutex<Option<MetricsRegistry>>,
}

/// Public alias of the internal tier tag used when charging residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidentTier {
    /// Node shared-memory pool on `NodeId`.
    Shared(NodeId),
    /// NVM tier on `NodeId`.
    Nvm(NodeId),
    /// The cluster-shared CXL memory pool (no per-node owner: any host
    /// reaches any pool node through the switch).
    Cxl,
    /// Cluster remote memory (replicated).
    Remote,
}

impl From<ResidentTier> for FastTier {
    fn from(t: ResidentTier) -> FastTier {
        match t {
            ResidentTier::Shared(n) => FastTier::Shared(n),
            ResidentTier::Nvm(n) => FastTier::Nvm(n),
            ResidentTier::Cxl => FastTier::Cxl,
            ResidentTier::Remote => FastTier::Remote,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl QosEngine {
    /// Creates an engine whose only tenant is the implicit system tenant
    /// (id 0, unlimited quota, top priority).
    pub fn new(config: QosConfig) -> Self {
        let burst = config.burst.as_u64();
        let log_capacity = config.log_capacity;
        let aggregate = config
            .aggregate_rate
            .map(|rate| TokenBucket::new(rate, burst));
        QosEngine {
            config,
            inner: Mutex::new(Inner {
                tenants: vec![TenantState::new(TenantSpec::system(), burst)],
                owners: HashMap::new(),
                aggregate,
                log: Vec::new(),
                log_capacity,
                log_count: 0,
                log_hash: FNV_OFFSET,
                evictions: Vec::new(),
            }),
            metrics: Mutex::new(None),
        }
    }

    /// Binds the cluster's metrics registry so the engine can publish
    /// `qos.*` counters. Called by `dmem-core` on install.
    pub fn attach_metrics(&self, registry: MetricsRegistry) {
        *self.metrics.lock() = Some(registry);
    }

    /// Engine configuration.
    pub fn config(&self) -> &QosConfig {
        &self.config
    }

    /// Registers a tenant and returns its id. Names must be unique.
    ///
    /// # Panics
    ///
    /// Panics if `spec.name` duplicates an existing tenant's name, since
    /// metric keys are derived from names.
    pub fn register_tenant(&self, spec: TenantSpec) -> TenantId {
        let mut inner = self.inner.lock();
        assert!(
            inner.tenants.iter().all(|t| t.spec.name != spec.name),
            "duplicate tenant name {:?}",
            spec.name
        );
        let id = TenantId::new(inner.tenants.len() as u32);
        let burst = self.config.burst.as_u64();
        inner.tenants.push(TenantState::new(spec, burst));
        id
    }

    /// Assigns a server to a tenant. Unassigned servers belong to
    /// [`TenantId::SYSTEM`].
    pub fn assign_server(&self, server: ServerId, tenant: TenantId) {
        let mut inner = self.inner.lock();
        assert!(
            (tenant.index() as usize) < inner.tenants.len(),
            "unknown tenant {tenant}"
        );
        inner.owners.insert(server, tenant);
    }

    /// The tenant owning `server` (the system tenant when unassigned).
    pub fn tenant_of(&self, server: ServerId) -> TenantId {
        self.inner
            .lock()
            .owners
            .get(&server)
            .copied()
            .unwrap_or(TenantId::SYSTEM)
    }

    /// Tenant name, for metric keys.
    pub fn tenant_name(&self, tenant: TenantId) -> String {
        self.inner.lock().tenants[tenant.index() as usize]
            .spec
            .name
            .clone()
    }

    /// Tenant priority (higher = more important), for eviction ordering.
    pub fn tenant_priority(&self, tenant: TenantId) -> u8 {
        self.inner.lock().tenants[tenant.index() as usize]
            .spec
            .priority
    }

    /// May `bytes` of `tenant`'s data land in a fast tier right now?
    ///
    /// Never fails hard: a denial means "degrade to disk". The decision is
    /// logged and counted.
    pub fn admit_fast(&self, tenant: TenantId, bytes: u64) -> AdmitDecision {
        let mut inner = self.inner.lock();
        let t = &inner.tenants[tenant.index() as usize];
        let name = t.spec.name.clone();
        let decision = if t.throttle >= self.config.shed_level && !tenant.is_system() {
            AdmitDecision::Shed
        } else if t.under_quota(bytes) {
            AdmitDecision::Admit
        } else {
            AdmitDecision::RejectQuota
        };
        match decision {
            AdmitDecision::Admit => {
                let line = format!("admit {name} bytes={bytes}");
                inner.push_log(line);
                self.bump(&name, "admitted.bytes", bytes);
            }
            AdmitDecision::RejectQuota => {
                let (resident, quota) = {
                    let t = &inner.tenants[tenant.index() as usize];
                    (t.resident, t.spec.quota.as_u64())
                };
                let line = format!(
                    "reject {name} bytes={bytes} resident={resident} quota={quota}"
                );
                inner.push_log(line);
                self.bump(&name, "rejected.bytes", bytes);
            }
            AdmitDecision::Shed => {
                let level = inner.tenants[tenant.index() as usize].throttle;
                let line = format!("shed {name} bytes={bytes} level={level}");
                inner.push_log(line);
                self.bump(&name, "shed.bytes", bytes);
            }
        }
        decision
    }

    /// Charges `bytes` of fast-tier residency to `tenant` for `entry`.
    /// Call after the bytes actually landed.
    pub fn note_fast_resident(
        &self,
        tenant: TenantId,
        entry: EntryId,
        bytes: u64,
        tier: ResidentTier,
    ) {
        let mut inner = self.inner.lock();
        let t = &mut inner.tenants[tenant.index() as usize];
        let prev = t.entries.insert(
            entry,
            Resident {
                bytes,
                tier: tier.into(),
            },
        );
        if let Some(prev) = prev {
            t.resident = t.resident.saturating_sub(prev.bytes);
        }
        t.resident = t.resident.saturating_add(bytes);
    }

    /// Credits residency when `entry` leaves its fast tier (delete,
    /// demotion, node restart). Unknown entries (disk-only) are ignored.
    pub fn note_dropped(&self, tenant: TenantId, entry: EntryId) {
        let mut inner = self.inner.lock();
        let t = &mut inner.tenants[tenant.index() as usize];
        if let Some(r) = t.entries.remove(&entry) {
            t.resident = t.resident.saturating_sub(r.bytes);
        }
    }

    /// Picks a shared-pool victim on `node` for an under-quota put by
    /// `beneficiary`. Scans tenants from lowest priority upward and only
    /// returns entries whose tenant the beneficiary strictly out-ranks —
    /// the priority-eviction invariant, enforced structurally, and
    /// strictly: equal-priority tenants (including the beneficiary
    /// itself) are never demoted, so a single-tenant cluster behaves
    /// exactly as it did before the control plane existed. `incoming` is
    /// excluded so a replace-put cannot evict itself.
    ///
    /// The scan is deterministic: tenants ordered by (priority, id),
    /// entries by `EntryId` within a tenant.
    pub fn pick_victim(
        &self,
        beneficiary: TenantId,
        node: NodeId,
        incoming: EntryId,
    ) -> Option<Victim> {
        let inner = self.inner.lock();
        let bpri = inner.tenants[beneficiary.index() as usize].spec.priority;
        let mut order: Vec<usize> = (0..inner.tenants.len()).collect();
        order.sort_by_key(|&i| (inner.tenants[i].spec.priority, i));
        for i in order {
            let t = &inner.tenants[i];
            if t.spec.priority >= bpri {
                break;
            }
            for (&entry, r) in &t.entries {
                if entry == incoming {
                    continue;
                }
                if r.tier == FastTier::Shared(node) {
                    return Some(Victim {
                        entry,
                        tenant: TenantId::new(i as u32),
                        priority: t.spec.priority,
                        bytes: r.bytes,
                    });
                }
            }
        }
        None
    }

    /// Records a completed demotion for the chaos priority invariant and
    /// the decision log. Residency is credited separately by
    /// [`QosEngine::note_dropped`] when the entry leaves its tier.
    pub fn note_eviction(&self, beneficiary: TenantId, victim: &Victim) {
        let mut inner = self.inner.lock();
        let b = &inner.tenants[beneficiary.index() as usize];
        let record = EvictionRecord {
            beneficiary,
            beneficiary_priority: b.spec.priority,
            beneficiary_under_quota: b.under_quota(0),
            victim: victim.tenant,
            victim_priority: victim.priority,
            entry: victim.entry,
        };
        let line = format!(
            "evict benef={}(p{}) victim={}(p{}) entry={} bytes={}",
            record.beneficiary,
            record.beneficiary_priority,
            record.victim,
            record.victim_priority,
            victim.entry,
            victim.bytes
        );
        inner.push_log(line);
        inner.evictions.push(record);
    }

    /// Meters `bytes` of fabric traffic for `tenant` at virtual time
    /// `now`; returns how long the caller must advance the clock before
    /// issuing the verbs. Zero for unmetered tenants at throttle 0.
    ///
    /// Throttling doubles the charge per level, halving effective
    /// bandwidth; a tenant with no configured rate that gets throttled is
    /// charged against the aggregate bucket only.
    pub fn fabric_acquire(&self, tenant: TenantId, bytes: u64, now: SimInstant) -> SimDuration {
        let mut inner = self.inner.lock();
        let idx = tenant.index() as usize;
        let level = inner.tenants[idx].throttle.min(self.config.max_throttle);
        let charged = bytes << u64::from(level).min(32);
        let mut wait = SimDuration::ZERO;
        if let Some(bucket) = inner.tenants[idx].bucket.as_mut() {
            wait = wait.max(bucket.acquire(charged, now));
        }
        if let Some(aggregate) = inner.aggregate.as_mut() {
            // The aggregate meters real bytes; throttle scaling is a
            // per-tenant penalty, not cluster accounting.
            wait = wait.max(aggregate.acquire(bytes, now));
        }
        if !wait.is_zero() {
            let name = inner.tenants[idx].spec.name.clone();
            let line = format!(
                "throttle {name} bytes={bytes} level={level} wait_ns={}",
                wait.as_nanos()
            );
            inner.push_log(line);
            drop(inner);
            self.bump(&name, "throttled.bytes", bytes);
            self.bump(&name, "tokens_waited.ns", wait.as_nanos());
        }
        wait
    }

    /// One closed-loop controller tick (paper §IV-F feedback loop).
    ///
    /// Reads each SLO-bearing tenant's *windowed* p99 get latency from
    /// `metrics` (`qos.<name>.get.ns` histogram bucket diffs since the
    /// previous tick). When a tenant's SLO is violated:
    ///
    /// * every strictly-lower-priority tenant's throttle level rises one
    ///   step (graceful degradation — shedding starts at
    ///   [`QosConfig::shed_level`]);
    /// * an [`ControlAction::AdjustDonation`] of `+donation_step` is
    ///   emitted for each of the suffering tenant's servers, growing the
    ///   node shared pools it lives on.
    ///
    /// When *no* SLO is violated, all throttle levels decay one step.
    pub fn controller_tick(&self, metrics: &MetricsRegistry) -> Vec<ControlAction> {
        let mut inner = self.inner.lock();
        let n = inner.tenants.len();
        let mut violated: Vec<usize> = Vec::new();
        for i in 0..n {
            let (name, target) = {
                let t = &inner.tenants[i];
                match t.spec.slo_p99 {
                    Some(target) => (t.spec.name.clone(), target),
                    None => continue,
                }
            };
            let counts = metrics.histogram(&format!("qos.{name}.get.ns")).bucket_counts();
            let mut window = [0u64; 65];
            for b in 0..65 {
                window[b] = counts[b].saturating_sub(inner.tenants[i].slo_prev[b]);
            }
            inner.tenants[i].slo_prev = counts;
            let samples: u64 = window.iter().sum();
            if samples < self.config.min_slo_samples {
                continue;
            }
            let p99 = Histogram::quantile_of_counts(&window, 0.99);
            if SimDuration::from_nanos(p99) > target {
                let line = format!(
                    "slo-violation {name} p99_ns={p99} target_ns={} samples={samples}",
                    target.as_nanos()
                );
                inner.push_log(line);
                violated.push(i);
            }
        }

        let mut actions = Vec::new();
        if violated.is_empty() {
            for i in 0..n {
                if inner.tenants[i].throttle > 0 {
                    inner.tenants[i].throttle -= 1;
                    let line = format!(
                        "level {} {}",
                        inner.tenants[i].spec.name, inner.tenants[i].throttle
                    );
                    inner.push_log(line);
                }
            }
            return actions;
        }

        for &v in &violated {
            let vpri = inner.tenants[v].spec.priority;
            for i in 0..n {
                if inner.tenants[i].spec.priority < vpri
                    && inner.tenants[i].throttle < self.config.max_throttle
                {
                    inner.tenants[i].throttle += 1;
                    let line = format!(
                        "level {} {}",
                        inner.tenants[i].spec.name, inner.tenants[i].throttle
                    );
                    inner.push_log(line);
                }
            }
            // Grow donations on the nodes hosting the suffering tenant.
            let tenant = TenantId::new(v as u32);
            let mut servers: Vec<ServerId> = inner
                .owners
                .iter()
                .filter(|&(_, &t)| t == tenant)
                .map(|(&s, _)| s)
                .collect();
            servers.sort();
            for server in servers {
                let line = format!(
                    "donate server={server} delta={:+.2}",
                    self.config.donation_step
                );
                inner.push_log(line);
                actions.push(ControlAction::AdjustDonation {
                    server,
                    delta: self.config.donation_step,
                });
            }
        }
        actions
    }

    /// Current throttle level of `tenant`.
    pub fn throttle_level(&self, tenant: TenantId) -> u8 {
        self.inner.lock().tenants[tenant.index() as usize].throttle
    }

    /// Builds one multi-window burn-rate [`AlertRule`] per SLO-bearing
    /// tenant, watching the same `qos.<name>.get.ns` histograms the
    /// closed-loop controller reads — the telemetry hub's bridge from
    /// tenant SLOs to the alert log. Rules come back in tenant-id order.
    ///
    /// `fast_windows`/`slow_windows` span the burn measurement;
    /// `fast_burn_bp`/`slow_burn_bp` are firing thresholds in basis
    /// points of over-SLO observations.
    pub fn burn_rate_rules(
        &self,
        fast_windows: usize,
        slow_windows: usize,
        fast_burn_bp: u64,
        slow_burn_bp: u64,
    ) -> Vec<AlertRule> {
        let inner = self.inner.lock();
        inner
            .tenants
            .iter()
            .filter_map(|t| {
                let slo = t.spec.slo_p99?;
                Some(AlertRule::BurnRate {
                    name: format!("slo-burn:{}", t.spec.name),
                    histogram: format!("qos.{}.get.ns", t.spec.name),
                    slo_ns: slo.as_nanos(),
                    fast_windows,
                    slow_windows,
                    fast_burn_bp,
                    slow_burn_bp,
                })
            })
            .collect()
    }

    /// Snapshot of every tenant, ordered by id.
    pub fn tenants_snapshot(&self) -> Vec<TenantSnapshot> {
        let inner = self.inner.lock();
        inner
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantSnapshot {
                id: TenantId::new(i as u32),
                name: t.spec.name.clone(),
                priority: t.spec.priority,
                quota: t.spec.quota.as_u64(),
                resident: t.resident,
                throttle: t.throttle,
            })
            .collect()
    }

    /// All recorded evictions, in decision order.
    pub fn evictions(&self) -> Vec<EvictionRecord> {
        self.inner.lock().evictions.clone()
    }

    /// The decision log (up to [`QosConfig::log_capacity`] lines).
    pub fn decision_log(&self) -> Vec<String> {
        self.inner.lock().log.clone()
    }

    /// Digest over *every* decision ever made: `n=<count> fnv=<hash>`.
    /// Byte-identical across runs of the same seed — the chaos harness
    /// compares these across processes and across `--jobs` threads.
    pub fn decision_digest(&self) -> String {
        let inner = self.inner.lock();
        format!("n={} fnv={:#018x}", inner.log_count, inner.log_hash)
    }

    /// Renders per-tenant rows for `dmem_top`-style reports: name,
    /// priority, resident/quota, throttle level. Deterministic.
    pub fn report(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "{:<12} {:>4} {:>14} {:>14} {:>6}",
            "tenant", "prio", "resident", "quota", "level"
        )
        .unwrap();
        for t in self.tenants_snapshot() {
            let quota = if t.quota == u64::MAX {
                "unlimited".to_owned()
            } else {
                t.quota.to_string()
            };
            writeln!(
                out,
                "{:<12} {:>4} {:>14} {:>14} {:>6}",
                t.name, t.priority, t.resident, quota, t.throttle
            )
            .unwrap();
        }
        out
    }

    /// Bumps `qos.<tenant>.<suffix>` if a registry is attached.
    fn bump(&self, tenant: &str, suffix: &str, by: u64) {
        if by == 0 {
            return;
        }
        if let Some(m) = self.metrics.lock().as_ref() {
            m.counter(&format!("qos.{tenant}.{suffix}")).add(by);
        }
    }
}

impl Inner {
    fn push_log(&mut self, line: String) {
        for byte in line.as_bytes() {
            self.log_hash ^= u64::from(*byte);
            self.log_hash = self.log_hash.wrapping_mul(FNV_PRIME);
        }
        self.log_hash ^= u64::from(b'\n');
        self.log_hash = self.log_hash.wrapping_mul(FNV_PRIME);
        self.log_count += 1;
        if self.log.len() < self.log_capacity {
            self.log.push(line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(node: u32, local: u32) -> ServerId {
        ServerId::new(NodeId::new(node), local)
    }

    fn entry(s: ServerId, key: u64) -> EntryId {
        EntryId::new(s, key)
    }

    fn engine_two_tenants() -> (QosEngine, TenantId, TenantId) {
        let qos = QosEngine::new(QosConfig::default());
        let hi = qos.register_tenant(TenantSpec::new("hi", 200, ByteSize::from_kib(64)));
        let lo = qos.register_tenant(TenantSpec::new("lo", 10, ByteSize::from_kib(64)));
        qos.assign_server(server(0, 0), hi);
        qos.assign_server(server(0, 1), lo);
        (qos, hi, lo)
    }

    #[test]
    fn unassigned_servers_belong_to_system() {
        let qos = QosEngine::new(QosConfig::default());
        assert_eq!(qos.tenant_of(server(3, 1)), TenantId::SYSTEM);
        assert_eq!(qos.tenant_name(TenantId::SYSTEM), "system");
    }

    #[test]
    fn quota_rejects_only_past_the_line() {
        let (qos, hi, _) = engine_two_tenants();
        let s = server(0, 0);
        for key in 0..16 {
            assert_eq!(qos.admit_fast(hi, 4096), AdmitDecision::Admit);
            qos.note_fast_resident(hi, entry(s, key), 4096, ResidentTier::Shared(NodeId::new(0)));
        }
        // 64 KiB quota exactly consumed by 16 pages.
        assert_eq!(qos.admit_fast(hi, 4096), AdmitDecision::RejectQuota);
        qos.note_dropped(hi, entry(s, 0));
        assert_eq!(qos.admit_fast(hi, 4096), AdmitDecision::Admit);
    }

    #[test]
    fn replace_put_does_not_double_charge() {
        let (qos, hi, _) = engine_two_tenants();
        let s = server(0, 0);
        for _ in 0..3 {
            qos.note_fast_resident(hi, entry(s, 7), 4096, ResidentTier::Remote);
        }
        assert_eq!(qos.tenants_snapshot()[hi.index() as usize].resident, 4096);
    }

    #[test]
    fn system_tenant_is_never_rejected_or_shed() {
        let qos = QosEngine::new(QosConfig::default());
        assert_eq!(
            qos.admit_fast(TenantId::SYSTEM, u64::MAX / 2),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn victim_scan_prefers_lowest_priority_and_respects_rank() {
        let (qos, hi, lo) = engine_two_tenants();
        let node = NodeId::new(0);
        qos.note_fast_resident(hi, entry(server(0, 0), 1), 4096, ResidentTier::Shared(node));
        qos.note_fast_resident(lo, entry(server(0, 1), 1), 4096, ResidentTier::Shared(node));

        // hi's put takes lo's page first.
        let v = qos.pick_victim(hi, node, entry(server(0, 0), 99)).unwrap();
        assert_eq!(v.tenant, lo);

        // lo's put never cannibalises lo itself (equal priority) and
        // never touches hi: the scan is strictly-lower-priority only.
        assert!(
            qos.pick_victim(lo, node, entry(server(0, 1), 99)).is_none(),
            "lo out-ranks nobody, so it has no victims"
        );
        qos.note_dropped(lo, entry(server(0, 1), 1));
        assert!(
            qos.pick_victim(hi, node, entry(server(0, 0), 99)).is_none(),
            "hi must not evict its own equal-priority pages"
        );
    }

    #[test]
    fn victim_scan_is_node_local_and_shared_only() {
        let (qos, hi, lo) = engine_two_tenants();
        qos.note_fast_resident(lo, entry(server(0, 1), 1), 4096, ResidentTier::Remote);
        qos.note_fast_resident(lo, entry(server(0, 1), 2), 4096, ResidentTier::Shared(NodeId::new(1)));
        assert!(qos.pick_victim(hi, NodeId::new(0), entry(server(0, 0), 9)).is_none());
        assert!(qos.pick_victim(hi, NodeId::new(1), entry(server(0, 0), 9)).is_some());
    }

    #[test]
    fn eviction_records_feed_the_invariant() {
        let (qos, hi, lo) = engine_two_tenants();
        let node = NodeId::new(0);
        qos.note_fast_resident(lo, entry(server(0, 1), 1), 4096, ResidentTier::Shared(node));
        let v = qos.pick_victim(hi, node, entry(server(0, 0), 5)).unwrap();
        qos.note_eviction(hi, &v);
        let recs = qos.evictions();
        assert_eq!(recs.len(), 1);
        assert!(recs[0].beneficiary_under_quota);
        assert!(recs[0].victim_priority <= recs[0].beneficiary_priority);
    }

    #[test]
    fn fabric_waits_are_deterministic_and_logged() {
        let run = || {
            let qos = QosEngine::new(QosConfig::default());
            let t = qos.register_tenant(
                TenantSpec::new("metered", 50, ByteSize::from_mib(1))
                    .with_fabric_rate(1_000_000),
            );
            let mut waits = Vec::new();
            for i in 0..50u64 {
                let now = SimInstant::from_nanos(i * 10_000);
                waits.push(qos.fabric_acquire(t, 60_000, now).as_nanos());
            }
            (waits, qos.decision_digest(), qos.decision_log())
        };
        let (w1, d1, l1) = run();
        let (w2, d2, l2) = run();
        assert_eq!(w1, w2);
        assert_eq!(d1, d2);
        assert_eq!(l1, l2);
        assert!(w1.iter().any(|&w| w > 0), "rate must actually bite");
    }

    #[test]
    fn throttle_levels_halve_effective_bandwidth() {
        let qos = QosEngine::new(QosConfig::default());
        let hi = qos.register_tenant(
            TenantSpec::new("hi", 200, ByteSize::from_mib(1))
                .with_slo_p99(SimDuration::from_nanos(1)),
        );
        let lo = qos.register_tenant(
            TenantSpec::new("lo", 10, ByteSize::from_mib(1)).with_fabric_rate(1_000_000),
        );
        let _ = hi;
        // Drain the burst, then measure the steady-state wait per 1000 B.
        let w0 = {
            let _ = qos.fabric_acquire(lo, qos.config.burst.as_u64(), SimInstant::from_nanos(0));
            qos.fabric_acquire(lo, 1000, SimInstant::from_nanos(0))
        };
        // Force a violation: record slow samples for hi, then tick.
        let metrics = MetricsRegistry::new();
        let h = metrics.histogram("qos.hi.get.ns");
        for _ in 0..32 {
            h.record(1_000_000);
        }
        qos.controller_tick(&metrics);
        assert_eq!(qos.throttle_level(lo), 1);
        assert_eq!(qos.throttle_level(hi), 0, "violated tenant keeps its rate");
        let w1 = qos.fabric_acquire(lo, 1000, SimInstant::from_nanos(0));
        assert_eq!(w1.as_nanos(), w0.as_nanos() * 2, "level 1 doubles the charge");
    }

    #[test]
    fn controller_decays_when_healthy_and_emits_donations() {
        let qos = QosEngine::new(QosConfig::default());
        let hi = qos.register_tenant(
            TenantSpec::new("hi", 200, ByteSize::from_mib(1))
                .with_slo_p99(SimDuration::from_micros(10)),
        );
        let lo = qos.register_tenant(TenantSpec::new("lo", 10, ByteSize::from_mib(1)));
        qos.assign_server(server(0, 0), hi);
        let metrics = MetricsRegistry::new();
        let h = metrics.histogram("qos.hi.get.ns");
        for _ in 0..32 {
            h.record(1_000_000); // 1 ms >> 10 µs target
        }
        let actions = qos.controller_tick(&metrics);
        assert_eq!(
            actions,
            vec![ControlAction::AdjustDonation {
                server: server(0, 0),
                delta: qos.config.donation_step,
            }]
        );
        assert_eq!(qos.throttle_level(lo), 1);

        // A healthy window (fast samples) decays the level.
        for _ in 0..32 {
            h.record(10);
        }
        let actions = qos.controller_tick(&metrics);
        assert!(actions.is_empty());
        assert_eq!(qos.throttle_level(lo), 0);
    }

    #[test]
    fn shedding_kicks_in_at_the_configured_level() {
        let qos = QosEngine::new(QosConfig::default());
        let hi = qos.register_tenant(
            TenantSpec::new("hi", 200, ByteSize::from_mib(1))
                .with_slo_p99(SimDuration::from_nanos(1)),
        );
        let _ = hi;
        let lo = qos.register_tenant(TenantSpec::new("lo", 10, ByteSize::from_mib(1)));
        let metrics = MetricsRegistry::new();
        let h = metrics.histogram("qos.hi.get.ns");
        for tick in 0..qos.config.shed_level {
            for _ in 0..32 {
                h.record(1_000_000);
            }
            qos.controller_tick(&metrics);
            let expect_shed = tick + 1 >= qos.config.shed_level;
            assert_eq!(
                qos.admit_fast(lo, 4096) == AdmitDecision::Shed,
                expect_shed,
                "tick {tick}"
            );
        }
    }

    #[test]
    fn report_lists_every_tenant() {
        let (qos, _, _) = engine_two_tenants();
        let report = qos.report();
        assert!(report.contains("system"));
        assert!(report.contains("hi"));
        assert!(report.contains("lo"));
        assert!(report.contains("unlimited"));
    }

    #[test]
    fn digest_counts_every_decision_past_log_capacity() {
        let qos = QosEngine::new(QosConfig {
            log_capacity: 4,
            ..QosConfig::default()
        });
        let t = qos.register_tenant(TenantSpec::new("t", 1, ByteSize::from_kib(4)));
        for _ in 0..10 {
            qos.admit_fast(t, 1);
        }
        assert!(qos.decision_digest().starts_with("n=10 "));
    }
}
