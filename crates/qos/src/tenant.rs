//! The tenancy model: who owns which servers, and under what policy.

use dmem_types::ByteSize;
use dmem_sim::SimDuration;

/// Policy for one tenant: identity, priority, fast-tier quota, optional
/// latency SLO and optional fabric rate.
///
/// * **Priority** is a `u8`, higher = more important. Priority governs
///   eviction (a tenant's pages may only displace pages of equal or lower
///   priority) and degradation (the controller throttles and sheds
///   strictly-lower-priority tenants when an SLO is violated).
/// * **Quota** bounds the tenant's *fast-tier* residency — bytes stored in
///   node shared pools, NVM and remote memory. Disk is unmetered, so a
///   tenant over quota degrades to disk rather than failing.
/// * **SLO** is a p99 target over the tenant's windowed get latency; the
///   closed-loop controller reacts when it is exceeded.
/// * **Fabric rate** meters the tenant's remote-memory verbs through a
///   deterministic token bucket.
///
/// # Examples
///
/// ```
/// use dmem_qos::TenantSpec;
/// use dmem_sim::SimDuration;
/// use dmem_types::ByteSize;
///
/// let t = TenantSpec::new("frontend", 200, ByteSize::from_mib(8))
///     .with_slo_p99(SimDuration::from_micros(50))
///     .with_fabric_rate(ByteSize::from_mib(64).as_u64());
/// assert_eq!(t.name, "frontend");
/// assert_eq!(t.priority, 200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Human-readable name, used in metric keys (`qos.<name>.…`) and
    /// reports. Must be unique within a registry.
    pub name: String,
    /// Higher wins: eviction protection and degradation ordering.
    pub priority: u8,
    /// Fast-tier residency bound (shared pool + NVM + remote).
    pub quota: ByteSize,
    /// Optional p99 get-latency target for the closed-loop controller.
    pub slo_p99: Option<SimDuration>,
    /// Optional per-tenant fabric rate in bytes per virtual second.
    pub fabric_rate: Option<u64>,
}

impl TenantSpec {
    /// Creates a spec with no SLO and no fabric rate limit.
    pub fn new(name: impl Into<String>, priority: u8, quota: ByteSize) -> Self {
        TenantSpec {
            name: name.into(),
            priority,
            quota,
            slo_p99: None,
            fabric_rate: None,
        }
    }

    /// The implicit system tenant: unlimited quota, top priority, never
    /// throttled. All servers belong to it until assigned elsewhere, which
    /// is what keeps every pre-QoS caller byte-identical.
    pub fn system() -> Self {
        TenantSpec::new("system", u8::MAX, ByteSize::new(u64::MAX))
    }

    /// Sets the p99 get-latency SLO.
    pub fn with_slo_p99(mut self, target: SimDuration) -> Self {
        self.slo_p99 = Some(target);
        self
    }

    /// Sets the fabric token-bucket rate (bytes per virtual second).
    pub fn with_fabric_rate(mut self, bytes_per_sec: u64) -> Self {
        self.fabric_rate = Some(bytes_per_sec);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_tenant_is_unbounded_top_priority() {
        let s = TenantSpec::system();
        assert_eq!(s.priority, u8::MAX);
        assert_eq!(s.quota.as_u64(), u64::MAX);
        assert!(s.slo_p99.is_none());
        assert!(s.fabric_rate.is_none());
    }

    #[test]
    fn builders_compose() {
        let t = TenantSpec::new("t", 1, ByteSize::from_kib(4))
            .with_slo_p99(SimDuration::from_micros(10))
            .with_fabric_rate(1000);
        assert_eq!(t.slo_p99, Some(SimDuration::from_micros(10)));
        assert_eq!(t.fabric_rate, Some(1000));
    }
}
