//! Deterministic token buckets on the virtual clock.
//!
//! Fabric rate limiting must be *exactly* reproducible: the same seed has
//! to yield byte-identical admission and throttle decisions across runs
//! and across parallel chaos execution. The bucket therefore does all its
//! arithmetic in integers — tokens are tracked in **nano-bytes** (one
//! byte = 10⁹ nano-bytes) so that refills of `rate × elapsed_ns / 10⁹`
//! lose nothing to truncation — and time comes exclusively from the
//! virtual clock, never from the host.

use dmem_sim::{SimDuration, SimInstant};

/// Nano-bytes per byte: the fixed-point scale for token accounting.
const NANO: u128 = 1_000_000_000;

/// A deterministic token bucket metering bytes per virtual second.
///
/// [`TokenBucket::acquire`] never blocks; it returns the virtual duration
/// the caller must advance the clock by before the transfer may proceed.
/// The bucket assumes the caller *does* advance — the deficit is
/// considered repaid once the returned wait has elapsed.
///
/// # Examples
///
/// ```
/// use dmem_qos::TokenBucket;
/// use dmem_sim::{SimDuration, SimInstant};
///
/// // 1 MiB/s with a 4 KiB burst allowance.
/// let mut b = TokenBucket::new(1 << 20, 4096);
/// let t0 = SimInstant::from_nanos(0);
/// assert_eq!(b.acquire(4096, t0), SimDuration::ZERO); // burst absorbs it
/// let wait = b.acquire(4096, t0);
/// assert!(wait > SimDuration::ZERO); // second page must wait ~3.9 ms
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained rate in bytes per virtual second. Always ≥ 1.
    rate: u64,
    /// Capacity in nano-bytes.
    burst_nano: u128,
    /// Available tokens in nano-bytes.
    tokens_nano: u128,
    /// Virtual time of the last refill, in nanoseconds.
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a full bucket sustaining `rate` bytes per virtual second
    /// with a `burst` bytes allowance. A zero `rate` is clamped to 1 so
    /// waits stay finite; a zero `burst` is clamped to 1 byte.
    pub fn new(rate: u64, burst: u64) -> Self {
        let burst_nano = u128::from(burst.max(1)) * NANO;
        TokenBucket {
            rate: rate.max(1),
            burst_nano,
            tokens_nano: burst_nano,
            last_ns: 0,
        }
    }

    /// Sustained rate in bytes per virtual second.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Brings the token count up to date at `now_ns`.
    fn refill(&mut self, now_ns: u64) {
        if now_ns <= self.last_ns {
            return;
        }
        let elapsed = u128::from(now_ns - self.last_ns);
        let earned = u128::from(self.rate) * elapsed;
        self.tokens_nano = (self.tokens_nano + earned).min(self.burst_nano);
        self.last_ns = now_ns;
    }

    /// Charges `bytes` and returns how long the caller must advance the
    /// virtual clock before proceeding ([`SimDuration::ZERO`] when the
    /// bucket has the tokens already).
    pub fn acquire(&mut self, bytes: u64, now: SimInstant) -> SimDuration {
        let now_ns = now.nanos();
        self.refill(now_ns);
        let need = u128::from(bytes) * NANO;
        if self.tokens_nano >= need {
            self.tokens_nano -= need;
            return SimDuration::ZERO;
        }
        let deficit = need - self.tokens_nano;
        self.tokens_nano = 0;
        // ceil(deficit / rate): the wait exactly repays the deficit, so
        // account the bucket as refilled-through the end of the wait.
        let rate = u128::from(self.rate);
        let wait_ns = deficit.div_ceil(rate);
        let wait_ns = u64::try_from(wait_ns).unwrap_or(u64::MAX);
        self.last_ns = now_ns.saturating_add(wait_ns);
        SimDuration::from_nanos(wait_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn at(ns: u64) -> SimInstant {
        SimInstant::from_nanos(ns)
    }

    #[test]
    fn burst_is_free_then_rate_limits() {
        let mut b = TokenBucket::new(1_000_000, 4096); // 1 MB/s
        assert_eq!(b.acquire(4096, at(0)), SimDuration::ZERO);
        let wait = b.acquire(1000, at(0));
        // 1000 bytes at 1 MB/s = exactly 1 ms.
        assert_eq!(wait, SimDuration::from_millis(1));
    }

    #[test]
    fn refill_restores_tokens_without_drift() {
        let mut b = TokenBucket::new(1_000_000, 1_000_000);
        assert_eq!(b.acquire(1_000_000, at(0)), SimDuration::ZERO);
        // After exactly 0.5 s, exactly half the burst is back.
        assert_eq!(b.acquire(500_000, at(500_000_000)), SimDuration::ZERO);
        // And nothing more: the very next byte waits 1 µs.
        assert_eq!(
            b.acquire(1, at(500_000_000)),
            SimDuration::from_nanos(1_000)
        );
    }

    #[test]
    fn waits_repay_deficit_exactly_once() {
        let mut b = TokenBucket::new(1_000, 1); // 1 KB/s, 1-byte burst
        let mut now = 0u64;
        b.acquire(1, at(now)); // drain the burst
        let w1 = b.acquire(100, at(now));
        now += w1.as_nanos();
        // Arriving exactly when the wait ends, the bucket is empty again.
        let w2 = b.acquire(100, at(now));
        assert_eq!(w1, w2, "equal charges after full waits must wait equally");
    }

    #[test]
    fn identical_sequences_are_byte_identical() {
        let charges: Vec<(u64, u64)> =
            (0..200).map(|i| (1 + (i * 37) % 9000, i * 13_331)).collect();
        let run = || {
            let mut b = TokenBucket::new(123_457, 8192);
            charges
                .iter()
                .map(|&(bytes, t)| b.acquire(bytes, at(t)).as_nanos())
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_rate_clamps_instead_of_hanging() {
        let mut b = TokenBucket::new(0, 0);
        let w = b.acquire(2, at(0));
        assert!(w > SimDuration::ZERO);
        assert!(w.as_nanos() < u64::MAX);
    }

    // Property tests for the nano-token fixed-point arithmetic: the
    // invariants the chaos digests silently depend on (saturation at the
    // burst cap, finite waits even for clamped zero-rate buckets, and the
    // engine's throttle-halving charge never panicking or regressing).
    proptest! {
        /// Idle time refills to the cap and not a nano-byte past it: after
        /// any idle gap a full-burst charge is free, and the very next
        /// byte waits.
        #[test]
        fn prop_refill_saturates_at_the_burst_cap(
            rate in 1u64..10_000_000,
            burst in 1u64..1_000_000,
            idle_ns in 0u64..100_000_000_000,
        ) {
            let mut b = TokenBucket::new(rate, burst);
            // Drain the initial burst, then idle arbitrarily long.
            prop_assert_eq!(b.acquire(burst, at(0)), SimDuration::ZERO);
            let later = 1 + idle_ns;
            // Whatever refilled is capped at `burst`: a follow-up byte at
            // the same instant must wait exactly one byte's worth
            // whenever the idle gap was long enough to refill fully.
            let fully_refilled = u128::from(later) * u128::from(rate) >= u128::from(burst) * NANO;
            if fully_refilled {
                prop_assert_eq!(b.acquire(burst, at(later)), SimDuration::ZERO);
                let w = b.acquire(1, at(later));
                prop_assert_eq!(w.as_nanos(), NANO.div_ceil(u128::from(rate)) as u64);
            } else {
                // Partial refill: the burst charge waits for precisely the
                // missing tokens, never underflows, never hangs.
                let w = b.acquire(burst, at(later));
                prop_assert!(w.as_nanos() < u64::MAX);
            }
        }

        /// A zero rate is clamped, not honoured: every charge completes
        /// with a finite, positive wait once the burst is gone.
        #[test]
        fn prop_zero_rate_buckets_stay_finite(
            bytes in 1u64..1_000_000_000,
            now_ns in 0u64..1_000_000_000,
        ) {
            let mut b = TokenBucket::new(0, 0);
            let first = b.acquire(bytes, at(now_ns));
            prop_assert!(first.as_nanos() < u64::MAX, "wait must stay finite");
            // The clamped 1 B/s rate repays `bytes` in exactly that many
            // virtual seconds (the 1-byte burst absorbs one byte once).
            prop_assert!(first.as_nanos() >= (bytes - 1).saturating_mul(NANO as u64 / 1));
        }

        /// The QoS engine's throttle penalty charges `bytes << level`
        /// (capped at 32): for any realistic transfer size and *any*
        /// throttle level the charge neither panics nor wraps, and a
        /// harsher level never waits less on a fresh bucket.
        #[test]
        fn prop_throttle_halving_never_panics_and_never_regresses(
            rate in 1u64..100_000_000,
            burst in 1u64..1_000_000,
            bytes in 1u64..4_294_967_295u64,
        ) {
            let mut previous = SimDuration::ZERO;
            for level in 0u8..=u8::MAX {
                // Mirrors `QosEngine::fabric_acquire`'s charge math.
                let charged = bytes << u64::from(level).min(32);
                prop_assert!(charged >= bytes, "charge wrapped at level {level}");
                let mut b = TokenBucket::new(rate, burst);
                let w = b.acquire(charged, at(0));
                prop_assert!(w.as_nanos() < u64::MAX || charged > rate,
                    "finite charge produced an unpayable wait");
                prop_assert!(w >= previous,
                    "level {level} waited less than level {}", level.wrapping_sub(1));
                previous = w;
                if level >= 40 {
                    break; // beyond the 32-shift cap the charge is constant
                }
            }
        }
    }
}
