//! Multi-tenant QoS control plane for disaggregated memory.
//!
//! The paper's §IV-F donation and ballooning policies account for memory
//! but enforce nothing; when many tenants contend for node shared pools,
//! remote memory and the RDMA fabric, somebody has to arbitrate. This
//! crate is that arbiter:
//!
//! * a **tenant registry** ([`TenantSpec`]) with per-tenant quota,
//!   priority and latency SLO;
//! * **admission control** on the put path — over-quota or shed tenants
//!   degrade to disk, never fail hard;
//! * **priority-aware eviction** — a tenant below its quota may displace
//!   pages of equal or lower priority, and *never* a strictly
//!   higher-priority tenant's pages;
//! * deterministic **token-bucket rate limiting** ([`TokenBucket`]) of
//!   fabric bytes on the virtual clock, per tenant and in aggregate;
//! * a **closed-loop controller** that watches windowed p99 latencies in
//!   the metrics registry each maintenance tick, grows donations toward
//!   suffering high-priority tenants and throttles/sheds lower-priority
//!   load (graceful degradation).
//!
//! Everything is decision logic over plain data: the engine tells
//! `dmem-core` *what* to do and records every decision in a
//! deterministic, digestable log, so chaos tests can prove byte-identical
//! behaviour per seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bucket;
mod engine;
mod tenant;

pub use bucket::TokenBucket;
pub use engine::{
    AdmitDecision, ControlAction, EvictionRecord, QosConfig, QosEngine, ResidentTier,
    TenantSnapshot, Victim,
};
pub use tenant::TenantSpec;
