//! Device cost models.
//!
//! Each storage/transport tier is modelled as a fixed per-operation base
//! latency plus a bandwidth term. The default constants encode the latency
//! hierarchy the paper's §VI recites (SRAM ≪ DRAM ≪ network ≪ SSD ≪ HDD)
//! calibrated to its testbed: 56 Gbps InfiniBand and 7.2K rpm SATA disks.

use crate::time::SimDuration;
use std::fmt;

/// Cost model of a single device or transport: `base + bytes / bandwidth`.
///
/// # Examples
///
/// ```
/// use dmem_sim::DeviceCost;
///
/// let rdma = DeviceCost::new_us_gbps(1.8, 5.0);
/// let one_page = rdma.transfer(4096);
/// assert!(one_page.as_micros_f64() > 1.8);
/// // Batching 32 pages pays the base latency once:
/// let batch = rdma.transfer(32 * 4096);
/// assert!(batch < one_page * 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCost {
    /// Fixed per-operation latency.
    pub base: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl DeviceCost {
    /// Creates a cost model from a base latency and a bandwidth.
    pub fn new(base: SimDuration, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        DeviceCost {
            base,
            bytes_per_sec,
        }
    }

    /// Convenience constructor: base in microseconds, bandwidth in GB/s.
    pub fn new_us_gbps(base_us: f64, gb_per_sec: f64) -> Self {
        DeviceCost::new(
            SimDuration::from_nanos((base_us * 1_000.0) as u64),
            gb_per_sec * 1e9,
        )
    }

    /// Cost of moving `bytes` in one operation.
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        self.base + SimDuration::from_nanos((bytes as f64 / self.bytes_per_sec * 1e9) as u64)
    }

    /// Cost of `n` separate operations of `bytes` each (pays base `n` times).
    pub fn transfer_each(&self, n: usize, bytes: usize) -> SimDuration {
        self.transfer(bytes) * n as u64
    }

    /// Returns this model with base latency scaled by `factor`.
    pub fn with_base_scaled(self, factor: f64) -> Self {
        DeviceCost {
            base: self.base * factor,
            bytes_per_sec: self.bytes_per_sec,
        }
    }

    /// Returns this model with bandwidth scaled by `factor`.
    pub fn with_bandwidth_scaled(self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        DeviceCost {
            base: self.base,
            bytes_per_sec: self.bytes_per_sec * factor,
        }
    }
}

impl fmt::Display for DeviceCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {:.2} GB/s",
            self.base,
            self.bytes_per_sec / 1e9
        )
    }
}

/// The full latency hierarchy used by the simulated cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Local DRAM access within a virtual server.
    pub dram: DeviceCost,
    /// Node-coordinated shared memory: DRAM speed plus IPC/mapping overhead
    /// (the paper's node-level disaggregation premise, §III).
    pub shared_memory: DeviceCost,
    /// One RDMA RC verb on the 56 Gbps InfiniBand fabric.
    pub rdma: DeviceCost,
    /// One load/store window against a CXL memory-pool node: hundreds of
    /// nanoseconds to the first cacheline (CXL.mem request/response across
    /// one switch hop), then cacheline-granular streaming. No verb, queue
    /// pair, or retry machinery — failures surface as machine checks, not
    /// timeouts. The tier both surveys name as RDMA's successor.
    pub cxl: DeviceCost,
    /// Local byte-addressable NVM (PCM / 3D XPoint class): the §VI
    /// emerging-memory tier, used by the NVM extension.
    pub nvm: DeviceCost,
    /// Local SSD (not in the paper's testbed; used by extension ablations).
    pub ssd: DeviceCost,
    /// Local 7.2K rpm SATA disk, the swap device of the Linux baseline.
    pub hdd: DeviceCost,
    /// Per-page CPU cost of compressing a 4 KiB page.
    pub compress_page: SimDuration,
    /// Per-page CPU cost of decompressing a 4 KiB page.
    pub decompress_page: SimDuration,
}

impl CostModel {
    /// Constants calibrated to the paper's testbed; see DESIGN.md.
    pub fn paper_default() -> Self {
        CostModel {
            // 100 ns load-to-use + 12.8 GB/s copy bandwidth.
            dram: DeviceCost::new_us_gbps(0.1, 12.8),
            // ~1.3x DRAM: page-table mapping + node-manager coordination.
            shared_memory: DeviceCost::new_us_gbps(0.35, 9.8),
            // 56 Gbps IB: ~1.8 us one-sided verb, ~5 GB/s effective.
            rdma: DeviceCost::new_us_gbps(1.8, 5.0),
            // Pooled CXL memory one switch hop away: ~250 ns to the first
            // cacheline, ~3.2 GB/s sustained (64 B line / ~20 ns) — far
            // below the verb floor for small accesses, but behind RDMA's
            // streaming bandwidth for bulk transfers.
            cxl: DeviceCost::new_us_gbps(0.25, 3.2),
            // 3D XPoint class: ~350 ns access, ~2 GB/s sustained.
            nvm: DeviceCost::new_us_gbps(0.35, 2.0),
            // NVMe-class SSD.
            ssd: DeviceCost::new_us_gbps(80.0, 0.5),
            // 7.2K rpm SATA: ~4 ms average access, 150 MB/s streaming.
            hdd: DeviceCost::new_us_gbps(4_000.0, 0.15),
            // LZ-class software codec on one core.
            compress_page: SimDuration::from_nanos(1_500),
            decompress_page: SimDuration::from_nanos(700),
        }
    }

    /// Cost of a 4 KiB page on each tier, useful for sanity checks.
    pub fn page_costs(&self) -> [(&'static str, SimDuration); 7] {
        [
            ("dram", self.dram.transfer(4096)),
            ("shared", self.shared_memory.transfer(4096)),
            ("cxl", self.cxl.transfer(4096)),
            ("nvm", self.nvm.transfer(4096)),
            ("rdma", self.rdma.transfer(4096)),
            ("ssd", self.ssd.transfer(4096)),
            ("hdd", self.hdd.transfer(4096)),
        ]
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_hierarchy_is_ordered() {
        let m = CostModel::paper_default();
        let p = 4096;
        assert!(m.dram.transfer(p) < m.shared_memory.transfer(p));
        assert!(m.shared_memory.transfer(p) < m.cxl.transfer(p));
        assert!(m.cxl.transfer(p) < m.nvm.transfer(p));
        assert!(m.nvm.transfer(p) < m.rdma.transfer(p));
        assert!(m.rdma.transfer(p) < m.ssd.transfer(p));
        assert!(m.ssd.transfer(p) < m.hdd.transfer(p));
    }

    #[test]
    fn cxl_crossover_shape() {
        // The crossover the ext_crossover figure measures: CXL wins small
        // cacheline-granular accesses on latency, RDMA wins bulk transfers
        // on bandwidth.
        let m = CostModel::paper_default();
        assert!(m.cxl.transfer(64) * 5 < m.rdma.transfer(64));
        assert!(m.cxl.transfer(64).as_nanos() < 1_000, "hundreds of ns, not us");
        assert!(m.rdma.transfer(64 * 1024) < m.cxl.transfer(64 * 1024));
    }

    #[test]
    fn nvm_sits_between_shared_memory_and_network() {
        // §VI's tiering argument: local NVM extends memory below DRAM but
        // above the network for page-sized accesses.
        let m = CostModel::paper_default();
        let nvm = m.nvm.transfer(4096);
        assert!(nvm.as_micros_f64() > 1.0 && nvm.as_micros_f64() < 3.0);
    }

    #[test]
    fn disk_network_gap_is_three_orders() {
        // The latency gap Infiniswap/FastSwap exploit: a 4 KiB page from
        // disk costs ~1000x a 4 KiB page over RDMA.
        let m = CostModel::paper_default();
        let gap = m.hdd.transfer(4096).as_nanos() as f64 / m.rdma.transfer(4096).as_nanos() as f64;
        assert!(gap > 500.0, "gap was only {gap:.0}x");
        assert!(gap < 5_000.0, "gap implausibly large: {gap:.0}x");
    }

    #[test]
    fn shared_memory_near_dram_speed() {
        // §III: node-level disaggregated memory is accessed "at the DRAM
        // speed instead of the network I/O speed".
        let m = CostModel::paper_default();
        let ratio = m.shared_memory.transfer(4096).as_nanos() as f64
            / m.dram.transfer(4096).as_nanos() as f64;
        assert!(ratio < 3.0, "shared memory {ratio:.1}x DRAM, expected < 3x");
        let rdma_ratio = m.rdma.transfer(4096).as_nanos() as f64
            / m.shared_memory.transfer(4096).as_nanos() as f64;
        assert!(rdma_ratio > 2.0, "rdma should be well above shared memory");
    }

    #[test]
    fn batching_amortizes_base() {
        let rdma = CostModel::paper_default().rdma;
        let batched = rdma.transfer(64 * 4096);
        let separate = rdma.transfer_each(64, 4096);
        assert!(batched < separate);
        // The saving is 63 base latencies, up to per-op rounding (< 1 ns each).
        let saving = (separate - batched).as_nanos() as i128;
        let expected = (rdma.base * 63).as_nanos() as i128;
        assert!((saving - expected).abs() <= 64, "saving {saving} vs {expected}");
    }

    #[test]
    fn scaling_helpers() {
        let d = DeviceCost::new_us_gbps(2.0, 1.0);
        assert_eq!(d.with_base_scaled(2.0).base, SimDuration::from_micros(4));
        let fast = d.with_bandwidth_scaled(2.0);
        assert!(fast.transfer(1 << 20) < d.transfer(1 << 20));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DeviceCost::new(SimDuration::ZERO, 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!CostModel::paper_default().rdma.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn prop_transfer_monotone_in_bytes(a in 0usize..1 << 24, b in 0usize..1 << 24) {
            let d = CostModel::paper_default().rdma;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(d.transfer(lo) <= d.transfer(hi));
        }

        #[test]
        fn prop_transfer_at_least_base(bytes in 0usize..1 << 24) {
            let d = CostModel::paper_default().hdd;
            prop_assert!(d.transfer(bytes) >= d.base);
        }
    }
}
