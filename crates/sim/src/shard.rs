//! Sharded deterministic event engine.
//!
//! Scales one scenario across cores without giving up determinism: hosts
//! are partitioned into *shards* fixed by the scenario topology, each
//! shard owns its hosts' event queue, virtual clock and RNG stream, and
//! shards advance independently up to a deterministic *epoch barrier*.
//! Cross-shard traffic (fabric verbs, replication writes, failover
//! probes) travels through ordered inter-shard mailboxes whose envelopes
//! merge under the fixed `(virtual_time, shard_id, seq)` tiebreak, so the
//! simulation output is byte-identical at every worker count — including
//! a single worker.
//!
//! The engine is *conservative* (lookahead-based): the epoch length must
//! not exceed the minimum cross-shard message latency, so a message sent
//! during epoch `k` always delivers in epoch `k + 1` or later and no
//! shard can observe an event from a shard whose clock lags behind its
//! own epoch window. [`EpochCtx::send`] asserts this invariant on every
//! envelope.
//!
//! Worker threads are persistent for the whole run (two barrier waits
//! per epoch, no per-epoch spawns); the number of worker threads only
//! changes which OS thread executes a shard, never the order in which
//! envelopes merge.

use crate::rng::DetRng;
use crate::time::{SimDuration, SimInstant};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Identifies one shard (a host-group) within a sharded simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard's index as a `usize`, for slot lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// A fixed host → shard partition.
///
/// The partition is part of the scenario topology: it depends only on the
/// host count and the configured shard count, never on how many worker
/// threads execute the run. Hosts map to contiguous groups so rack
/// locality (hosts on one shard) is meaningful.
///
/// # Examples
///
/// ```
/// use dmem_sim::shard::ShardMap;
///
/// let map = ShardMap::grouped(10, 4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.shard_of(0).0, 0);
/// assert_eq!(map.shard_of(9).0, 3);
/// // Groups are contiguous.
/// assert_eq!(map.hosts_of(map.shard_of(0)).start, 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    hosts: usize,
    shards: u32,
}

impl ShardMap {
    /// Partitions `hosts` into `shards` contiguous, near-equal groups.
    /// The shard count is clamped to `[1, hosts]` (a shard must own at
    /// least one host).
    pub fn grouped(hosts: usize, shards: usize) -> ShardMap {
        let hosts = hosts.max(1);
        let shards = shards.clamp(1, hosts) as u32;
        ShardMap { hosts, shards }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Number of hosts in the partition.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The shard owning `host` (host indices at or past the end clamp
    /// into the last shard, so foreign ids never panic).
    pub fn shard_of(&self, host: usize) -> ShardId {
        let host = host.min(self.hosts - 1);
        ShardId((host * self.shards as usize / self.hosts) as u32)
    }

    /// The contiguous host range owned by `shard`.
    pub fn hosts_of(&self, shard: ShardId) -> Range<usize> {
        let s = shard.index().min(self.shards as usize - 1);
        let start = (s * self.hosts).div_ceil(self.shards as usize);
        let end = ((s + 1) * self.hosts).div_ceil(self.shards as usize);
        start..end
    }
}

/// One message travelling between shards through a mailbox.
///
/// Envelopes merge under the total order `(deliver_at, src, seq)`: virtual
/// delivery time first, then source shard id, then the source's send
/// sequence number. The pair `(src, seq)` is unique per envelope, so the
/// order is total — equal timestamps from different sources always resolve
/// the same way regardless of arrival interleaving.
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Virtual time at which the destination shard observes the message.
    pub deliver_at: SimInstant,
    /// The sending shard.
    pub src: ShardId,
    /// Send sequence number, monotone per source shard.
    pub seq: u64,
    /// Virtual time at which the source sent the message.
    pub sent_at: SimInstant,
    /// The payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// The merge key: `(deliver_at, src shard, seq)`.
    pub fn key(&self) -> (SimInstant, u32, u64) {
        (self.deliver_at, self.src.0, self.seq)
    }
}

/// Merges per-source envelope batches into the canonical delivery order.
///
/// The result is independent of how the batches were interleaved: any
/// permutation of the same envelopes yields the same total order, because
/// the `(deliver_at, src, seq)` key is unique per envelope.
pub fn merge_envelopes<M>(batches: Vec<Vec<Envelope<M>>>) -> Vec<Envelope<M>> {
    let mut all: Vec<Envelope<M>> = batches.into_iter().flatten().collect();
    all.sort_by_key(Envelope::key);
    all
}

/// Heap adapter ordering envelopes by the merge key (min-heap via
/// `Reverse`).
struct InboxEntry<M>(Envelope<M>);

impl<M> PartialEq for InboxEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<M> Eq for InboxEntry<M> {}
impl<M> PartialOrd for InboxEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InboxEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// Everything one shard sees during one epoch: the window bounds, the
/// due inbox (pre-merged into canonical order), and the outbox.
pub struct EpochCtx<M> {
    shard: ShardId,
    epoch_start: SimInstant,
    epoch_end: SimInstant,
    inbox: Vec<Envelope<M>>,
    sent: Vec<(ShardId, Envelope<M>)>,
    next_seq: u64,
}

impl<M> EpochCtx<M> {
    /// The shard this context belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Inclusive start of the epoch window.
    pub fn epoch_start(&self) -> SimInstant {
        self.epoch_start
    }

    /// Exclusive end of the epoch window: local events at or past this
    /// instant belong to a later epoch.
    pub fn epoch_end(&self) -> SimInstant {
        self.epoch_end
    }

    /// Takes the envelopes due this epoch, already in `(deliver_at, src,
    /// seq)` order. Every envelope was sent in a strictly earlier epoch.
    pub fn take_inbox(&mut self) -> Vec<Envelope<M>> {
        std::mem::take(&mut self.inbox)
    }

    /// Sends `msg` to shard `to`, delivered at `deliver_at`.
    ///
    /// # Panics
    ///
    /// Panics if the envelope would violate the conservative-lookahead
    /// contract: `sent_at` outside this epoch window, or `deliver_at`
    /// before the end of this epoch (which would require delivery into
    /// an epoch that may already have run on another shard).
    pub fn send(&mut self, to: ShardId, sent_at: SimInstant, deliver_at: SimInstant, msg: M) {
        assert!(
            sent_at >= self.epoch_start && sent_at < self.epoch_end,
            "{}: send stamped {sent_at} outside epoch [{}, {})",
            self.shard,
            self.epoch_start,
            self.epoch_end,
        );
        assert!(
            deliver_at >= sent_at,
            "{}: envelope delivers at {deliver_at} before its send time {sent_at}",
            self.shard,
        );
        assert!(
            deliver_at >= self.epoch_end,
            "{}: envelope delivers at {deliver_at} inside the sending epoch (end {}); \
             cross-shard latency must be at least one epoch",
            self.shard,
            self.epoch_end,
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.sent.push((
            to,
            Envelope {
                deliver_at,
                src: self.shard,
                seq,
                sent_at,
                msg,
            },
        ));
    }

    /// Number of envelopes sent so far this epoch.
    pub fn sent_len(&self) -> usize {
        self.sent.len()
    }
}

/// A shard's behaviour: one epoch of local event processing.
///
/// The engine calls [`run_epoch`](ShardWorker::run_epoch) once per epoch
/// per shard (possibly from different OS threads on different epochs —
/// workers must not rely on thread identity). Implementations drain the
/// ctx inbox, process local events with timestamps inside the window, and
/// emit cross-shard messages through [`EpochCtx::send`].
pub trait ShardWorker: Send {
    /// The cross-shard message type.
    type Msg: Send;

    /// Advances this shard through `[ctx.epoch_start(), ctx.epoch_end())`.
    fn run_epoch(&mut self, ctx: &mut EpochCtx<Self::Msg>);

    /// The time of this shard's next pending *local* event, if any.
    /// Drives termination and epoch skipping; in-flight mailbox traffic
    /// is tracked by the engine itself.
    fn next_local_at(&self) -> Option<SimInstant>;
}

/// Aggregate statistics from one engine run. All fields are functions of
/// the scenario only — never of the worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineReport {
    /// Epochs actually executed (skipped idle epochs excluded).
    pub epochs: u64,
    /// Envelopes routed between distinct shards.
    pub cross_messages: u64,
    /// Envelopes a shard sent to itself through the mailbox path.
    pub local_messages: u64,
    /// Exclusive end of the last executed epoch window.
    pub horizon: SimInstant,
}

struct Slot<W: ShardWorker> {
    worker: W,
    inbox: BinaryHeap<Reverse<InboxEntry<W::Msg>>>,
    next_seq: u64,
    outbox: Vec<(ShardId, Envelope<W::Msg>)>,
}

impl<W: ShardWorker> Slot<W> {
    /// Runs one epoch for this shard: extracts the due inbox in merge
    /// order, hands it to the worker, and stashes the outbox for the
    /// coordinator's routing phase.
    fn run_epoch(&mut self, shard: ShardId, epoch_start: SimInstant, epoch_end: SimInstant) {
        let mut due = Vec::new();
        while let Some(Reverse(head)) = self.inbox.peek() {
            if head.0.deliver_at >= epoch_end {
                break;
            }
            let Reverse(entry) = self.inbox.pop().expect("peeked entry exists");
            debug_assert!(entry.0.deliver_at >= epoch_start, "envelope missed its epoch");
            due.push(entry.0);
        }
        let mut ctx = EpochCtx {
            shard,
            epoch_start,
            epoch_end,
            inbox: due,
            sent: std::mem::take(&mut self.outbox),
            next_seq: self.next_seq,
        };
        self.worker.run_epoch(&mut ctx);
        assert!(ctx.inbox.is_empty(), "{shard}: worker left inbox envelopes undelivered");
        self.next_seq = ctx.next_seq;
        self.outbox = ctx.sent;
    }

    /// Earliest pending instant across local events and mailed envelopes.
    fn next_at(&self) -> Option<SimInstant> {
        let local = self.worker.next_local_at();
        let mailed = self.inbox.peek().map(|Reverse(e)| e.0.deliver_at);
        match (local, mailed) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// The sharded engine: runs a set of [`ShardWorker`]s to quiescence.
///
/// `workers` is the OS-thread count and affects wall-clock time only;
/// the result is byte-identical for every value, including `1`.
pub struct ShardedEngine;

impl ShardedEngine {
    /// Runs `shards` to quiescence with `workers` OS threads and the
    /// given epoch length, returning the workers (for result extraction)
    /// and the run report.
    ///
    /// `min_latency` is the model's minimum cross-shard message latency;
    /// the conservative barrier requires `epoch <= min_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, `epoch` is zero, or
    /// `epoch > min_latency`.
    pub fn run<W: ShardWorker>(
        workers: usize,
        shards: Vec<W>,
        epoch: SimDuration,
        min_latency: SimDuration,
    ) -> (Vec<W>, EngineReport) {
        assert!(!shards.is_empty(), "no shards to run");
        assert!(!epoch.is_zero(), "epoch must be positive");
        assert!(
            epoch <= min_latency,
            "epoch {epoch} exceeds the minimum cross-shard latency {min_latency}; \
             messages could deliver into an epoch that already ran",
        );
        let nshards = shards.len();
        let slots: Vec<Mutex<Slot<W>>> = shards
            .into_iter()
            .map(|worker| {
                Mutex::new(Slot {
                    worker,
                    inbox: BinaryHeap::new(),
                    next_seq: 0,
                    outbox: Vec::new(),
                })
            })
            .collect();
        let workers = workers.max(1).min(nshards);

        let mut report = EngineReport::default();
        let mut epoch_index: u64 = 0;

        if workers <= 1 {
            loop {
                let (start, end) = epoch_window(epoch, epoch_index);
                for (i, slot) in slots.iter().enumerate() {
                    slot.lock().run_epoch(ShardId(i as u32), start, end);
                }
                report.epochs += 1;
                report.horizon = end;
                match Self::route_and_plan(&slots, epoch, epoch_index, &mut report) {
                    Some(next) => epoch_index = next,
                    None => break,
                }
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let start_ns = AtomicU64::new(0);
            let done = AtomicBool::new(false);
            let barrier = Barrier::new(workers + 1);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        barrier.wait();
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        let start = SimInstant::from_nanos(start_ns.load(Ordering::Acquire));
                        let end = start + epoch;
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= nshards {
                                break;
                            }
                            slots[i].lock().run_epoch(ShardId(i as u32), start, end);
                        }
                        barrier.wait();
                    });
                }
                loop {
                    let (start, end) = epoch_window(epoch, epoch_index);
                    start_ns.store(start.nanos(), Ordering::Release);
                    cursor.store(0, Ordering::Relaxed);
                    barrier.wait(); // epoch starts
                    barrier.wait(); // all shards done
                    report.epochs += 1;
                    report.horizon = end;
                    match Self::route_and_plan(&slots, epoch, epoch_index, &mut report) {
                        Some(next) => epoch_index = next,
                        None => {
                            done.store(true, Ordering::Release);
                            barrier.wait(); // release workers to observe done
                            break;
                        }
                    }
                }
            });
        }

        let finished = slots
            .into_iter()
            .map(|slot| slot.into_inner().worker)
            .collect();
        (finished, report)
    }

    /// Serial coordinator phase: drains every shard's outbox in shard
    /// order into destination inboxes, then either returns the next epoch
    /// index (skipping idle windows) or `None` when the system is
    /// quiescent. Runs between barriers, so it is single-threaded and
    /// deterministic by construction.
    fn route_and_plan<W: ShardWorker>(
        slots: &[Mutex<Slot<W>>],
        epoch: SimDuration,
        epoch_index: u64,
        report: &mut EngineReport,
    ) -> Option<u64> {
        let mut routed: Vec<Vec<Envelope<W::Msg>>> = (0..slots.len()).map(|_| Vec::new()).collect();
        for (i, slot) in slots.iter().enumerate() {
            let mut slot = slot.lock();
            for (to, env) in slot.outbox.drain(..) {
                assert!(to.index() < slots.len(), "send to unknown shard {to}");
                if to.index() == i {
                    report.local_messages += 1;
                } else {
                    report.cross_messages += 1;
                }
                routed[to.index()].push(env);
            }
        }
        let mut next_at: Option<SimInstant> = None;
        for (slot, incoming) in slots.iter().zip(routed) {
            let mut slot = slot.lock();
            for env in incoming {
                slot.inbox.push(Reverse(InboxEntry(env)));
            }
            next_at = match (next_at, slot.next_at()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let next_at = next_at?;
        // Skip empty epochs: jump straight to the window containing the
        // next pending instant. Windows stay on the fixed grid, so the
        // skip changes nothing observable.
        let next_index = (next_at.nanos() / epoch.as_nanos()).max(epoch_index + 1);
        Some(next_index)
    }
}

/// The `[start, end)` window of epoch `index` on the fixed grid.
fn epoch_window(epoch: SimDuration, index: u64) -> (SimInstant, SimInstant) {
    let start = SimInstant::from_nanos(epoch.as_nanos() * index);
    (start, start + epoch)
}

/// Derives the per-shard RNG stream for `shard` under `root_seed`.
///
/// Thin convenience over [`DetRng::for_shard`] so engine callers and
/// tests agree on one spelling.
pub fn shard_rng(root_seed: u64, shard: ShardId) -> DetRng {
    DetRng::for_shard(root_seed, shard.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::RngCore;

    #[test]
    fn grouped_map_is_contiguous_and_total() {
        for hosts in [1usize, 2, 5, 7, 32, 100] {
            for shards in [1usize, 2, 3, 4, 8, 200] {
                let map = ShardMap::grouped(hosts, shards);
                assert!(map.shards() as usize <= hosts);
                let mut seen = 0;
                for s in 0..map.shards() {
                    let range = map.hosts_of(ShardId(s));
                    assert_eq!(range.start, seen, "groups must be contiguous");
                    assert!(!range.is_empty(), "every shard owns a host");
                    for h in range.clone() {
                        assert_eq!(map.shard_of(h), ShardId(s));
                    }
                    seen = range.end;
                }
                assert_eq!(seen, hosts);
            }
        }
    }

    #[test]
    fn shard_of_clamps_foreign_ids() {
        let map = ShardMap::grouped(8, 4);
        assert_eq!(map.shard_of(10_000), ShardId(3));
    }

    /// A toy worker: a ring of shards ping-ponging messages with varying
    /// latency, logging every delivery. Used to check that the transcript
    /// is identical at every worker count.
    struct RingWorker {
        shard: ShardId,
        shards: u32,
        pending_kick: Option<SimInstant>,
        sends_left: u32,
        latency: SimDuration,
        rng: DetRng,
        log: Vec<(u64, u32, u64, u64)>, // (deliver_ns, src, seq, payload)
    }

    impl RingWorker {
        fn new(shard: ShardId, shards: u32, seed: u64) -> Self {
            RingWorker {
                shard,
                shards,
                pending_kick: Some(SimInstant::EPOCH),
                sends_left: 8,
                latency: SimDuration::from_nanos(100),
                rng: shard_rng(seed, shard),
            log: Vec::new(),
            }
        }
    }

    impl ShardWorker for RingWorker {
        type Msg = u64;

        fn run_epoch(&mut self, ctx: &mut EpochCtx<u64>) {
            if let Some(at) = self.pending_kick.take() {
                if at < ctx.epoch_end() {
                    let to = ShardId((self.shard.0 + 1) % self.shards);
                    let lat = self.latency * (1 + self.rng.next_u64() % 3);
                    ctx.send(to, at, at + lat, self.shard.0 as u64);
                    self.sends_left -= 1;
                } else {
                    self.pending_kick = Some(at); // not due yet
                }
            }
            for env in ctx.take_inbox() {
                assert!(env.deliver_at >= env.sent_at);
                assert!(env.sent_at < ctx.epoch_start(), "sent in a strictly earlier epoch");
                self.log
                    .push((env.deliver_at.nanos(), env.src.0, env.seq, env.msg));
                if self.sends_left > 0 {
                    self.sends_left -= 1;
                    let to = ShardId((self.shard.0 + 1) % self.shards);
                    let lat = self.latency * (1 + self.rng.next_u64() % 3);
                    ctx.send(to, env.deliver_at, env.deliver_at + lat, env.msg + 1);
                }
            }
        }

        fn next_local_at(&self) -> Option<SimInstant> {
            self.pending_kick
        }
    }

    fn run_ring(workers: usize, shards: u32, seed: u64) -> (Vec<Vec<(u64, u32, u64, u64)>>, EngineReport) {
        let ring: Vec<RingWorker> = (0..shards)
            .map(|s| RingWorker::new(ShardId(s), shards, seed))
            .collect();
        let (done, report) = ShardedEngine::run(
            workers,
            ring,
            SimDuration::from_nanos(100),
            SimDuration::from_nanos(100),
        );
        (done.into_iter().map(|w| w.log).collect(), report)
    }

    #[test]
    fn ring_transcript_identical_across_worker_counts() {
        let (base, base_report) = run_ring(1, 6, 42);
        assert!(base_report.cross_messages > 0, "vacuous: no cross-shard traffic");
        for workers in [2, 3, 6, 8] {
            let (other, report) = run_ring(workers, 6, 42);
            assert_eq!(base, other, "workers={workers} changed the transcript");
            assert_eq!(base_report, report, "workers={workers} changed the report");
        }
    }

    #[test]
    fn ring_transcript_stable_across_reruns() {
        assert_eq!(run_ring(3, 4, 7).0, run_ring(3, 4, 7).0);
    }

    #[test]
    #[should_panic(expected = "cross-shard latency must be at least one epoch")]
    fn undeliverable_latency_panics() {
        struct Eager(Option<SimInstant>);
        impl ShardWorker for Eager {
            type Msg = ();
            fn run_epoch(&mut self, ctx: &mut EpochCtx<()>) {
                if let Some(at) = self.0.take() {
                    // Zero-latency cross-shard send: violates lookahead.
                    ctx.send(ShardId(1), at, at, ());
                }
                ctx.take_inbox();
            }
            fn next_local_at(&self) -> Option<SimInstant> {
                self.0
            }
        }
        let shards = vec![Eager(Some(SimInstant::EPOCH)), Eager(None)];
        ShardedEngine::run(
            1,
            shards,
            SimDuration::from_nanos(10),
            SimDuration::from_nanos(10),
        );
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn epoch_longer_than_lookahead_rejected() {
        struct Idle;
        impl ShardWorker for Idle {
            type Msg = ();
            fn run_epoch(&mut self, _: &mut EpochCtx<()>) {}
            fn next_local_at(&self) -> Option<SimInstant> {
                None
            }
        }
        ShardedEngine::run(
            1,
            vec![Idle],
            SimDuration::from_nanos(20),
            SimDuration::from_nanos(10),
        );
    }

    /// Arbitrary envelopes with deliberately colliding timestamps:
    /// `(src, seq)` pairs are made unique, times are drawn from a tiny
    /// range so ties are common.
    fn arb_envelopes() -> impl Strategy<Value = Vec<Envelope<u64>>> {
        proptest::collection::vec((0u64..4, 0u32..4, 0u64..1000), 1..60).prop_map(|raw| {
            let mut seq_per_src = std::collections::HashMap::new();
            raw.into_iter()
                .map(|(t, src, payload)| {
                    let seq = seq_per_src.entry(src).or_insert(0u64);
                    *seq += 1;
                    Envelope {
                        deliver_at: SimInstant::from_nanos(t),
                        src: ShardId(src),
                        seq: *seq,
                        sent_at: SimInstant::EPOCH,
                        msg: payload,
                    }
                })
                .collect()
        })
    }

    proptest! {
        /// Satellite: any interleaving of mailbox deliveries with equal
        /// timestamps resolves to the same total order under the
        /// `(time, shard_id, seq)` tiebreak.
        #[test]
        fn prop_merge_is_interleaving_independent(
            envs in arb_envelopes(),
            shuffle_seed in 0u64..1000,
            cuts in proptest::collection::vec(0usize..60, 0..6),
        ) {
            // Canonical: one batch, sorted.
            let canonical = merge_envelopes(vec![envs.clone()]);
            // Adversarial: shuffle, then split into arbitrary batches.
            let mut shuffled = envs;
            DetRng::new(shuffle_seed).shuffle(&mut shuffled);
            let mut batches: Vec<Vec<Envelope<u64>>> = Vec::new();
            let mut rest = shuffled;
            for cut in cuts {
                let cut = cut.min(rest.len());
                let tail = rest.split_off(cut);
                batches.push(rest);
                rest = tail;
            }
            batches.push(rest);
            let merged = merge_envelopes(batches);
            let keys = |v: &[Envelope<u64>]| v.iter().map(|e| (e.key(), e.msg)).collect::<Vec<_>>();
            prop_assert_eq!(keys(&canonical), keys(&merged));
            // And the order is actually sorted by the merge key.
            for w in merged.windows(2) {
                prop_assert!(w[0].key() < w[1].key(), "merge key must be strictly increasing");
            }
        }

        /// Satellite: epoch barriers never deliver an event before its
        /// send time, and always in a strictly later epoch than the send
        /// (asserted inside `RingWorker::run_epoch`). Transcripts are also
        /// worker-count independent for every sampled topology.
        #[test]
        fn prop_barrier_never_delivers_before_send(
            shards in 2u32..7,
            seed in 0u64..500,
            workers in 1usize..5,
        ) {
            let (base, report) = run_ring(1, shards, seed);
            prop_assert!(report.cross_messages > 0);
            let (other, _) = run_ring(workers, shards, seed);
            prop_assert_eq!(base, other);
        }
    }
}
