//! Deterministic random streams.
//!
//! Every randomized component (placement, workload generation, failure
//! schedules) takes a [`DetRng`] forked from the cluster seed, so whole
//! experiments are reproducible and components do not perturb each other's
//! streams when the call order changes.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with labelled forking.
///
/// # Examples
///
/// ```
/// use dmem_sim::DetRng;
/// use rand::RngCore;
///
/// let mut root = DetRng::new(42);
/// let mut placement = root.fork("placement");
/// let mut workload = root.fork("workload");
/// // Streams are independent: same labels always yield the same streams.
/// let a: u64 = placement.next_u64();
/// let b: u64 = DetRng::new(42).fork("placement").next_u64();
/// assert_eq!(a, b);
/// # let _ = workload;
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream from a label.
    ///
    /// Forking depends only on the parent seed and the label — not on how
    /// much of the parent stream has been consumed — so adding draws in one
    /// component never shifts another component's stream.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derives an independent child stream from a label and an index,
    /// useful for per-node or per-server streams.
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(splitmix(
            self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index),
        ))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::DetRng;
    use proptest::prelude::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable() {
        let root = DetRng::new(9);
        let mut f1 = root.fork("x");
        let mut f2 = DetRng::new(9).fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let root = DetRng::new(9);
        assert_ne!(root.fork("a").next_u64(), root.fork("b").next_u64());
        assert_ne!(
            root.fork_indexed("n", 0).next_u64(),
            root.fork_indexed("n", 1).next_u64()
        );
    }

    #[test]
    fn fork_independent_of_consumption() {
        let mut a = DetRng::new(5);
        let b = DetRng::new(5);
        let _ = a.next_u64(); // consume from a only
        assert_eq!(a.fork("z").next_u64(), b.fork("z").next_u64());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::new(1);
        let picks = rng.sample_indices(10, 3);
        assert_eq!(picks.len(), 3);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 3);
        assert!(picks.iter().all(|&i| i < 10));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        DetRng::new(0).sample_indices(2, 3);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn prop_unit_in_range(seed in 0u64..1000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..50 {
                let u = rng.unit();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn prop_below_in_range(seed in 0u64..1000, n in 1usize..10_000) {
            let mut rng = DetRng::new(seed);
            prop_assert!(rng.below(n) < n);
        }
    }
}
