//! Deterministic random streams.
//!
//! Every randomized component (placement, workload generation, failure
//! schedules) takes a [`DetRng`] forked from the cluster seed, so whole
//! experiments are reproducible and components do not perturb each other's
//! streams when the call order changes.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with labelled forking.
///
/// # Examples
///
/// ```
/// use dmem_sim::DetRng;
/// use rand::RngCore;
///
/// let mut root = DetRng::new(42);
/// let mut placement = root.fork("placement");
/// let mut workload = root.fork("workload");
/// // Streams are independent: same labels always yield the same streams.
/// let a: u64 = placement.next_u64();
/// let b: u64 = DetRng::new(42).fork("placement").next_u64();
/// assert_eq!(a, b);
/// # let _ = workload;
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child stream from a label.
    ///
    /// Forking depends only on the parent seed and the label — not on how
    /// much of the parent stream has been consumed — so adding draws in one
    /// component never shifts another component's stream.
    pub fn fork(&self, label: &str) -> DetRng {
        DetRng::new(splitmix(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// Derives an independent child stream from a label and an index,
    /// useful for per-node or per-server streams.
    pub fn fork_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(splitmix(
            self.seed ^ fnv1a(label.as_bytes()) ^ splitmix(index),
        ))
    }

    /// The per-shard stream for `shard` under `root_seed`.
    ///
    /// Each shard of a sharded simulation owns its own stream, derived by
    /// splitmixing the `(root_seed, shard_id)` pair — shards never share
    /// a stream, so one shard's draw count cannot perturb another's, and
    /// the stream does not depend on which worker thread runs the shard.
    /// The constant is ASCII `"shard_id"`, domain-separating these
    /// streams from [`fork`](DetRng::fork)/[`fork_indexed`](DetRng::fork_indexed)
    /// children of the same seed.
    pub fn for_shard(root_seed: u64, shard: u32) -> DetRng {
        DetRng::new(splitmix(
            splitmix(root_seed) ^ splitmix(0x7368_6172_645f_6964 ^ u64::from(shard)),
        ))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The splitmix64 finalizer used for all seed derivation in this crate.
///
/// Public so deterministic models (synthetic page contents, hash-derived
/// placement) can reuse the exact mixing function instead of cloning it.
pub fn splitmix64(x: u64) -> u64 {
    splitmix(x)
}

#[cfg(test)]
mod tests {
    use super::DetRng;
    use proptest::prelude::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_stable() {
        let root = DetRng::new(9);
        let mut f1 = root.fork("x");
        let mut f2 = DetRng::new(9).fork("x");
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let root = DetRng::new(9);
        assert_ne!(root.fork("a").next_u64(), root.fork("b").next_u64());
        assert_ne!(
            root.fork_indexed("n", 0).next_u64(),
            root.fork_indexed("n", 1).next_u64()
        );
    }

    #[test]
    fn fork_independent_of_consumption() {
        let mut a = DetRng::new(5);
        let b = DetRng::new(5);
        let _ = a.next_u64(); // consume from a only
        assert_eq!(a.fork("z").next_u64(), b.fork("z").next_u64());
    }

    #[test]
    fn for_shard_streams_are_decoupled() {
        // Distinct shards under one root get distinct streams; the same
        // (root, shard) pair always gets the same stream; and draining
        // one shard's stream does not move another's.
        let mut s0 = DetRng::for_shard(42, 0);
        let mut s1 = DetRng::for_shard(42, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
        for _ in 0..100 {
            s0.next_u64(); // drain shard 0 only
        }
        assert_eq!(
            s1.next_u64(),
            {
                let mut fresh = DetRng::for_shard(42, 1);
                fresh.next_u64();
                fresh.next_u64()
            },
            "shard 1's stream moved when shard 0 drew"
        );
    }

    /// Regression pin (ISSUE 6 satellite): the first 8 draws of each
    /// per-shard stream under root seed 42. A refactor that re-couples
    /// the shard streams (e.g. sharing one stream and interleaving
    /// draws) or changes the (root_seed, shard_id) splitmix derivation
    /// changes these constants and must be caught loudly.
    #[test]
    fn for_shard_first_draws_pinned() {
        let drawn: Vec<Vec<u64>> = (0..4u32)
            .map(|shard| {
                let mut rng = DetRng::for_shard(42, shard);
                (0..8).map(|_| rng.next_u64()).collect()
            })
            .collect();
        let pinned: Vec<Vec<u64>> = PINNED_SHARD_DRAWS.iter().map(|row| row.to_vec()).collect();
        assert_eq!(drawn, pinned, "per-shard RNG streams drifted from the pinned draws");
    }

    const PINNED_SHARD_DRAWS: [[u64; 8]; 4] = [
        [
            16829355891764180607,
            15882058413658173892,
            17820893164338299404,
            5144328381643623652,
            1364873874310483353,
            4366024183538727682,
            13056282451472324527,
            5559001033805495957,
        ],
        [
            8188818255236367244,
            15954405057447964089,
            3231769362227271657,
            12928073294796072163,
            7357096703657010488,
            15284408820465470867,
            8499492202528589663,
            11430423760590759341,
        ],
        [
            5260100335399750961,
            15377860381000620225,
            12927741521746117203,
            7548960515719739315,
            11668138992962888808,
            16860077118446976305,
            14508271676000935388,
            3045326611189230853,
        ],
        [
            18105703923453588421,
            3752928265252563280,
            9382703702612864087,
            13192417234672382593,
            3339302615710553660,
            13959045332006555282,
            13751189682195918058,
            16799462786900488378,
        ],
    ];

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::new(1);
        let picks = rng.sample_indices(10, 3);
        assert_eq!(picks.len(), 3);
        let set: HashSet<_> = picks.iter().collect();
        assert_eq!(set.len(), 3);
        assert!(picks.iter().all(|&i| i < 10));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        DetRng::new(0).sample_indices(2, 3);
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    proptest! {
        #[test]
        fn prop_unit_in_range(seed in 0u64..1000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..50 {
                let u = rng.unit();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }

        #[test]
        fn prop_below_in_range(seed in 0u64..1000, n in 1usize..10_000) {
            let mut rng = DetRng::new(seed);
            prop_assert!(rng.below(n) < n);
        }
    }
}
