//! A flight recorder: bounded rings of recent events and metric windows,
//! dumped as deterministic text when something goes wrong.
//!
//! The harnesses (chaos, rack quiescence asserts, tests) feed the
//! recorder cheap one-line notes as they execute — steps taken, faults
//! injected, sampled shard events — and the [`TelemetryHub`] feeds it
//! each captured [`MetricWindow`]. When an invariant fails or a panic
//! unwinds, [`FlightRecorder::dump`] renders the last
//! [`FlightRecorder::EVENT_CAPACITY`] events and
//! [`FlightRecorder::WINDOW_CAPACITY`] windows, so a failing seed ships
//! its own diagnosis instead of requiring a re-run with full tracing.
//!
//! Everything the recorder stores is derived from virtual time and seeded
//! state, so a dump is byte-identical across reruns, `--jobs` levels and
//! worker counts for the same failure.
//!
//! [`TelemetryHub`]: crate::timeseries::TelemetryHub
//! [`MetricWindow`]: crate::timeseries::MetricWindow

use crate::timeseries::MetricWindow;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One recorded note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual time of the event, in nanoseconds.
    pub at_ns: u64,
    /// Short static label (`"step"`, `"inject"`, `"span"`, ...).
    pub kind: &'static str,
    /// One-line detail.
    pub detail: String,
}

/// Bounded rings of recent events and metric windows with a
/// deterministic text dump.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    events: VecDeque<FlightEvent>,
    windows: VecDeque<String>,
    dropped_events: u64,
    dropped_windows: u64,
}

impl FlightRecorder {
    /// Events kept in the ring; older notes fall off the front.
    pub const EVENT_CAPACITY: usize = 64;
    /// Metric-window briefs kept in the ring.
    pub const WINDOW_CAPACITY: usize = 8;

    /// Creates an empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Appends one note, evicting the oldest past capacity.
    pub fn note(&mut self, at_ns: u64, kind: &'static str, detail: String) {
        if self.events.len() == Self::EVENT_CAPACITY {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(FlightEvent { at_ns, kind, detail });
    }

    /// Appends one captured metric window's brief rendering.
    pub fn push_window(&mut self, window: &MetricWindow) {
        if self.windows.len() == Self::WINDOW_CAPACITY {
            self.windows.pop_front();
            self.dropped_windows += 1;
        }
        self.windows.push_back(window.brief());
    }

    /// Number of notes currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.windows.is_empty()
    }

    /// Renders the deterministic dump: a reason header, the retained
    /// metric windows (oldest first), then the retained events.
    pub fn dump(&self, reason: &str) -> String {
        let mut out = String::new();
        writeln!(out, "=== flight recorder dump: {reason} ===").unwrap();
        writeln!(
            out,
            "events: {} kept, {} dropped; windows: {} kept, {} dropped",
            self.events.len(),
            self.dropped_events,
            self.windows.len(),
            self.dropped_windows
        )
        .unwrap();
        if !self.windows.is_empty() {
            writeln!(out, "--- last {} metric windows ---", self.windows.len()).unwrap();
            for w in &self.windows {
                writeln!(out, "  {w}").unwrap();
            }
        }
        if !self.events.is_empty() {
            writeln!(out, "--- last {} events ---", self.events.len()).unwrap();
            for e in &self.events {
                writeln!(out, "  t={}ns {:>8} {}", e.at_ns, e.kind, e.detail).unwrap();
            }
        }
        writeln!(out, "=== end flight recorder dump ===").unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fr = FlightRecorder::new();
        for i in 0..(FlightRecorder::EVENT_CAPACITY as u64 + 10) {
            fr.note(i, "step", format!("event {i}"));
        }
        assert_eq!(fr.len(), FlightRecorder::EVENT_CAPACITY);
        let dump = fr.dump("test");
        assert!(dump.contains("10 dropped"), "{dump}");
        assert!(!dump.contains("event 9\n"), "oldest should be gone: {dump}");
        assert!(dump.contains(&format!(
            "event {}",
            FlightRecorder::EVENT_CAPACITY as u64 + 9
        )));
    }

    #[test]
    fn dump_is_deterministic_text() {
        let build = || {
            let mut fr = FlightRecorder::new();
            fr.note(5, "inject", "drop verb".into());
            fr.note(9, "step", "Get k3".into());
            fr.dump("invariant X")
        };
        assert_eq!(build(), build());
        let dump = build();
        assert!(dump.starts_with("=== flight recorder dump: invariant X ==="));
        assert!(dump.ends_with("=== end flight recorder dump ===\n"));
        assert!(dump.contains("t=5ns"));
    }

    #[test]
    fn empty_dump_still_renders_header() {
        let fr = FlightRecorder::new();
        assert!(fr.is_empty());
        let dump = fr.dump("nothing");
        assert!(dump.contains("0 kept"));
    }
}
