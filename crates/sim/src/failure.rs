//! Scheduled failure injection.
//!
//! The paper's §IV-D enumerates the failure scenarios a disaggregated
//! memory system must mask: local/remote node crashes, virtual-server
//! crashes and network-link failures. The injector holds a virtual-time
//! schedule of such events; mechanism code queries it before every
//! operation that touches a node or link.

use crate::clock::SimClock;
use crate::time::SimInstant;
use dmem_types::{NodeId, ServerId};
use parking_lot::RwLock;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A single scheduled failure or recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureEvent {
    /// The node crashes (all its servers and donated memory vanish).
    NodeDown(NodeId),
    /// The node recovers (rejoins empty).
    NodeUp(NodeId),
    /// The bidirectional link between two nodes fails.
    LinkDown(NodeId, NodeId),
    /// The link recovers.
    LinkUp(NodeId, NodeId),
    /// A single virtual server crashes.
    ServerDown(ServerId),
    /// The virtual server restarts.
    ServerUp(ServerId),
}

impl fmt::Display for FailureEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureEvent::NodeDown(n) => write!(f, "{n} down"),
            FailureEvent::NodeUp(n) => write!(f, "{n} up"),
            FailureEvent::LinkDown(a, b) => write!(f, "link {a}-{b} down"),
            FailureEvent::LinkUp(a, b) => write!(f, "link {a}-{b} up"),
            FailureEvent::ServerDown(s) => write!(f, "{s} down"),
            FailureEvent::ServerUp(s) => write!(f, "{s} up"),
        }
    }
}

#[derive(Debug, Default)]
struct State {
    /// Events not yet applied, sorted ascending by time.
    pending: Vec<(SimInstant, FailureEvent)>,
    /// Currently failed entities.
    down_nodes: HashSet<NodeId>,
    down_servers: HashSet<ServerId>,
    down_links: HashSet<(NodeId, NodeId)>,
}

impl State {
    fn apply_due(&mut self, now: SimInstant) {
        let mut i = 0;
        while i < self.pending.len() && self.pending[i].0 <= now {
            i += 1;
        }
        for (_, event) in self.pending.drain(..i) {
            match event {
                FailureEvent::NodeDown(n) => {
                    self.down_nodes.insert(n);
                }
                FailureEvent::NodeUp(n) => {
                    self.down_nodes.remove(&n);
                }
                FailureEvent::LinkDown(a, b) => {
                    self.down_links.insert(ordered(a, b));
                }
                FailureEvent::LinkUp(a, b) => {
                    self.down_links.remove(&ordered(a, b));
                }
                FailureEvent::ServerDown(s) => {
                    self.down_servers.insert(s);
                }
                FailureEvent::ServerUp(s) => {
                    self.down_servers.remove(&s);
                }
            }
        }
    }
}

fn ordered(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Thread-safe failure injector driven by the virtual clock.
///
/// # Examples
///
/// ```
/// use dmem_sim::{FailureEvent, FailureInjector, SimClock, SimDuration, SimInstant};
/// use dmem_types::NodeId;
///
/// let clock = SimClock::new();
/// let injector = FailureInjector::new(clock.clone());
/// injector.schedule(SimInstant::from_nanos(1_000), FailureEvent::NodeDown(NodeId::new(2)));
///
/// assert!(injector.is_node_up(NodeId::new(2)));
/// clock.advance(SimDuration::from_micros(5));
/// assert!(!injector.is_node_up(NodeId::new(2)));
/// ```
#[derive(Clone)]
pub struct FailureInjector {
    clock: SimClock,
    state: Arc<RwLock<State>>,
}

impl FailureInjector {
    /// Creates an injector with an empty schedule.
    pub fn new(clock: SimClock) -> Self {
        FailureInjector {
            clock,
            state: Arc::new(RwLock::new(State::default())),
        }
    }

    /// Schedules `event` to take effect at virtual time `at`.
    ///
    /// Events scheduled at or before the current time take effect on the
    /// next query.
    pub fn schedule(&self, at: SimInstant, event: FailureEvent) {
        let mut state = self.state.write();
        let pos = state.pending.partition_point(|(t, _)| *t <= at);
        state.pending.insert(pos, (at, event));
    }

    /// Applies `event` immediately.
    pub fn inject_now(&self, event: FailureEvent) {
        self.schedule(self.clock.now(), event);
        self.state.write().apply_due(self.clock.now());
    }

    /// `true` if the node is currently up.
    pub fn is_node_up(&self, node: NodeId) -> bool {
        let mut state = self.state.write();
        state.apply_due(self.clock.now());
        !state.down_nodes.contains(&node)
    }

    /// `true` if the virtual server (and its hosting node) is currently up.
    pub fn is_server_up(&self, server: ServerId) -> bool {
        let mut state = self.state.write();
        state.apply_due(self.clock.now());
        !state.down_servers.contains(&server) && !state.down_nodes.contains(&server.node())
    }

    /// `true` if both endpoints and the link between them are up.
    pub fn is_link_up(&self, a: NodeId, b: NodeId) -> bool {
        let mut state = self.state.write();
        state.apply_due(self.clock.now());
        !state.down_links.contains(&ordered(a, b))
            && !state.down_nodes.contains(&a)
            && !state.down_nodes.contains(&b)
    }

    /// Number of nodes currently marked down.
    pub fn down_node_count(&self) -> usize {
        let mut state = self.state.write();
        state.apply_due(self.clock.now());
        state.down_nodes.len()
    }
}

impl fmt::Debug for FailureInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.read();
        f.debug_struct("FailureInjector")
            .field("pending", &state.pending.len())
            .field("down_nodes", &state.down_nodes.len())
            .field("down_links", &state.down_links.len())
            .field("down_servers", &state.down_servers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn setup() -> (SimClock, FailureInjector) {
        let clock = SimClock::new();
        let injector = FailureInjector::new(clock.clone());
        (clock, injector)
    }

    #[test]
    fn everything_up_initially() {
        let (_, inj) = setup();
        assert!(inj.is_node_up(NodeId::new(0)));
        assert!(inj.is_link_up(NodeId::new(0), NodeId::new(1)));
        assert!(inj.is_server_up(ServerId::new(NodeId::new(0), 0)));
        assert_eq!(inj.down_node_count(), 0);
    }

    #[test]
    fn scheduled_failure_fires_at_time() {
        let (clock, inj) = setup();
        let n = NodeId::new(1);
        inj.schedule(SimInstant::from_nanos(100), FailureEvent::NodeDown(n));
        assert!(inj.is_node_up(n), "future failure must not apply early");
        clock.advance(SimDuration::from_nanos(100));
        assert!(!inj.is_node_up(n));
    }

    #[test]
    fn recovery_restores_node() {
        let (clock, inj) = setup();
        let n = NodeId::new(2);
        inj.schedule(SimInstant::from_nanos(10), FailureEvent::NodeDown(n));
        inj.schedule(SimInstant::from_nanos(20), FailureEvent::NodeUp(n));
        clock.advance(SimDuration::from_nanos(15));
        assert!(!inj.is_node_up(n));
        clock.advance(SimDuration::from_nanos(10));
        assert!(inj.is_node_up(n));
    }

    #[test]
    fn link_failures_are_symmetric() {
        let (_, inj) = setup();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        inj.inject_now(FailureEvent::LinkDown(b, a));
        assert!(!inj.is_link_up(a, b));
        assert!(!inj.is_link_up(b, a));
        // Nodes themselves remain up.
        assert!(inj.is_node_up(a) && inj.is_node_up(b));
        inj.inject_now(FailureEvent::LinkUp(a, b));
        assert!(inj.is_link_up(b, a));
    }

    #[test]
    fn node_down_implies_links_and_servers_down() {
        let (_, inj) = setup();
        let n = NodeId::new(3);
        inj.inject_now(FailureEvent::NodeDown(n));
        assert!(!inj.is_link_up(n, NodeId::new(4)));
        assert!(!inj.is_server_up(ServerId::new(n, 0)));
        assert_eq!(inj.down_node_count(), 1);
    }

    #[test]
    fn server_failure_is_isolated() {
        let (_, inj) = setup();
        let s = ServerId::new(NodeId::new(5), 1);
        inj.inject_now(FailureEvent::ServerDown(s));
        assert!(!inj.is_server_up(s));
        assert!(inj.is_server_up(ServerId::new(NodeId::new(5), 0)));
        assert!(inj.is_node_up(NodeId::new(5)));
    }

    #[test]
    fn out_of_order_scheduling_applies_in_time_order() {
        let (clock, inj) = setup();
        let n = NodeId::new(6);
        // Schedule recovery before failure, at later time.
        inj.schedule(SimInstant::from_nanos(200), FailureEvent::NodeUp(n));
        inj.schedule(SimInstant::from_nanos(100), FailureEvent::NodeDown(n));
        clock.advance(SimDuration::from_nanos(150));
        assert!(!inj.is_node_up(n));
        clock.advance(SimDuration::from_nanos(100));
        assert!(inj.is_node_up(n));
    }
}
