//! Lightweight metrics: counters, gauges and log-bucket histograms.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move in both directions.
#[derive(Debug, Default, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A power-of-two-bucket histogram for latency-style values.
///
/// Bucket edges are pinned as follows: bucket 0 holds `{0, 1}` and
/// reports upper bound `1`; bucket `k ≥ 1` holds the half-open-below
/// range `(2^(k-1), 2^k]` and reports upper bound `2^k`. In particular a
/// value of exactly `2^k` lands in bucket `k`, so `quantile` never
/// over-reports an exact power of two by a whole bucket. 65 buckets cover
/// the full `u64` range. Memory is constant and recording is lock-free.
///
/// # Examples
///
/// ```
/// use dmem_sim::Histogram;
///
/// let h = Histogram::new();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.mean() > 300.0 && h.mean() < 400.0);
/// assert!(h.quantile(0.5) >= 200);
///
/// // Exact powers of two report their own value as the bucket bound.
/// let p = Histogram::new();
/// p.record(1024);
/// assert_eq!(p.quantile(0.5), 1024);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; 65]>,
    sum: Arc<AtomicU64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }

    /// `⌈log2(v)⌉` with `{0, 1} → 0`: bucket `k` covers `(2^(k-1), 2^k]`,
    /// so exact powers of two stay in the bucket whose upper bound they
    /// equal. (The previous `64 - v.leading_zeros()` indexing pushed
    /// `2^k` into bucket `k + 1`, inflating reported quantiles of
    /// power-of-two-heavy data by up to 2×.)
    pub(crate) fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            64 - (value - 1).leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds externally accumulated bucket counts (and their value sum)
    /// into this histogram — the bulk path used when per-shard
    /// [`LocalMetrics`] buffers publish into the shared registry.
    pub fn merge_counts(&self, counts: &[u64; 65], sum: u64) {
        for (bucket, &n) in self.buckets.iter().zip(counts) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of observations; zero when empty.
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// containing the q-th observation (`1` for bucket 0, `2^i` for
    /// bucket `i ≥ 1` — see the type docs for the exact edges). Zero when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// Upper bound of the highest non-empty bucket (an upper bound on the
    /// maximum observation). Zero when empty.
    pub fn max_bound(&self) -> u64 {
        for i in (0..self.buckets.len()).rev() {
            if self.buckets[i].load(Ordering::Relaxed) > 0 {
                return if i == 0 { 1 } else { 1u64 << i.min(63) };
            }
        }
        0
    }

    /// Raw per-bucket observation counts (see the type docs for edges).
    ///
    /// Lets a caller keep a previous snapshot and diff against the current
    /// one to compute *windowed* quantiles — e.g. the p99 of only the
    /// observations recorded since the last controller tick — via
    /// [`Histogram::quantile_of_counts`].
    pub fn bucket_counts(&self) -> [u64; 65] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Quantile over an externally supplied bucket-count array (typically
    /// the difference of two [`Histogram::bucket_counts`] snapshots).
    /// Returns the same bucket upper bounds as [`Histogram::quantile`];
    /// zero when the counts are all zero.
    pub fn quantile_of_counts(counts: &[u64; 65], q: f64) -> u64 {
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return 0;
        }
        let target = ((count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }

    /// Upper bound of the highest non-empty bucket of an externally
    /// supplied count array (same semantics as [`Histogram::max_bound`]);
    /// zero when all counts are zero.
    pub fn max_bound_of_counts(counts: &[u64; 65]) -> u64 {
        for i in (0..counts.len()).rev() {
            if counts[i] > 0 {
                return if i == 0 { 1 } else { 1u64 << i.min(63) };
            }
        }
        0
    }

    /// Number of observations in `counts` that are certainly above
    /// `threshold`: the total of every bucket whose *lower* bound is at
    /// or above it. Observations sharing the threshold's own bucket are
    /// not counted, so the bound is conservative — the burn-rate path
    /// picks SLOs on bucket edges to make it exact.
    pub fn count_over_counts(counts: &[u64; 65], threshold: u64) -> u64 {
        let first = (Self::bucket_index(threshold) + 1).min(counts.len());
        counts[first..].iter().sum()
    }

    /// Compact summary for dumps and reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean: self.mean(),
            p50: self.quantile(0.5),
            p99: self.quantile(0.99),
            max: self.max_bound(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean observation.
    pub mean: f64,
    /// Bucket upper bound of the median.
    pub p50: u64,
    /// Bucket upper bound of the 99th percentile.
    pub p99: u64,
    /// Bucket upper bound of the maximum.
    pub max: u64,
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} mean={:.1} p50={} p99={} max={}",
            self.count, self.mean, self.p50, self.p99, self.max
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A named registry of metrics, shared across components of one cluster.
///
/// Keys are hierarchical strings such as `"fastswap.swap_out.remote"`.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: Arc<RwLock<BTreeMap<String, Counter>>>,
    gauges: Arc<RwLock<BTreeMap<String, Gauge>>>,
    histograms: Arc<RwLock<BTreeMap<String, Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.histograms.read().get(name) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauge values, sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(String, i64)> {
        self.gauges
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all histogram summaries, sorted by name.
    pub fn histogram_snapshot(&self) -> Vec<(String, HistogramSummary)> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.summary()))
            .collect()
    }

    /// Snapshot of every histogram's raw bucket counts, sorted by name —
    /// the windowed-sampling path: the timeline sampler diffs two of
    /// these to get counts for just the observations inside one window.
    pub fn bucket_snapshot(&self) -> Vec<(String, [u64; 65])> {
        self.histograms
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.bucket_counts()))
            .collect()
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in self.counter_snapshot() {
            writeln!(f, "{name} = {value}")?;
        }
        for (name, value) in self.gauge_snapshot() {
            writeln!(f, "{name} = {value}")?;
        }
        for (name, summary) in self.histogram_snapshot() {
            writeln!(f, "{name} = {summary}")?;
        }
        Ok(())
    }
}

/// An unsynchronized per-shard metrics buffer.
///
/// Shards of the sharded engine record into a private `LocalMetrics`
/// (plain integer adds, no atomics, no locks) and the coordinator merges
/// the buffers in shard order after the run — so the published totals,
/// like everything else in the engine, are independent of the worker
/// count. Name iteration is `BTreeMap`-ordered, hence deterministic.
///
/// # Examples
///
/// ```
/// use dmem_sim::LocalMetrics;
///
/// let mut a = LocalMetrics::new();
/// a.add("reads", 2);
/// a.record("lat_ns", 4096);
/// let mut b = LocalMetrics::new();
/// b.add("reads", 3);
/// b.merge_from(&a);
/// assert_eq!(b.counter("reads"), 5);
/// assert_eq!(b.quantile("lat_ns", 0.5), 4096);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalMetrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, LocalHistogram>,
}

#[derive(Debug, Clone)]
struct LocalHistogram {
    buckets: Box<[u64; 65]>,
    sum: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        LocalHistogram {
            buckets: Box::new([0; 65]),
            sum: 0,
        }
    }
}

impl LocalMetrics {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        LocalMetrics::default()
    }

    /// Adds `n` to the counter named `name`, creating it on first use.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_owned(), n);
        }
    }

    /// Adds one to the counter named `name`.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Records one observation into the histogram named `name`, using
    /// the same bucket edges as the shared [`Histogram`].
    pub fn record(&mut self, name: &str, value: u64) {
        let h = self.histograms.entry(name.to_owned()).or_default();
        h.buckets[Histogram::bucket_index(value)] += 1;
        h.sum += value;
    }

    /// Current value of the counter named `name` (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Observation count of the histogram named `name` (zero if absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .get(name)
            .map(|h| h.buckets.iter().sum())
            .unwrap_or(0)
    }

    /// Quantile of the histogram named `name`, with [`Histogram`]'s
    /// bucket-upper-bound semantics; zero if absent or empty.
    pub fn quantile(&self, name: &str, q: f64) -> u64 {
        self.histograms
            .get(name)
            .map(|h| Histogram::quantile_of_counts(&h.buckets, q))
            .unwrap_or(0)
    }

    /// Mean of the histogram named `name`; zero if absent or empty.
    pub fn histogram_mean(&self, name: &str) -> f64 {
        let count = self.histogram_count(name);
        if count == 0 {
            return 0.0;
        }
        self.histograms[name].sum as f64 / count as f64
    }

    /// Folds `other` into this buffer. Merging is commutative and
    /// associative, so any deterministic merge order yields the same
    /// totals.
    pub fn merge_from(&mut self, other: &LocalMetrics) {
        for (name, &n) in &other.counters {
            self.add(name, n);
        }
        for (name, theirs) in &other.histograms {
            let ours = self.histograms.entry(name.clone()).or_default();
            for (a, b) in ours.buckets.iter_mut().zip(theirs.buckets.iter()) {
                *a += b;
            }
            ours.sum += theirs.sum;
        }
    }

    /// Publishes the buffered values into a shared registry: counters
    /// add their totals, histograms bulk-merge their buckets.
    pub fn publish(&self, registry: &MetricsRegistry) {
        for (name, &n) in &self.counters {
            if n > 0 {
                registry.counter(name).add(n);
            }
        }
        for (name, h) in &self.histograms {
            registry.histogram(name).merge_counts(&h.buckets, h.sum);
        }
    }

    /// Snapshot of all counter values, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// `true` when nothing has been recorded (no counter increments, no
    /// histogram observations).
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self
                .histograms
                .values()
                .all(|h| h.buckets.iter().all(|&b| b == 0))
    }

    /// The increments recorded since `prev` was cloned from this buffer:
    /// counter deltas and histogram bucket deltas, with untouched names
    /// omitted entirely. `prev` must be an earlier snapshot of the same
    /// buffer — counters and buckets only grow, so the subtraction never
    /// wraps.
    pub fn delta_since(&self, prev: &LocalMetrics) -> LocalMetrics {
        let mut out = LocalMetrics::new();
        for (name, &now) in &self.counters {
            let before = prev.counter(name);
            if now > before {
                out.counters.insert(name.clone(), now - before);
            }
        }
        for (name, h) in &self.histograms {
            let before = prev.histograms.get(name);
            let mut delta = LocalHistogram::default();
            let mut any = false;
            for i in 0..65 {
                let b = before.map_or(0, |p| p.buckets[i]);
                delta.buckets[i] = h.buckets[i] - b;
                any |= delta.buckets[i] != 0;
            }
            if any {
                delta.sum = h.sum - before.map_or(0, |p| p.sum);
                out.histograms.insert(name.clone(), delta);
            }
        }
        out
    }

    /// Visits every histogram as `(name, bucket_counts)` in name order —
    /// the export path for callers that cannot see the private buckets.
    pub fn for_each_histogram(&self, mut f: impl FnMut(&str, &[u64; 65])) {
        for (name, h) in &self.histograms {
            f(name, &h.buckets);
        }
    }
}

/// The `alloc.*` counter family for the object-granularity allocator:
/// access-amplification bytes, fragmentation gauges and per-verb op
/// counts.
///
/// Follows the same zero-cost-when-disabled contract the trace and
/// telemetry layers honour: until [`AllocTelemetry::arm`] registers the
/// family on a [`MetricsRegistry`], every `note_*` call is exactly one
/// relaxed atomic load and an early return — no allocation, no lock,
/// no registry traffic.
#[derive(Debug, Default)]
pub struct AllocTelemetry {
    armed: std::sync::atomic::AtomicBool,
    slots: std::sync::OnceLock<AllocCounterSet>,
}

/// Registered handles of the `alloc.*` family (see [`AllocTelemetry`]).
#[derive(Debug, Clone)]
pub struct AllocCounterSet {
    /// `alloc.fetched_bytes` — bytes moved through the cluster by heap ops.
    pub fetched_bytes: Counter,
    /// `alloc.useful_bytes` — caller-useful bytes of those ops.
    pub useful_bytes: Counter,
    /// `alloc.amplification_bytes` — the waste: fetched minus useful.
    pub amplification_bytes: Counter,
    /// `alloc.ops.alloc`
    pub alloc_ops: Counter,
    /// `alloc.ops.free`
    pub free_ops: Counter,
    /// `alloc.ops.get`
    pub get_ops: Counter,
    /// `alloc.ops.update`
    pub update_ops: Counter,
    /// `alloc.live_bytes` — caller-requested bytes across live objects.
    pub live_bytes: Gauge,
    /// `alloc.slot_bytes` — slot capacity across live objects.
    pub slot_bytes: Gauge,
    /// `alloc.reserved_bytes` — address space claimed from the break.
    pub reserved_bytes: Gauge,
    /// `alloc.fragmentation_bp` — total fragmentation in basis points
    /// (integer math, so timelines stay byte-deterministic).
    pub fragmentation_bp: Gauge,
}

impl AllocCounterSet {
    fn register(registry: &MetricsRegistry) -> Self {
        AllocCounterSet {
            fetched_bytes: registry.counter("alloc.fetched_bytes"),
            useful_bytes: registry.counter("alloc.useful_bytes"),
            amplification_bytes: registry.counter("alloc.amplification_bytes"),
            alloc_ops: registry.counter("alloc.ops.alloc"),
            free_ops: registry.counter("alloc.ops.free"),
            get_ops: registry.counter("alloc.ops.get"),
            update_ops: registry.counter("alloc.ops.update"),
            live_bytes: registry.gauge("alloc.live_bytes"),
            slot_bytes: registry.gauge("alloc.slot_bytes"),
            reserved_bytes: registry.gauge("alloc.reserved_bytes"),
            fragmentation_bp: registry.gauge("alloc.fragmentation_bp"),
        }
    }
}

impl AllocTelemetry {
    /// Registers the family on `registry` and arms the fast-path gate.
    /// Re-arming is a no-op (the first registry wins).
    pub fn arm(&self, registry: &MetricsRegistry) {
        self.slots.get_or_init(|| AllocCounterSet::register(registry));
        self.armed
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether the family is live. The disarmed path is one relaxed
    /// atomic load — callers may branch on this before doing any work.
    pub fn is_armed(&self) -> bool {
        self.armed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Records one heap op: `kind` 0=alloc 1=free 2=get 3=update,
    /// `fetched` bytes moved over the backing store, `useful` bytes the
    /// caller asked for.
    pub fn note_transfer(&self, kind: u8, fetched: u64, useful: u64) {
        if !self.is_armed() {
            return;
        }
        let Some(slots) = self.slots.get() else { return };
        slots.fetched_bytes.add(fetched);
        slots.useful_bytes.add(useful);
        slots.amplification_bytes.add(fetched.saturating_sub(useful));
        match kind {
            0 => slots.alloc_ops.inc(),
            1 => slots.free_ops.inc(),
            2 => slots.get_ops.inc(),
            _ => slots.update_ops.inc(),
        }
    }

    /// Updates the footprint gauges and the derived fragmentation
    /// basis-point gauge.
    pub fn note_footprint(&self, live_bytes: u64, slot_bytes: u64, reserved_bytes: u64) {
        if !self.is_armed() {
            return;
        }
        let Some(slots) = self.slots.get() else { return };
        slots.live_bytes.set(live_bytes as i64);
        slots.slot_bytes.set(slot_bytes as i64);
        slots.reserved_bytes.set(reserved_bytes as i64);
        let frag_bp = if reserved_bytes == 0 {
            0
        } else {
            (10_000u128 - (10_000u128 * u128::from(live_bytes) / u128::from(reserved_bytes)))
                as i64
        };
        slots.fragmentation_bp.set(frag_bp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn local_metrics_match_shared_semantics() {
        // Recording the same values through a LocalMetrics buffer and
        // publishing must be indistinguishable from recording directly.
        let shared = MetricsRegistry::new();
        let mut local = LocalMetrics::new();
        let direct = MetricsRegistry::new();
        for v in [1u64, 7, 100, 1024, 1 << 40] {
            local.record("lat", v);
            direct.histogram("lat").record(v);
            local.inc("ops");
            direct.counter("ops").inc();
        }
        local.publish(&shared);
        assert_eq!(shared.counter_snapshot(), direct.counter_snapshot());
        let (a, b) = (shared.histogram("lat"), direct.histogram("lat"));
        assert_eq!(a.bucket_counts(), b.bucket_counts());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn local_metrics_merge_is_order_independent() {
        let mut a = LocalMetrics::new();
        let mut b = LocalMetrics::new();
        a.add("x", 2);
        a.record("h", 3);
        b.add("x", 5);
        b.add("y", 1);
        b.record("h", 4000);
        let mut ab = LocalMetrics::new();
        ab.merge_from(&a);
        ab.merge_from(&b);
        let mut ba = LocalMetrics::new();
        ba.merge_from(&b);
        ba.merge_from(&a);
        assert_eq!(ab.counter_snapshot(), ba.counter_snapshot());
        assert_eq!(ab.counter("x"), 7);
        assert_eq!(ab.histogram_count("h"), 2);
        assert_eq!(ab.quantile("h", 1.0), ba.quantile("h", 1.0));
        assert!(ab.histogram_mean("h") > 0.0);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn histogram_zero_and_one() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!((256..=1024).contains(&p50), "p50 bucket was {p50}");
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max_bound(), 0);
    }

    /// Pins the bucket-edge semantics: bucket k covers (2^(k-1), 2^k],
    /// so a value of exactly 2^k reports 2^k — not 2^(k+1) — as its
    /// quantile bound.
    #[test]
    fn histogram_exact_powers_of_two_stay_in_their_bucket() {
        for k in 1..=62u32 {
            let v = 1u64 << k;
            assert_eq!(Histogram::bucket_index(v), k as usize, "2^{k}");
            assert_eq!(Histogram::bucket_index(v + 1), k as usize + 1, "2^{k}+1");
            let h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(0.5), v, "quantile of single 2^{k}");
            assert_eq!(h.max_bound(), v);
        }
        // Bucket 0 holds {0, 1} and reports upper bound 1.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.max_bound(), 1);
    }

    #[test]
    fn histogram_windowed_quantile_from_count_diffs() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let before = h.bucket_counts();
        // Window contains only small observations; overall p99 stays 1024.
        for _ in 0..100 {
            h.record(4);
        }
        let after = h.bucket_counts();
        let mut window = [0u64; 65];
        for i in 0..65 {
            window[i] = after[i] - before[i];
        }
        assert_eq!(window.iter().sum::<u64>(), 100);
        assert_eq!(Histogram::quantile_of_counts(&window, 0.99), 4);
        assert_eq!(h.quantile(0.99), 1024);
        assert_eq!(Histogram::quantile_of_counts(&[0u64; 65], 0.5), 0);
    }

    #[test]
    fn histogram_summary_reports_quantiles() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert_eq!(s.p50, 512);
        assert_eq!(s.p99, 1024);
        assert_eq!(s.max, 1024);
        assert!(s.to_string().contains("p99=1024"));
    }

    #[test]
    fn registry_returns_same_metric_for_same_name() {
        let r = MetricsRegistry::new();
        r.counter("a.b").inc();
        r.counter("a.b").inc();
        assert_eq!(r.counter("a.b").get(), 2);
        assert_eq!(r.counter("other").get(), 0);
    }

    #[test]
    fn registry_snapshot_sorted() {
        let r = MetricsRegistry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let snap = r.counter_snapshot();
        assert_eq!(snap[0].0, "a");
        assert_eq!(snap[1].0, "z");
        assert!(!r.to_string().is_empty());
    }

    #[test]
    fn registry_display_includes_histograms() {
        let r = MetricsRegistry::new();
        r.histogram("net.write.ns").record(300);
        r.histogram("net.write.ns").record(900);
        let snap = r.histogram_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "net.write.ns");
        assert_eq!(snap[0].1.count, 2);
        let dump = r.to_string();
        assert!(
            dump.contains("net.write.ns = count=2"),
            "histograms missing from dump: {dump}"
        );
    }

    proptest! {
        #[test]
        fn prop_histogram_mean_bounded(values in proptest::collection::vec(0u64..1 << 30, 1..100)) {
            let h = Histogram::new();
            let (mut min, mut max) = (u64::MAX, 0);
            for &v in &values {
                h.record(v);
                min = min.min(v);
                max = max.max(v);
            }
            let mean = h.mean();
            prop_assert!(mean >= min as f64 && mean <= max as f64);
        }

        #[test]
        fn prop_bucket_monotone(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Histogram::bucket_index(lo) <= Histogram::bucket_index(hi));
        }

        /// `merge_counts` is commutative and associative — the timeline
        /// merge folds per-shard windows in `(time, shard)` order and
        /// leans on both properties for worker-count independence.
        #[test]
        fn prop_merge_counts_commutative_associative(
            xs in proptest::collection::vec(0u64..1 << 48, 0..60),
            ys in proptest::collection::vec(0u64..1 << 48, 0..60),
            zs in proptest::collection::vec(0u64..1 << 48, 0..60),
        ) {
            let counts_of = |vals: &[u64]| {
                let h = Histogram::new();
                for &v in vals {
                    h.record(v);
                }
                (h.bucket_counts(), h.sum())
            };
            let (cx, sx) = counts_of(&xs);
            let (cy, sy) = counts_of(&ys);
            let (cz, sz) = counts_of(&zs);
            let merge = |parts: &[(&[u64; 65], u64)]| {
                let h = Histogram::new();
                for &(c, s) in parts {
                    h.merge_counts(c, s);
                }
                (h.bucket_counts(), h.sum())
            };
            // Commutative: x⊕y == y⊕x.
            prop_assert_eq!(merge(&[(&cx, sx), (&cy, sy)]), merge(&[(&cy, sy), (&cx, sx)]));
            // Associative: (x⊕y)⊕z == x⊕(y⊕z).
            let (cxy, sxy) = merge(&[(&cx, sx), (&cy, sy)]);
            let (cyz, syz) = merge(&[(&cy, sy), (&cz, sz)]);
            prop_assert_eq!(merge(&[(&cxy, sxy), (&cz, sz)]), merge(&[(&cx, sx), (&cyz, syz)]));
        }

        /// Recording two streams separately and bulk-merging the bucket
        /// counts must be indistinguishable — buckets, quantiles, summary
        /// — from recording every value into one histogram directly.
        #[test]
        fn prop_merge_counts_quantile_consistent(
            xs in proptest::collection::vec(0u64..1 << 48, 1..80),
            ys in proptest::collection::vec(0u64..1 << 48, 1..80),
            q_pct in 0u32..=100,
        ) {
            let (ha, hb, direct) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &xs {
                ha.record(v);
                direct.record(v);
            }
            for &v in &ys {
                hb.record(v);
                direct.record(v);
            }
            let merged = Histogram::new();
            merged.merge_counts(&ha.bucket_counts(), ha.sum());
            merged.merge_counts(&hb.bucket_counts(), hb.sum());
            let q = f64::from(q_pct) / 100.0;
            prop_assert_eq!(merged.bucket_counts(), direct.bucket_counts());
            prop_assert_eq!(merged.sum(), direct.sum());
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
            prop_assert_eq!(merged.summary(), direct.summary());
            prop_assert_eq!(
                Histogram::max_bound_of_counts(&merged.bucket_counts()),
                direct.max_bound()
            );
        }
    }
}
