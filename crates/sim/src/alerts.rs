//! A deterministic alerting engine over metric windows.
//!
//! Rules are declarative and evaluated once per captured
//! [`MetricWindow`] (i.e. on maintenance ticks), in rule order, with
//! pure integer math — so the alert log is a function of the seed alone
//! and byte-identical across reruns, `--jobs` levels and shard worker
//! counts. Two rule shapes cover the stack's failure smells:
//!
//! * [`AlertRule::BurnRate`] — the classic multi-window SLO burn rate:
//!   the fraction of a histogram's observations over an SLO bound,
//!   measured over a short *fast* window span and a longer *slow* span;
//!   the rule fires when **both** exceed their thresholds (the fast
//!   window catches the onset, the slow window suppresses blips) and
//!   resolves when the fast window recovers.
//! * [`AlertRule::CounterStorm`] — a counter's delta summed over the
//!   last N windows crossing a threshold (verb-retry storms, suspect
//!   churn, KV spill thrash).
//!
//! Each edge appends one line to an ordered log; [`AlertEngine::digest`]
//! folds the log through FNV-1a exactly like the QoS decision log, so
//! harnesses can pin byte-identity with one short string.
//!
//! [`MetricWindow`]: crate::timeseries::MetricWindow

use crate::timeseries::MetricWindow;
use std::collections::VecDeque;
use std::fmt;

/// Burn fractions are integer basis points (1/100 of a percent), so
/// threshold comparisons never touch floating point.
pub const BASIS_POINTS: u64 = 10_000;

/// One declarative alert rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertRule {
    /// Multi-window SLO burn rate over a histogram.
    BurnRate {
        /// Alert name, used in log lines.
        name: String,
        /// Histogram metric the rule watches.
        histogram: String,
        /// SLO bound in nanoseconds; observations above it "burn".
        slo_ns: u64,
        /// Number of recent windows in the fast span (≥ 1).
        fast_windows: usize,
        /// Number of recent windows in the slow span (≥ fast).
        slow_windows: usize,
        /// Fast-span burn fraction threshold, in basis points.
        fast_burn_bp: u64,
        /// Slow-span burn fraction threshold, in basis points.
        slow_burn_bp: u64,
    },
    /// A counter's delta over the last N windows crossing a threshold.
    CounterStorm {
        /// Alert name, used in log lines.
        name: String,
        /// Counter metric the rule watches.
        counter: String,
        /// Number of recent windows summed (≥ 1).
        span_windows: usize,
        /// Firing threshold on the summed delta.
        threshold: u64,
    },
}

impl AlertRule {
    /// The rule's alert name.
    pub fn name(&self) -> &str {
        match self {
            AlertRule::BurnRate { name, .. } | AlertRule::CounterStorm { name, .. } => name,
        }
    }
}

/// Whether an [`AlertEvent`] opens or closes an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertEdge {
    /// The rule's condition became true.
    Firing,
    /// The rule's condition became false after firing.
    Resolved,
}

impl fmt::Display for AlertEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlertEdge::Firing => "FIRING",
            AlertEdge::Resolved => "resolved",
        })
    }
}

/// One firing/resolved edge in the alert log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// Rule (alert) name.
    pub name: String,
    /// Edge direction.
    pub edge: AlertEdge,
    /// Grid index of the window that flipped the rule.
    pub window: u64,
    /// Inclusive start of that window's span, virtual nanoseconds.
    pub start_ns: u64,
    /// Exclusive end of that window's span, virtual nanoseconds.
    pub end_ns: u64,
    /// Rule-specific observation detail (integer-rendered).
    pub detail: String,
}

impl AlertEvent {
    /// The deterministic log line for this event.
    pub fn line(&self) -> String {
        format!(
            "w{} [{}..{}ns) {} {}: {}",
            self.window, self.start_ns, self.end_ns, self.edge, self.name, self.detail
        )
    }
}

/// Per-rule evaluation state: a bounded history of recent windows.
#[derive(Debug, Clone, Default)]
struct RuleState {
    firing: bool,
    /// Per window: (over-SLO count, total count) for burn rules,
    /// (delta, 0) for storm rules.
    history: VecDeque<(u64, u64)>,
}

/// FNV-1a over a log line, matching the QoS decision-digest constants.
fn fnv1a_fold(mut hash: u64, line: &str) -> u64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    for byte in line.as_bytes().iter().chain(b"\n") {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Evaluates a fixed rule set against a stream of metric windows.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    events: Vec<AlertEvent>,
    log: Vec<String>,
    hash: u64,
}

impl AlertEngine {
    /// Creates an engine over `rules` (evaluated in the given order).
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            states,
            events: Vec::new(),
            log: Vec::new(),
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Evaluates every rule against one captured window, appending any
    /// firing/resolved edges to the log. Returns how many edges fired.
    pub fn observe(&mut self, window: &MetricWindow) -> usize {
        let mut edges = 0;
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let (now_firing, detail) = match rule {
                AlertRule::BurnRate {
                    histogram,
                    slo_ns,
                    fast_windows,
                    slow_windows,
                    fast_burn_bp,
                    slow_burn_bp,
                    ..
                } => {
                    let (over, total) = window
                        .histogram(histogram)
                        .map_or((0, 0), |h| (h.count_over(*slo_ns), h.count));
                    state.history.push_back((over, total));
                    while state.history.len() > (*slow_windows).max(*fast_windows).max(1) {
                        state.history.pop_front();
                    }
                    let burn_bp = |span: usize| -> (u64, u64, u64) {
                        let take = span.max(1).min(state.history.len());
                        let (mut o, mut t) = (0u64, 0u64);
                        for &(wo, wt) in state.history.iter().rev().take(take) {
                            o += wo;
                            t += wt;
                        }
                        (if t == 0 { 0 } else { o * BASIS_POINTS / t }, o, t)
                    };
                    let (fast_bp, fast_over, fast_total) = burn_bp(*fast_windows);
                    let (slow_bp, ..) = burn_bp(*slow_windows);
                    let firing = fast_bp >= *fast_burn_bp && slow_bp >= *slow_burn_bp;
                    (
                        firing,
                        format!(
                            "burn fast={fast_bp}bp slow={slow_bp}bp ({fast_over}/{fast_total} over slo={slo_ns}ns, hist={histogram})"
                        ),
                    )
                }
                AlertRule::CounterStorm {
                    counter,
                    span_windows,
                    threshold,
                    ..
                } => {
                    state.history.push_back((window.counter(counter), 0));
                    while state.history.len() > (*span_windows).max(1) {
                        state.history.pop_front();
                    }
                    let sum: u64 = state.history.iter().map(|&(d, _)| d).sum();
                    (
                        sum >= *threshold,
                        format!(
                            "{counter}=+{sum} over {}w >= {threshold}",
                            (*span_windows).max(1)
                        ),
                    )
                }
            };
            if now_firing != state.firing {
                state.firing = now_firing;
                let event = AlertEvent {
                    name: rule.name().to_owned(),
                    edge: if now_firing {
                        AlertEdge::Firing
                    } else {
                        AlertEdge::Resolved
                    },
                    window: window.index,
                    start_ns: window.start_ns,
                    end_ns: window.end_ns,
                    detail,
                };
                let line = event.line();
                self.hash = fnv1a_fold(self.hash, &line);
                self.log.push(line);
                self.events.push(event);
                edges += 1;
            }
        }
        edges
    }

    /// The ordered log lines so far.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// The ordered events so far.
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// `n=<lines> fnv=<hash>` digest of the log, in the QoS decision-log
    /// format.
    pub fn digest(&self) -> String {
        format!("n={} fnv={:#018x}", self.log.len(), self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::WindowHistogram;

    fn window(index: u64, counters: &[(&str, u64)], hist: Option<(&str, &[u64])>) -> MetricWindow {
        let histograms = hist
            .map(|(name, values)| {
                let mut counts = [0u64; 65];
                let h = crate::metrics::Histogram::new();
                for &v in values {
                    h.record(v);
                }
                counts.copy_from_slice(&h.bucket_counts());
                vec![WindowHistogram::from_counts(name, counts)]
            })
            .unwrap_or_default();
        MetricWindow {
            index,
            start_ns: index * 100,
            end_ns: (index + 1) * 100,
            counters: counters
                .iter()
                .map(|&(n, v)| (n.to_owned(), v))
                .collect(),
            histograms,
        }
    }

    #[test]
    fn storm_fires_and_resolves_on_edges() {
        let mut engine = AlertEngine::new(vec![AlertRule::CounterStorm {
            name: "retry-storm".into(),
            counter: "faults.retry.attempts".into(),
            span_windows: 1,
            threshold: 3,
        }]);
        assert_eq!(engine.observe(&window(0, &[("faults.retry.attempts", 2)], None)), 0);
        assert_eq!(engine.observe(&window(1, &[("faults.retry.attempts", 5)], None)), 1);
        // Still firing: no new edge.
        assert_eq!(engine.observe(&window(2, &[("faults.retry.attempts", 4)], None)), 0);
        assert_eq!(engine.observe(&window(3, &[], None)), 1);
        let log = engine.log();
        assert_eq!(log.len(), 2);
        assert!(log[0].contains("FIRING retry-storm"), "{}", log[0]);
        assert!(log[0].starts_with("w1 [100..200ns)"), "{}", log[0]);
        assert!(log[1].contains("resolved retry-storm"), "{}", log[1]);
        assert!(engine.digest().starts_with("n=2 fnv=0x"));
    }

    #[test]
    fn burn_rate_needs_fast_and_slow_breach() {
        let mut engine = AlertEngine::new(vec![AlertRule::BurnRate {
            name: "slo-burn".into(),
            histogram: "lat".into(),
            slo_ns: 64,
            fast_windows: 1,
            slow_windows: 4,
            fast_burn_bp: 5_000,
            slow_burn_bp: 1_000,
        }]);
        // Fast ok: 1/10 over SLO (burn 1000bp < 5000bp).
        let mostly_fast: Vec<u64> = std::iter::repeat(10).take(9).chain([1000]).collect();
        assert_eq!(engine.observe(&window(0, &[], Some(("lat", &mostly_fast)))), 0);
        // Storm window: everything over SLO — fast 100%, slow well over.
        assert_eq!(engine.observe(&window(1, &[], Some(("lat", &[500, 900, 2000])))), 1);
        // Quiet window with traffic: fast burn recovers.
        assert_eq!(engine.observe(&window(2, &[], Some(("lat", &[10, 12])))), 1);
        let events = engine.events();
        assert_eq!(events[0].edge, AlertEdge::Firing);
        assert_eq!(events[0].window, 1);
        assert_eq!(events[1].edge, AlertEdge::Resolved);
        assert!(events[0].detail.contains("slo=64ns"), "{}", events[0].detail);
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let run = |flip: bool| {
            let mut engine = AlertEngine::new(vec![AlertRule::CounterStorm {
                name: "s".into(),
                counter: "c".into(),
                span_windows: 1,
                threshold: 1,
            }]);
            let (a, b) = if flip { (1, 0) } else { (0, 1) };
            engine.observe(&window(0, &[("c", a)], None));
            engine.observe(&window(1, &[("c", b)], None));
            engine.digest()
        };
        assert_eq!(run(false), run(false));
        assert_ne!(run(false), run(true));
    }
}
