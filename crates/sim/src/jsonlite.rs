//! A minimal, dependency-free JSON parser.
//!
//! The workspace builds offline with no serde, but CI must verify that
//! exported Chrome-trace files are *valid JSON* with the expected shape —
//! not just that a writer ran. This recursive-descent parser covers the
//! full JSON grammar (objects, arrays, strings with escapes, numbers,
//! booleans, null) and is used by `dmem-top --check-trace` and the trace
//! integration tests. It is a validator, not a performance project.
//!
//! # Examples
//!
//! ```
//! use dmem_sim::jsonlite::{parse, Value};
//!
//! let v = parse("{\"traceEvents\":[{\"cat\":\"net\",\"ts\":1.5}]}").unwrap();
//! let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
//! assert_eq!(events[0].get("cat").and_then(Value::as_str), Some("net"));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys sorted (JSON objects are unordered).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The contained string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The contained number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The contained array, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // exporters (they only escape control chars);
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    // Consume one UTF-8 scalar (input is a &str, so any
                    // multi-byte sequence is valid).
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,{\"b\":\"c\"},[]],\"d\":{}}").unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(a[2].as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_a_real_trace_export() {
        use crate::{SimClock, SimDuration};
        let clock = SimClock::new();
        clock.tracer().enable();
        {
            let span = clock.tracer().span("net", "write");
            span.tag("bytes", 4096);
            clock.advance(SimDuration::from_micros(3));
        }
        let json = clock.tracer().finish().to_chrome_json();
        let v = parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("cat").and_then(Value::as_str), Some("net"));
        assert_eq!(events[0].get("dur").and_then(Value::as_f64), Some(3.0));
    }
}
