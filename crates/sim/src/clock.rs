//! The shared virtual clock.

use crate::time::{SimDuration, SimInstant};
use crate::trace::Tracer;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheaply cloneable, thread-safe virtual clock.
///
/// All components of one simulated cluster share a single clock; device
/// models advance it by the modelled cost of each operation. Time never
/// goes backwards.
///
/// The clock also carries the cluster's span [`Tracer`]: since every
/// component already holds a clone of the clock, every component can emit
/// virtual-time spans with no extra plumbing. Tracing is disabled (and
/// free) unless [`Tracer::enable`] is called.
///
/// # Examples
///
/// ```
/// use dmem_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let view = clock.clone(); // same underlying time
/// clock.advance(SimDuration::from_micros(2));
/// assert_eq!(view.now().nanos(), 2_000);
/// ```
#[derive(Clone)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
    tracer: Tracer,
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

impl SimClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        let now_ns = Arc::new(AtomicU64::new(0));
        let tracer = Tracer::new(Arc::clone(&now_ns));
        SimClock { now_ns, tracer }
    }

    /// The span collector stamped from this clock. Clones of the clock
    /// share the tracer, so enabling it anywhere enables it everywhere.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let ns = self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst) + d.as_nanos();
        SimInstant::from_nanos(ns)
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves
    /// it unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&self, t: SimInstant) -> SimInstant {
        let target = t.nanos();
        let mut cur = self.now_ns.load(Ordering::SeqCst);
        while cur < target {
            match self.now_ns.compare_exchange_weak(
                cur,
                target,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        SimInstant::from_nanos(cur)
    }

    /// Time elapsed since `start`.
    pub fn elapsed_since(&self, start: SimInstant) -> SimDuration {
        self.now() - start
    }

    /// `true` if both handles view the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.now_ns, &other.now_ns)
    }
}

/// A single-shard virtual clock: plain, non-atomic, not shared.
///
/// Each shard of the sharded engine owns one; time advances only inside
/// that shard's epoch window, so no synchronization is needed and
/// advancing is a plain add. Like [`SimClock`], time never goes
/// backwards.
///
/// # Examples
///
/// ```
/// use dmem_sim::{ShardClock, SimDuration, SimInstant};
///
/// let mut clock = ShardClock::new();
/// clock.advance(SimDuration::from_micros(2));
/// clock.advance_to(SimInstant::from_nanos(500)); // in the past: no-op
/// assert_eq!(clock.now().nanos(), 2_000);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardClock {
    now_ns: u64,
}

impl ShardClock {
    /// Creates a clock at the simulation epoch.
    pub fn new() -> Self {
        ShardClock::default()
    }

    /// The current virtual time of this shard.
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.now_ns)
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now_ns += d.as_nanos();
        self.now()
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise
    /// leaves it unchanged. Returns the (possibly unchanged) time.
    pub fn advance_to(&mut self, t: SimInstant) -> SimInstant {
        self.now_ns = self.now_ns.max(t.nanos());
        self.now()
    }

    /// Time elapsed since `start`.
    pub fn elapsed_since(&self, start: SimInstant) -> SimDuration {
        self.now() - start
    }
}

impl fmt::Display for ShardClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.now())
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock").field("now", &self.now()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn starts_at_epoch() {
        assert_eq!(SimClock::new().now(), SimInstant::EPOCH);
    }

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        c.advance(SimDuration::from_nanos(5));
        c.advance(SimDuration::from_nanos(7));
        assert_eq!(c.now().nanos(), 12);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_micros(1));
        assert_eq!(b.now().nanos(), 1_000);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance(SimDuration::from_micros(10));
        c.advance_to(SimInstant::from_nanos(3_000)); // in the past
        assert_eq!(c.now().nanos(), 10_000);
        c.advance_to(SimInstant::from_nanos(20_000));
        assert_eq!(c.now().nanos(), 20_000);
    }

    #[test]
    fn concurrent_advances_all_counted() {
        let c = SimClock::new();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        c.advance(SimDuration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().nanos(), 8_000);
    }

    #[test]
    fn shard_clock_monotone() {
        let mut c = ShardClock::new();
        assert_eq!(c.now(), SimInstant::EPOCH);
        c.advance(SimDuration::from_nanos(5));
        c.advance_to(SimInstant::from_nanos(3)); // past: no-op
        assert_eq!(c.now().nanos(), 5);
        c.advance_to(SimInstant::from_nanos(9));
        assert_eq!(c.now().nanos(), 9);
        assert_eq!(c.elapsed_since(SimInstant::from_nanos(4)).as_nanos(), 5);
        assert_eq!(c.to_string(), "t+9ns");
    }

    #[test]
    fn debug_shows_time() {
        let c = SimClock::new();
        assert!(format!("{c:?}").contains("now"));
    }
}
