//! Seeded chaos schedules.
//!
//! A [`ChaosSchedule`] is an interleaved, fully concrete sequence of
//! workload operations and failure injections with matched recoveries,
//! generated from a single `u64` seed. Generation is a pure function of
//! `(seed, config)` — the same seed always yields the same schedule — so
//! any failure the chaos harness finds replays exactly from its seed.
//!
//! This layer is pure data and lives in `dmem-sim` next to the failure
//! injector and the deterministic RNG it builds on. Executing a schedule
//! against the assembled system, checking cluster invariants after every
//! step, is the umbrella crate's `chaos` module.

use crate::failure::FailureEvent;
use crate::rng::DetRng;
use crate::time::SimDuration;
use dmem_types::{NodeId, ServerId};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Shape and intensity of a generated chaos schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Physical nodes in the simulated cluster.
    pub nodes: usize,
    /// Virtual servers hosted per node.
    pub servers_per_node: usize,
    /// Base steps to generate (recovery injections are appended on top,
    /// so the final schedule is slightly longer).
    pub steps: usize,
    /// Per-server key space; small enough that gets and deletes regularly
    /// hit keys that earlier puts acked.
    pub keys: u64,
    /// Value sizes drawn uniformly per put. The defaults span every tier:
    /// sub-page values land in the node shared pool, page-sized values
    /// overflow to remote memory, multi-page values bypass the shared
    /// pool entirely and large ones spill to disk.
    pub value_sizes: Vec<usize>,
    /// Probability that a step injects a failure instead of workload.
    pub failure_probability: f64,
    /// Probability that a step runs a background-maintenance window.
    pub maintain_probability: f64,
    /// Recovery delay bounds, in schedule steps, for injected failures.
    pub min_recovery_steps: usize,
    /// Upper bound of the recovery delay (inclusive).
    pub max_recovery_steps: usize,
    /// How many nodes may be down at once. Keeping this below
    /// `nodes - replication - 1` leaves re-replication feasible, which is
    /// what the convergence invariant checks at quiescence.
    pub max_concurrent_node_failures: usize,
    /// Virtual-time horizon of one maintenance window; must cover at
    /// least two repair intervals so the convergence invariant's bound
    /// ("degree restored within one maintenance window") is fair.
    pub maintain_horizon: SimDuration,
    /// Generate fabric-fault steps (host-pair partitions with matched
    /// heals, QP breaks) from an independent RNG fork. Off by default, so
    /// schedules without it are byte-identical to pre-fault builds.
    pub fabric_faults: bool,
    /// Probability a step opens a host-pair partition (fabric faults
    /// only; at most one partition is active at a time).
    pub partition_probability: f64,
    /// Probability a step breaks every QP of a host pair (fabric faults
    /// only).
    pub qp_break_probability: f64,
    /// Generate CXL pool-tier steps — pool-node outage windows with
    /// matched recoveries plus remote-atomic counter ops — from an
    /// independent RNG fork. Off by default, so schedules without it are
    /// byte-identical to pre-CXL builds.
    pub cxl: bool,
    /// Probability a step opens a pool-node outage window (CXL only; at
    /// most one pool node is down at a time).
    pub cxl_outage_probability: f64,
    /// Probability a step performs a remote atomic fetch-add on one of
    /// the shared counter slots (CXL only).
    pub cxl_atomic_probability: f64,
    /// Pool nodes of the CXL tier the harness configures (CXL only).
    pub cxl_pool_nodes: u16,
    /// Shared remote-atomic counter slots the schedule hammers (CXL
    /// only).
    pub cxl_atomic_slots: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nodes: 5,
            servers_per_node: 2,
            steps: 120,
            keys: 24,
            value_sizes: vec![128, 2048, 4096, 16 * 1024, 64 * 1024],
            failure_probability: 0.08,
            maintain_probability: 0.08,
            min_recovery_steps: 3,
            max_recovery_steps: 20,
            max_concurrent_node_failures: 1,
            maintain_horizon: SimDuration::from_millis(250),
            fabric_faults: false,
            partition_probability: 0.05,
            qp_break_probability: 0.05,
            cxl: false,
            cxl_outage_probability: 0.05,
            cxl_atomic_probability: 0.10,
            cxl_pool_nodes: 2,
            cxl_atomic_slots: 3,
        }
    }
}

impl ChaosConfig {
    /// Every virtual server of the configured cluster, in id order.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(self.nodes * self.servers_per_node);
        for node in 0..self.nodes as u32 {
            for local in 0..self.servers_per_node as u32 {
                out.push(ServerId::new(NodeId::new(node), local));
            }
        }
        out
    }
}

/// One fully concrete step of a chaos schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosStep {
    /// Store a value of `len` deterministic bytes under `(server, key)`.
    Put {
        /// Owning virtual server.
        server: ServerId,
        /// Caller-chosen key.
        key: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// Read `(server, key)` back and verify its bytes.
    Get {
        /// Owning virtual server.
        server: ServerId,
        /// Key to read.
        key: u64,
    },
    /// Probe the memory map for `(server, key)` without reading data.
    Record {
        /// Owning virtual server.
        server: ServerId,
        /// Key to probe.
        key: u64,
    },
    /// Delete `(server, key)` from whichever tier holds it.
    Delete {
        /// Owning virtual server.
        server: ServerId,
        /// Key to delete.
        key: u64,
    },
    /// Apply a failure or recovery event immediately.
    Inject(FailureEvent),
    /// Run background maintenance (repair, eviction, advertisement)
    /// until the given virtual-time horizon has passed.
    Maintain {
        /// Window length on the virtual clock.
        horizon: SimDuration,
    },
    /// Partition the host pair at the fabric fault layer: all verbs
    /// between `a` and `b` fail until the matching [`ChaosStep::HealPair`].
    PartitionPair {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Heal a previously injected host-pair partition.
    HealPair {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Drive every established queue pair between the hosts to the RC
    /// error state; traffic resumes only after re-establishment.
    BreakQps {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Mark a CXL pool node unreachable: loads, stores, allocations, and
    /// atomics against it fail until the matching [`ChaosStep::CxlPoolUp`].
    CxlPoolDown {
        /// The pool node entering its outage window.
        pool_node: u16,
    },
    /// Recover a CXL pool node; its data survived the outage intact.
    CxlPoolUp {
        /// The pool node coming back.
        pool_node: u16,
    },
    /// Remote atomic fetch-add of `delta` on shared counter slot `slot`.
    CxlAtomic {
        /// Which shared counter cell to hit.
        slot: usize,
        /// Increment to apply.
        delta: u64,
    },
}

impl fmt::Display for ChaosStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosStep::Put { server, key, len } => {
                write!(f, "put {server} key={key} len={len}")
            }
            ChaosStep::Get { server, key } => write!(f, "get {server} key={key}"),
            ChaosStep::Record { server, key } => write!(f, "record {server} key={key}"),
            ChaosStep::Delete { server, key } => write!(f, "delete {server} key={key}"),
            ChaosStep::Inject(event) => write!(f, "inject {event}"),
            ChaosStep::Maintain { horizon } => write!(f, "maintain {horizon}"),
            ChaosStep::PartitionPair { a, b } => write!(f, "partition {a}<->{b}"),
            ChaosStep::HealPair { a, b } => write!(f, "heal {a}<->{b}"),
            ChaosStep::BreakQps { a, b } => write!(f, "break-qps {a}<->{b}"),
            ChaosStep::CxlPoolDown { pool_node } => write!(f, "cxl-down pool-{pool_node}"),
            ChaosStep::CxlPoolUp { pool_node } => write!(f, "cxl-up pool-{pool_node}"),
            ChaosStep::CxlAtomic { slot, delta } => {
                write!(f, "cxl-atomic slot={slot} delta={delta}")
            }
        }
    }
}

/// A generated schedule plus the seed that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// The steps, in execution order.
    pub steps: Vec<ChaosStep>,
}

impl ChaosSchedule {
    /// Generates the schedule for `seed` under `config`.
    ///
    /// Properties the harness relies on:
    ///
    /// * **Determinism** — a pure function of `(seed, config)`.
    /// * **Matched recoveries** — every injected `*Down` event has its
    ///   `*Up` counterpart scheduled a bounded number of steps later, so
    ///   a full run always returns to an all-up cluster. (Schedule
    ///   *shrinking* may remove a recovery; the invariant checkers
    ///   condition on observed liveness, not on this property.)
    /// * **Closing maintenance** — the schedule ends with a
    ///   [`ChaosStep::Maintain`] window so convergence invariants get a
    ///   final quiescent look at the cluster.
    pub fn generate(seed: u64, config: &ChaosConfig) -> ChaosSchedule {
        let root = DetRng::new(seed);
        let mut ops = root.fork("chaos.ops");
        let mut faults = root.fork("chaos.faults");
        // Fabric faults draw from their own fork so enabling them leaves
        // the ops/failure streams — and thus the base schedule — intact.
        let mut netfaults = config.fabric_faults.then(|| root.fork("chaos.netfaults"));
        // The CXL stream is gated the same way for the same reason.
        let mut cxlrng = config.cxl.then(|| root.fork("chaos.cxl"));
        let servers = config.servers();
        let nodes: Vec<NodeId> = (0..config.nodes as u32).map(NodeId::new).collect();

        let mut steps: Vec<ChaosStep> = Vec::with_capacity(config.steps + 16);
        // base-step index -> recoveries due before that step runs.
        let mut recoveries: BTreeMap<usize, Vec<FailureEvent>> = BTreeMap::new();
        let mut down_nodes: HashSet<NodeId> = HashSet::new();
        let mut down_servers: HashSet<ServerId> = HashSet::new();
        let mut down_links: HashSet<(NodeId, NodeId)> = HashSet::new();
        // base-step index -> partition heals due before that step runs.
        let mut pending_heals: BTreeMap<usize, Vec<(NodeId, NodeId)>> = BTreeMap::new();
        let mut partitioned: HashSet<(NodeId, NodeId)> = HashSet::new();
        // base-step index -> pool-node recoveries due before that step.
        let mut pending_pool_ups: BTreeMap<usize, Vec<u16>> = BTreeMap::new();
        let mut cxl_down: HashSet<u16> = HashSet::new();

        for index in 0..config.steps {
            if let Some(nf) = netfaults.as_mut() {
                for (a, b) in pending_heals.remove(&index).unwrap_or_default() {
                    partitioned.remove(&(a, b));
                    steps.push(ChaosStep::HealPair { a, b });
                }
                let roll = nf.unit();
                if roll < config.partition_probability {
                    let a = nodes[nf.below(nodes.len())];
                    let b = nodes[nf.below(nodes.len())];
                    let (a, b) = if a <= b { (a, b) } else { (b, a) };
                    // One partition at a time: a second concurrent cut
                    // (plus the allowed node failure) could make triple
                    // replication infeasible outright.
                    if a != b && partitioned.is_empty() && partitioned.insert((a, b)) {
                        let due = index
                            + config.min_recovery_steps
                            + nf.below(
                                config.max_recovery_steps - config.min_recovery_steps + 1,
                            );
                        pending_heals.entry(due).or_default().push((a, b));
                        steps.push(ChaosStep::PartitionPair { a, b });
                    }
                } else if roll < config.partition_probability + config.qp_break_probability {
                    let a = nodes[nf.below(nodes.len())];
                    let b = nodes[nf.below(nodes.len())];
                    if a != b {
                        steps.push(ChaosStep::BreakQps { a, b });
                    }
                }
            }

            if let Some(cx) = cxlrng.as_mut() {
                for pool_node in pending_pool_ups.remove(&index).unwrap_or_default() {
                    cxl_down.remove(&pool_node);
                    steps.push(ChaosStep::CxlPoolUp { pool_node });
                }
                let roll = cx.unit();
                if roll < config.cxl_outage_probability {
                    let pool_node = cx.below(config.cxl_pool_nodes.max(1) as usize) as u16;
                    // One outage window at a time: the write-behind shadow
                    // covers a single pool-node loss; concurrent losses are
                    // a capacity story, not a correctness one.
                    if cxl_down.is_empty() && cxl_down.insert(pool_node) {
                        let due = index
                            + config.min_recovery_steps
                            + cx.below(
                                config.max_recovery_steps - config.min_recovery_steps + 1,
                            );
                        pending_pool_ups.entry(due).or_default().push(pool_node);
                        steps.push(ChaosStep::CxlPoolDown { pool_node });
                    }
                } else if roll < config.cxl_outage_probability + config.cxl_atomic_probability {
                    let slot = cx.below(config.cxl_atomic_slots.max(1));
                    let delta = 1 + cx.below(9) as u64;
                    steps.push(ChaosStep::CxlAtomic { slot, delta });
                }
            }

            for event in recoveries.remove(&index).unwrap_or_default() {
                match event {
                    FailureEvent::NodeUp(n) => {
                        down_nodes.remove(&n);
                    }
                    FailureEvent::ServerUp(s) => {
                        down_servers.remove(&s);
                    }
                    FailureEvent::LinkUp(a, b) => {
                        down_links.remove(&(a, b));
                    }
                    _ => {}
                }
                steps.push(ChaosStep::Inject(event));
            }

            let roll = ops.unit();
            if roll < config.failure_probability {
                let due = index
                    + config.min_recovery_steps
                    + faults.below(config.max_recovery_steps - config.min_recovery_steps + 1);
                let injected = match faults.below(3) {
                    0 => {
                        let node = nodes[faults.below(nodes.len())];
                        if down_nodes.len() < config.max_concurrent_node_failures
                            && down_nodes.insert(node)
                        {
                            recoveries.entry(due).or_default().push(FailureEvent::NodeUp(node));
                            Some(FailureEvent::NodeDown(node))
                        } else {
                            None
                        }
                    }
                    1 => {
                        let a = nodes[faults.below(nodes.len())];
                        let b = nodes[faults.below(nodes.len())];
                        let (a, b) = if a <= b { (a, b) } else { (b, a) };
                        if a != b && down_links.insert((a, b)) {
                            recoveries.entry(due).or_default().push(FailureEvent::LinkUp(a, b));
                            Some(FailureEvent::LinkDown(a, b))
                        } else {
                            None
                        }
                    }
                    _ => {
                        let server = servers[faults.below(servers.len())];
                        if down_servers.insert(server) {
                            recoveries
                                .entry(due)
                                .or_default()
                                .push(FailureEvent::ServerUp(server));
                            Some(FailureEvent::ServerDown(server))
                        } else {
                            None
                        }
                    }
                };
                if let Some(event) = injected {
                    steps.push(ChaosStep::Inject(event));
                    continue;
                }
                // Entity already down (or the cap reached): fall through
                // to a workload step so the schedule keeps its length.
            } else if roll < config.failure_probability + config.maintain_probability {
                steps.push(ChaosStep::Maintain {
                    horizon: config.maintain_horizon,
                });
                continue;
            }

            let server = servers[ops.below(servers.len())];
            let key = ops.below(config.keys as usize) as u64;
            let kind = ops.below(100);
            steps.push(if kind < 45 {
                ChaosStep::Put {
                    server,
                    key,
                    len: config.value_sizes[ops.below(config.value_sizes.len())],
                }
            } else if kind < 75 {
                ChaosStep::Get { server, key }
            } else if kind < 88 {
                ChaosStep::Record { server, key }
            } else {
                ChaosStep::Delete { server, key }
            });
        }

        // Flush recoveries and heals that fell past the end, then settle.
        for (_, events) in recoveries {
            for event in events {
                steps.push(ChaosStep::Inject(event));
            }
        }
        for (_, pairs) in pending_heals {
            for (a, b) in pairs {
                steps.push(ChaosStep::HealPair { a, b });
            }
        }
        for (_, pool_nodes) in pending_pool_ups {
            for pool_node in pool_nodes {
                steps.push(ChaosStep::CxlPoolUp { pool_node });
            }
        }
        steps.push(ChaosStep::Maintain {
            horizon: config.maintain_horizon,
        });
        ChaosSchedule { seed, steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = ChaosSchedule::generate(7, &cfg);
        let b = ChaosSchedule::generate(7, &cfg);
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(8, &cfg);
        assert_ne!(a.steps, c.steps, "distinct seeds must differ");
    }

    #[test]
    fn every_down_has_a_later_up() {
        let cfg = ChaosConfig::default();
        for seed in 0..16 {
            let schedule = ChaosSchedule::generate(seed, &cfg);
            for (i, step) in schedule.steps.iter().enumerate() {
                let wanted = match step {
                    ChaosStep::Inject(FailureEvent::NodeDown(n)) => FailureEvent::NodeUp(*n),
                    ChaosStep::Inject(FailureEvent::ServerDown(s)) => FailureEvent::ServerUp(*s),
                    ChaosStep::Inject(FailureEvent::LinkDown(a, b)) => FailureEvent::LinkUp(*a, *b),
                    _ => continue,
                };
                assert!(
                    schedule.steps[i + 1..]
                        .iter()
                        .any(|s| *s == ChaosStep::Inject(wanted)),
                    "seed {seed}: no recovery for step {i} ({step})"
                );
            }
        }
    }

    #[test]
    fn schedule_ends_with_maintenance() {
        let cfg = ChaosConfig::default();
        for seed in 0..16 {
            let schedule = ChaosSchedule::generate(seed, &cfg);
            assert!(matches!(
                schedule.steps.last(),
                Some(ChaosStep::Maintain { .. })
            ));
        }
    }

    #[test]
    fn steps_respect_config_bounds() {
        let cfg = ChaosConfig::default();
        let servers = cfg.servers();
        let schedule = ChaosSchedule::generate(3, &cfg);
        assert!(schedule.steps.len() >= cfg.steps);
        for step in &schedule.steps {
            match step {
                ChaosStep::Put { server, key, len } => {
                    assert!(servers.contains(server));
                    assert!(*key < cfg.keys);
                    assert!(cfg.value_sizes.contains(len));
                }
                ChaosStep::Get { server, key }
                | ChaosStep::Record { server, key }
                | ChaosStep::Delete { server, key } => {
                    assert!(servers.contains(server));
                    assert!(*key < cfg.keys);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn chaos_mixes_workload_failures_and_maintenance() {
        let cfg = ChaosConfig::default();
        let mut puts = 0;
        let mut gets = 0;
        let mut injects = 0;
        let mut maintains = 0;
        for seed in 0..8 {
            for step in ChaosSchedule::generate(seed, &cfg).steps {
                match step {
                    ChaosStep::Put { .. } => puts += 1,
                    ChaosStep::Get { .. } => gets += 1,
                    ChaosStep::Inject(_) => injects += 1,
                    ChaosStep::Maintain { .. } => maintains += 1,
                    _ => {}
                }
            }
        }
        assert!(puts > 0 && gets > 0 && injects > 0 && maintains > 8);
    }

    #[test]
    fn fabric_faults_off_leaves_schedules_byte_identical() {
        // The flag must be purely additive: disabling it reproduces the
        // exact schedules older builds generated.
        let plain = ChaosConfig::default();
        let off = ChaosConfig {
            fabric_faults: false,
            partition_probability: 0.9,
            qp_break_probability: 0.9,
            ..ChaosConfig::default()
        };
        for seed in 0..16 {
            assert_eq!(
                ChaosSchedule::generate(seed, &plain),
                ChaosSchedule::generate(seed, &off)
            );
        }
    }

    #[test]
    fn fabric_faults_add_steps_without_touching_the_base_schedule() {
        let plain = ChaosConfig::default();
        let with = ChaosConfig {
            fabric_faults: true,
            ..ChaosConfig::default()
        };
        let mut partitions = 0usize;
        let mut breaks = 0usize;
        for seed in 0..16 {
            let a = ChaosSchedule::generate(seed, &plain);
            let b = ChaosSchedule::generate(seed, &with);
            let strip: Vec<&ChaosStep> = b
                .steps
                .iter()
                .filter(|s| {
                    !matches!(
                        s,
                        ChaosStep::PartitionPair { .. }
                            | ChaosStep::HealPair { .. }
                            | ChaosStep::BreakQps { .. }
                    )
                })
                .collect();
            let base: Vec<&ChaosStep> = a.steps.iter().collect();
            assert_eq!(strip, base, "seed {seed}: base schedule perturbed");
            for step in &b.steps {
                match step {
                    ChaosStep::PartitionPair { .. } => partitions += 1,
                    ChaosStep::BreakQps { a, b } => {
                        assert_ne!(a, b, "seed {seed}");
                        breaks += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(partitions > 0, "partitions must actually fire");
        assert!(breaks > 0, "qp breaks must actually fire");
    }

    #[test]
    fn every_partition_has_a_later_heal_and_one_active_at_a_time() {
        let cfg = ChaosConfig {
            fabric_faults: true,
            partition_probability: 0.3,
            steps: 300,
            ..ChaosConfig::default()
        };
        for seed in 0..8 {
            let schedule = ChaosSchedule::generate(seed, &cfg);
            let mut open = 0usize;
            for (i, step) in schedule.steps.iter().enumerate() {
                match step {
                    ChaosStep::PartitionPair { a, b } => {
                        open += 1;
                        assert_eq!(open, 1, "seed {seed}: overlapping partitions");
                        assert!(
                            schedule.steps[i + 1..].iter().any(
                                |s| *s == ChaosStep::HealPair { a: *a, b: *b }
                            ),
                            "seed {seed}: partition at step {i} never heals"
                        );
                    }
                    ChaosStep::HealPair { .. } => open -= 1,
                    _ => {}
                }
            }
            assert_eq!(open, 0, "seed {seed}: unhealed partition at end");
        }
    }

    #[test]
    fn cxl_off_leaves_schedules_byte_identical() {
        // Like the fabric flag: disabling the CXL stream must reproduce
        // the exact schedules pre-CXL builds generated, no matter how the
        // CXL knobs are set.
        let plain = ChaosConfig::default();
        let off = ChaosConfig {
            cxl: false,
            cxl_outage_probability: 0.9,
            cxl_atomic_probability: 0.9,
            ..ChaosConfig::default()
        };
        for seed in 0..16 {
            assert_eq!(
                ChaosSchedule::generate(seed, &plain),
                ChaosSchedule::generate(seed, &off)
            );
        }
    }

    #[test]
    fn cxl_adds_steps_without_touching_the_base_schedule() {
        let plain = ChaosConfig::default();
        let with = ChaosConfig {
            cxl: true,
            ..ChaosConfig::default()
        };
        let mut outages = 0usize;
        let mut atomics = 0usize;
        for seed in 0..16 {
            let a = ChaosSchedule::generate(seed, &plain);
            let b = ChaosSchedule::generate(seed, &with);
            let strip: Vec<&ChaosStep> = b
                .steps
                .iter()
                .filter(|s| {
                    !matches!(
                        s,
                        ChaosStep::CxlPoolDown { .. }
                            | ChaosStep::CxlPoolUp { .. }
                            | ChaosStep::CxlAtomic { .. }
                    )
                })
                .collect();
            let base: Vec<&ChaosStep> = a.steps.iter().collect();
            assert_eq!(strip, base, "seed {seed}: base schedule perturbed");
            for step in &b.steps {
                match step {
                    ChaosStep::CxlPoolDown { pool_node } => {
                        assert!(*pool_node < with.cxl_pool_nodes, "seed {seed}");
                        outages += 1;
                    }
                    ChaosStep::CxlAtomic { slot, delta } => {
                        assert!(*slot < with.cxl_atomic_slots, "seed {seed}");
                        assert!(*delta > 0, "seed {seed}: zero-delta atomic is vacuous");
                        atomics += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(outages > 0, "pool outages must actually fire");
        assert!(atomics > 0, "remote atomics must actually fire");
    }

    #[test]
    fn every_pool_outage_recovers_and_one_is_down_at_a_time() {
        let cfg = ChaosConfig {
            cxl: true,
            cxl_outage_probability: 0.3,
            steps: 300,
            ..ChaosConfig::default()
        };
        for seed in 0..8 {
            let schedule = ChaosSchedule::generate(seed, &cfg);
            let mut open = 0usize;
            for (i, step) in schedule.steps.iter().enumerate() {
                match step {
                    ChaosStep::CxlPoolDown { pool_node } => {
                        open += 1;
                        assert_eq!(open, 1, "seed {seed}: overlapping pool outages");
                        assert!(
                            schedule.steps[i + 1..]
                                .iter()
                                .any(|s| *s == ChaosStep::CxlPoolUp { pool_node: *pool_node }),
                            "seed {seed}: pool outage at step {i} never recovers"
                        );
                    }
                    ChaosStep::CxlPoolUp { .. } => open -= 1,
                    _ => {}
                }
            }
            assert_eq!(open, 0, "seed {seed}: pool node still down at end");
        }
    }

    #[test]
    fn node_failures_respect_concurrency_cap() {
        let mut cfg = ChaosConfig::default();
        cfg.failure_probability = 0.5;
        cfg.steps = 400;
        for seed in 0..4 {
            let schedule = ChaosSchedule::generate(seed, &cfg);
            let mut down = 0usize;
            for step in &schedule.steps {
                match step {
                    ChaosStep::Inject(FailureEvent::NodeDown(_)) => {
                        down += 1;
                        assert!(down <= cfg.max_concurrent_node_failures, "seed {seed}");
                    }
                    ChaosStep::Inject(FailureEvent::NodeUp(_)) => down -= 1,
                    _ => {}
                }
            }
        }
    }
}
