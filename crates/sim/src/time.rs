//! Virtual time newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use dmem_sim::SimDuration;
///
/// let page = SimDuration::from_micros(3);
/// assert_eq!((page * 4).as_micros_f64(), 12.0);
/// assert_eq!(SimDuration::from_millis(1) / SimDuration::from_micros(10), 100);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, )]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding down.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0);
        SimDuration((s * 1e9) as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// Saturating at zero.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        debug_assert!(rhs >= 0.0);
        SimDuration((self.0 as f64 * rhs) as u64)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many times `rhs` fits into `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero SimDuration");
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point in virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, )]
pub struct SimInstant(u64);

impl SimInstant {
    /// The simulation epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub const fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis_f64(), 500.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(4).to_string(), "4.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimInstant::EPOCH.to_string(), "t+0ns");
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::EPOCH;
        let t1 = t0 + SimDuration::from_micros(5);
        assert_eq!(t1 - t0, SimDuration::from_micros(5));
        assert_eq!(t0 - t1, SimDuration::ZERO, "reverse order saturates");
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3u64, SimDuration::from_micros(30));
        assert_eq!(d * 0.5f64, SimDuration::from_micros(5));
    }

    proptest! {
        #[test]
        fn prop_duration_ordering_consistent(a in 0u64..1 << 50, b in 0u64..1 << 50) {
            let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
            prop_assert_eq!(da < db, a < b);
        }

        #[test]
        fn prop_instant_roundtrip(start in 0u64..1 << 40, delta in 0u64..1 << 40) {
            let t = SimInstant::from_nanos(start);
            let later = t + SimDuration::from_nanos(delta);
            prop_assert_eq!(later.duration_since(t).as_nanos(), delta);
        }
    }
}
