//! Deterministic tracing: virtual-clock spans, attribution and exporters.
//!
//! Every [`crate::SimClock`] carries a [`Tracer`]. Components that charge
//! device costs against the clock open a [`SpanGuard`] around the charged
//! region; the guard stamps its start and end from the *virtual* clock, so
//! a trace is a pure function of the simulation — byte-identical across
//! runs, seeds, machines and `--jobs` settings.
//!
//! Tracing is off by default and zero-cost while off: opening a span is a
//! single relaxed atomic load, tags are not formatted, and nothing is
//! allocated. Enabling it (`clock.tracer().enable()`) records every span
//! into an in-memory buffer that [`Tracer::finish`] drains into a
//! [`Trace`], which knows how to
//!
//! * roll itself up into a per-category [`Attribution`] of simulated time
//!   (exclusive/self time, so nested spans are not double-counted),
//! * export Chrome-trace/Perfetto JSON ([`Trace::to_chrome_json`]), and
//! * export a compact JSONL event log ([`Trace::to_jsonl`]).
//!
//! # Examples
//!
//! ```
//! use dmem_sim::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! clock.tracer().enable();
//! {
//!     let span = clock.tracer().span("net", "write");
//!     span.tag("bytes", 4096);
//!     clock.advance(SimDuration::from_micros(3));
//! }
//! let trace = clock.tracer().finish();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.spans[0].category, "net");
//! assert_eq!(trace.spans[0].duration().as_micros_f64(), 3.0);
//! ```

use crate::time::{SimDuration, SimInstant};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How a span was measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A synchronous RAII span: the caller's virtual time was inside it.
    /// Sync spans nest properly and are counted by [`Trace::attribution`].
    Sync,
    /// A manually stamped span for work that overlaps the caller (e.g. a
    /// posted RDMA transfer draining in the background). Shown in the
    /// timeline exports but excluded from attribution so overlapping time
    /// is not double-counted.
    Async,
}

/// One finished span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Sequential id (also the index into [`Trace::spans`]).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Component category (`"net"`, `"swap"`, `"core"`, …).
    pub category: &'static str,
    /// Operation name within the category.
    pub name: &'static str,
    /// Virtual start time, nanoseconds.
    pub start_ns: u64,
    /// Virtual end time, nanoseconds.
    pub end_ns: u64,
    /// Formatted key/value annotations.
    pub tags: Vec<(&'static str, String)>,
    /// Sync (RAII) or async (manually stamped).
    pub kind: SpanKind,
}

impl SpanRecord {
    /// The span's virtual duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRecord>,
    /// Ids of currently open sync spans, innermost last.
    stack: Vec<u64>,
}

struct TracerInner {
    enabled: AtomicBool,
    /// The owning clock's time cell (shared, never written here).
    now_ns: Arc<AtomicU64>,
    state: Mutex<TraceState>,
}

/// The per-clock span collector. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    pub(crate) fn new(now_ns: Arc<AtomicU64>) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                now_ns,
                state: Mutex::new(TraceState::default()),
            }),
        }
    }

    /// Starts recording spans.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Stops recording spans (already collected spans are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// `true` while spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn now(&self) -> u64 {
        self.inner.now_ns.load(Ordering::SeqCst)
    }

    /// Opens a sync span; it closes (and stamps its end time) when the
    /// returned guard drops. A no-op returning an inert guard while
    /// disabled.
    #[inline]
    pub fn span(&self, category: &'static str, name: &'static str) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard { tracer: None, id: 0 };
        }
        let start = self.now();
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        state.spans.push(SpanRecord {
            id,
            parent,
            category,
            name,
            start_ns: start,
            end_ns: start,
            tags: Vec::new(),
            kind: SpanKind::Sync,
        });
        state.stack.push(id);
        SpanGuard {
            tracer: Some(Arc::clone(&self.inner)),
            id,
        }
    }

    /// Records an already-finished span with explicit virtual timestamps —
    /// used for asynchronous work (posted transfers) whose lifetime is not
    /// a lexical scope. Parented under the currently open sync span.
    pub fn record_async(
        &self,
        category: &'static str,
        name: &'static str,
        start: SimInstant,
        end: SimInstant,
        tags: &[(&'static str, u64)],
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut state = self.inner.state.lock();
        let id = state.spans.len() as u64;
        let parent = state.stack.last().copied();
        state.spans.push(SpanRecord {
            id,
            parent,
            category,
            name,
            start_ns: start.nanos(),
            end_ns: end.nanos().max(start.nanos()),
            tags: tags.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            kind: SpanKind::Async,
        });
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.inner.state.lock().spans.len()
    }

    /// `true` if no spans have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every collected span into a [`Trace`]. Open spans are kept
    /// open (they will close into the *next* trace), so call this between
    /// operations, not inside one.
    pub fn finish(&self) -> Trace {
        let mut state = self.inner.state.lock();
        let open = state.stack.len();
        let spans = std::mem::take(&mut state.spans);
        state.stack.clear();
        drop(state);
        debug_assert_eq!(open, 0, "finish() with {open} spans still open");
        Trace { spans }
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.len())
            .finish()
    }
}

/// RAII guard for a sync span. Stamps the span's end from the virtual
/// clock on drop. Inert (free) when tracing is disabled.
pub struct SpanGuard {
    tracer: Option<Arc<TracerInner>>,
    id: u64,
}

impl SpanGuard {
    /// Annotates the span. No-op (nothing formatted) while disabled.
    pub fn tag(&self, key: &'static str, value: impl fmt::Display) {
        if let Some(inner) = &self.tracer {
            let mut state = inner.state.lock();
            let idx = self.id as usize;
            state.spans[idx].tags.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.tracer.take() {
            let end = inner.now_ns.load(Ordering::SeqCst);
            let mut state = inner.state.lock();
            let idx = self.id as usize;
            state.spans[idx].end_ns = state.spans[idx].end_ns.max(end);
            // Guards drop LIFO in correct code; tolerate out-of-order
            // drops by removing this id wherever it sits.
            if state.stack.last() == Some(&self.id) {
                state.stack.pop();
            } else {
                state.stack.retain(|&open| open != self.id);
            }
        }
    }
}

/// A finished, immutable set of spans.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All spans, in open order (id order).
    pub spans: Vec<SpanRecord>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One sampled event in a shard's trace buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTraceEvent {
    /// Virtual time of the event, in nanoseconds.
    pub at_ns: u64,
    /// Per-shard event sequence number (set by the log).
    pub seq: u64,
    /// Event kind, a static label such as `"read.miss"`.
    pub kind: &'static str,
    /// The host the event concerns.
    pub host: u64,
    /// Kind-specific detail (a page id, a latency, a peer host).
    pub detail: u64,
}

/// A per-shard append-only trace buffer for the sharded engine.
///
/// The shared [`Tracer`] hangs off the atomic [`SimClock`], which shards
/// do not use; instead each shard samples events into its own
/// `ShardEventLog` (plain pushes, no locks) and the coordinator merges
/// the logs under the same `(time, shard, seq)` order as the mailboxes —
/// so the exported trace, like every other output, is byte-identical at
/// every worker count.
///
/// Sampling keeps rack-scale runs bounded: `sample_every = n` keeps one
/// event in `n` (deterministically, by per-shard event count);
/// `sample_every = 1` keeps everything, `0` disables the log.
///
/// [`SimClock`]: crate::SimClock
#[derive(Debug, Clone, Default)]
pub struct ShardEventLog {
    shard: u32,
    sample_every: u64,
    seen: u64,
    events: Vec<ShardTraceEvent>,
}

impl ShardEventLog {
    /// Creates a log for `shard` keeping one event in `sample_every`.
    pub fn new(shard: u32, sample_every: u64) -> Self {
        ShardEventLog {
            shard,
            sample_every,
            seen: 0,
            events: Vec::new(),
        }
    }

    /// The shard this log belongs to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of events kept (after sampling).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were kept.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The kept events, in shard-local offer order.
    pub fn events(&self) -> &[ShardTraceEvent] {
        &self.events
    }

    /// Offers one event to the log; it is kept if it falls on the
    /// sampling grid. `seq` is the shard-local offer count, so merged
    /// output is stable however the run was parallelised.
    pub fn push(&mut self, at_ns: u64, kind: &'static str, host: u64, detail: u64) {
        let seq = self.seen;
        self.seen += 1;
        if self.sample_every == 0 || seq % self.sample_every != 0 {
            return;
        }
        self.events.push(ShardTraceEvent {
            at_ns,
            seq,
            kind,
            host,
            detail,
        });
    }

    /// Merges per-shard logs into one JSONL export, one JSON object per
    /// event, ordered by `(at_ns, shard, seq)` — the mailbox merge key.
    pub fn merge_to_jsonl(logs: &[ShardEventLog]) -> String {
        let mut rows: Vec<(u64, u32, u64, &ShardTraceEvent)> = logs
            .iter()
            .flat_map(|log| {
                log.events
                    .iter()
                    .map(move |e| (e.at_ns, log.shard, e.seq, e))
            })
            .collect();
        rows.sort_by_key(|&(at, shard, seq, _)| (at, shard, seq));
        let mut out = String::new();
        for (at, shard, seq, e) in rows {
            out.push_str(&format!(
                "{{\"at_ns\":{at},\"shard\":{shard},\"seq\":{seq},\"kind\":\"{}\",\"host\":{},\"detail\":{}}}\n",
                json_escape(e.kind),
                e.host,
                e.detail,
            ));
        }
        out
    }
}

impl Trace {
    /// The distinct categories present, sorted.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut cats: Vec<&'static str> = self.spans.iter().map(|s| s.category).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Chrome-trace ("trace event format") JSON, loadable in Perfetto and
    /// `chrome://tracing`. Complete events (`"ph":"X"`) with microsecond
    /// timestamps; span tags land in `args`. Output is deterministic:
    /// events sorted by `(start, id)`, integers formatted in base 10.
    pub fn to_chrome_json(&self) -> String {
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&i| (self.spans[i].start_ns, self.spans[i].id));
        let mut out = String::from("{\"traceEvents\":[");
        for (n, &i) in order.iter().enumerate() {
            let s = &self.spans[i];
            if n > 0 {
                out.push(',');
            }
            // Virtual ns map to trace-format us with 3 exact decimals.
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":0,\"tid\":{},\"args\":{{\"id\":{}",
                json_escape(s.name),
                json_escape(s.category),
                s.start_ns / 1000,
                s.start_ns % 1000,
                s.duration().as_nanos() / 1000,
                s.duration().as_nanos() % 1000,
                if s.kind == SpanKind::Async { 1 } else { 0 },
                s.id,
            ));
            for (k, v) in &s.tags {
                out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Compact JSONL event log: one JSON object per span, in id order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"cat\":\"{}\",\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"kind\":\"{}\"",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                json_escape(s.category),
                json_escape(s.name),
                s.start_ns,
                s.end_ns,
                if s.kind == SpanKind::Async { "async" } else { "sync" },
            ));
            if !s.tags.is_empty() {
                out.push_str(",\"tags\":{");
                for (i, (k, v)) in s.tags.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
                }
                out.push('}');
            }
            out.push_str("}\n");
        }
        out
    }

    /// Rolls sync spans up into per-category *exclusive* (self) time over
    /// a run window of `total` simulated time. Every nanosecond of the
    /// window lands in exactly one row: a span's time minus its sync
    /// children is attributed to its category, and window time covered by
    /// no span at all lands in the `(untraced)` row — so the rows always
    /// sum to `total` exactly.
    pub fn attribution(&self, total: SimDuration) -> Attribution {
        // Sum each span's direct sync children.
        let mut child_ns: Vec<u64> = vec![0; self.spans.len()];
        for s in &self.spans {
            if s.kind != SpanKind::Sync {
                continue;
            }
            if let Some(p) = s.parent {
                // An async parent does not count sync children; walk up to
                // the nearest sync ancestor instead.
                let mut anc = Some(p);
                while let Some(a) = anc {
                    if self.spans[a as usize].kind == SpanKind::Sync {
                        child_ns[a as usize] += s.duration().as_nanos();
                        break;
                    }
                    anc = self.spans[a as usize].parent;
                }
            }
        }
        let mut rows: BTreeMap<(&'static str, &'static str), AttributionRow> = BTreeMap::new();
        let mut traced_ns = 0u64;
        for s in &self.spans {
            if s.kind != SpanKind::Sync {
                continue;
            }
            let self_ns = s
                .duration()
                .as_nanos()
                .saturating_sub(child_ns[s.id as usize]);
            let row = rows.entry((s.category, s.name)).or_insert(AttributionRow {
                category: s.category,
                name: s.name,
                self_ns: 0,
                count: 0,
            });
            row.self_ns += self_ns;
            row.count += 1;
            // Only top-level spans contribute their full duration to the
            // traced window (children are inside them).
            if s.parent.is_none() {
                traced_ns += s.duration().as_nanos();
            }
        }
        let mut rows: Vec<AttributionRow> = rows.into_values().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.category.cmp(b.category)));
        Attribution {
            rows,
            untraced_ns: total.as_nanos().saturating_sub(traced_ns),
            total_ns: total.as_nanos(),
        }
    }
}

/// One attribution row: exclusive time of `(category, name)`.
#[derive(Debug, Clone)]
pub struct AttributionRow {
    /// Component category.
    pub category: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// Exclusive (self) simulated nanoseconds.
    pub self_ns: u64,
    /// Number of spans.
    pub count: u64,
}

/// Per-category/operation breakdown of a run's simulated time. Rows plus
/// the untraced remainder sum to the run total exactly.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Rows sorted by descending self time.
    pub rows: Vec<AttributionRow>,
    /// Window time not covered by any span (application compute, etc.).
    pub untraced_ns: u64,
    /// The run window this attribution covers.
    pub total_ns: u64,
}

impl Attribution {
    /// Sum of all rows plus the untraced remainder, in nanoseconds.
    /// Equals `total_ns` by construction.
    pub fn accounted_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.self_ns).sum::<u64>() + self.untraced_ns
    }

    /// Self time of one category summed over its operations.
    pub fn category_ns(&self, category: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.category == category)
            .map(|r| r.self_ns)
            .sum()
    }
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>12} {:>8} {:>10}",
            "component", "self-us", "count", "share"
        )?;
        let pct = |ns: u64| {
            if self.total_ns == 0 {
                0.0
            } else {
                100.0 * ns as f64 / self.total_ns as f64
            }
        };
        for row in &self.rows {
            writeln!(
                f,
                "{:<28} {:>12.1} {:>8} {:>9.1}%",
                format!("{}.{}", row.category, row.name),
                row.self_ns as f64 / 1e3,
                row.count,
                pct(row.self_ns)
            )?;
        }
        writeln!(
            f,
            "{:<28} {:>12.1} {:>8} {:>9.1}%",
            "(untraced)",
            self.untraced_ns as f64 / 1e3,
            "-",
            pct(self.untraced_ns)
        )?;
        write!(
            f,
            "{:<28} {:>12.1} {:>8} {:>9.1}%",
            "total",
            self.total_ns as f64 / 1e3,
            "-",
            pct(self.accounted_ns())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimClock;

    #[test]
    fn disabled_tracer_records_nothing() {
        let clock = SimClock::new();
        {
            let span = clock.tracer().span("net", "write");
            span.tag("bytes", 1);
            clock.advance(SimDuration::from_micros(1));
        }
        assert!(clock.tracer().is_empty());
        assert!(!clock.tracer().is_enabled());
    }

    #[test]
    fn spans_stamp_virtual_time() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_micros(5));
        clock.tracer().enable();
        {
            let _span = clock.tracer().span("disk", "load");
            clock.advance(SimDuration::from_micros(7));
        }
        let trace = clock.tracer().finish();
        assert_eq!(trace.spans[0].start_ns, 5_000);
        assert_eq!(trace.spans[0].end_ns, 12_000);
        assert_eq!(trace.spans[0].parent, None);
    }

    #[test]
    fn nesting_links_parents() {
        let clock = SimClock::new();
        clock.tracer().enable();
        {
            let _outer = clock.tracer().span("core", "put");
            clock.advance(SimDuration::from_micros(1));
            {
                let _inner = clock.tracer().span("net", "write");
                clock.advance(SimDuration::from_micros(2));
            }
            clock.advance(SimDuration::from_micros(3));
        }
        let trace = clock.tracer().finish();
        assert_eq!(trace.spans.len(), 2);
        let outer = &trace.spans[0];
        let inner = &trace.spans[1];
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.duration().as_micros_f64(), 6.0);
        assert_eq!(inner.duration().as_micros_f64(), 2.0);
        assert_eq!(trace.categories(), vec!["core", "net"]);
    }

    #[test]
    fn attribution_is_exclusive_and_sums_to_total() {
        let clock = SimClock::new();
        clock.tracer().enable();
        let t0 = clock.now();
        {
            let _outer = clock.tracer().span("core", "put");
            clock.advance(SimDuration::from_micros(1));
            {
                let _inner = clock.tracer().span("net", "write");
                clock.advance(SimDuration::from_micros(2));
            }
        }
        clock.advance(SimDuration::from_micros(4)); // untraced compute
        let total = clock.now() - t0;
        let attribution = clock.tracer().finish().attribution(total);
        assert_eq!(attribution.category_ns("core"), 1_000, "self time only");
        assert_eq!(attribution.category_ns("net"), 2_000);
        assert_eq!(attribution.untraced_ns, 4_000);
        assert_eq!(attribution.accounted_ns(), total.as_nanos());
        assert!(!attribution.to_string().is_empty());
    }

    #[test]
    fn async_spans_export_but_do_not_attribute() {
        let clock = SimClock::new();
        clock.tracer().enable();
        let t0 = clock.now();
        clock.advance(SimDuration::from_micros(1));
        clock.tracer().record_async(
            "net",
            "transfer",
            SimInstant::from_nanos(0),
            SimInstant::from_nanos(10_000),
            &[("bytes", 4096)],
        );
        let total = clock.now() - t0;
        let trace = clock.tracer().finish();
        assert!(trace.to_chrome_json().contains("transfer"));
        let attribution = trace.attribution(total);
        assert_eq!(attribution.category_ns("net"), 0);
        assert_eq!(attribution.untraced_ns, 1_000);
    }

    #[test]
    fn shard_event_log_merges_on_mailbox_order() {
        let mut a = ShardEventLog::new(0, 1);
        let mut b = ShardEventLog::new(1, 1);
        a.push(20, "read", 1, 100);
        a.push(10, "read", 2, 200);
        b.push(10, "write", 3, 300);
        let merged = ShardEventLog::merge_to_jsonl(&[a.clone(), b.clone()]);
        let lines: Vec<&str> = merged.lines().collect();
        assert_eq!(lines.len(), 3);
        // Tie at 10ns: shard 0 before shard 1; then 20ns.
        assert!(lines[0].contains("\"shard\":0") && lines[0].contains("\"at_ns\":10"));
        assert!(lines[1].contains("\"shard\":1") && lines[1].contains("\"at_ns\":10"));
        assert!(lines[2].contains("\"at_ns\":20"));
        // Merge order of the input slice is irrelevant.
        assert_eq!(merged, ShardEventLog::merge_to_jsonl(&[b, a]));
    }

    #[test]
    fn shard_event_log_samples_deterministically() {
        let mut log = ShardEventLog::new(2, 4);
        for i in 0..16 {
            log.push(i, "e", i, 0);
        }
        assert_eq!(log.len(), 4, "one in four kept");
        let off = ShardEventLog::new(0, 0);
        assert!(off.is_empty());
        assert_eq!(log.shard(), 2);
    }

    #[test]
    fn exports_are_deterministic_and_escaped() {
        let build = || {
            let clock = SimClock::new();
            clock.tracer().enable();
            {
                let span = clock.tracer().span("swap", "in");
                span.tag("note", "a\"b\\c");
                clock.advance(SimDuration::from_micros(2));
            }
            let trace = clock.tracer().finish();
            (trace.to_chrome_json(), trace.to_jsonl())
        };
        let (json_a, jsonl_a) = build();
        let (json_b, jsonl_b) = build();
        assert_eq!(json_a, json_b);
        assert_eq!(jsonl_a, jsonl_b);
        assert!(json_a.contains("a\\\"b\\\\c"));
        assert!(jsonl_a.ends_with('\n'));
    }

    #[test]
    fn finish_resets_collection() {
        let clock = SimClock::new();
        clock.tracer().enable();
        {
            let _s = clock.tracer().span("a", "b");
        }
        assert_eq!(clock.tracer().finish().spans.len(), 1);
        assert!(clock.tracer().is_empty());
        assert_eq!(clock.tracer().finish().spans.len(), 0);
    }

    #[test]
    fn clones_share_the_collector() {
        let clock = SimClock::new();
        let view = clock.clone();
        clock.tracer().enable();
        assert!(view.tracer().is_enabled());
        {
            let _s = view.tracer().span("x", "y");
        }
        assert_eq!(clock.tracer().len(), 1);
    }
}
