//! Deterministic simulation substrate for the disaggregated memory system.
//!
//! Every mechanism crate charges device costs (DRAM copies, RDMA round
//! trips, disk accesses) against a shared virtual [`SimClock`] instead of
//! wall time, so whole-cluster experiments run in milliseconds and produce
//! bit-identical results for a given seed.
//!
//! The module map:
//!
//! * [`time`] — [`SimDuration`] and [`SimInstant`] newtypes.
//! * [`clock`] — the shared atomic virtual clock.
//! * [`cost`] — calibrated latency/bandwidth models for DRAM, node
//!   shared memory, RDMA, SSD and HDD (DESIGN.md "cost model constants").
//! * [`rng`] — deterministic per-component random streams.
//! * [`failure`] — scheduled node/link failure injection.
//! * [`metrics`] — counters, gauges and log-bucket histograms.
//! * [`events`] — a small discrete-event queue for timers (heartbeats,
//!   re-replication, eviction scans).
//! * [`trace`] — deterministic virtual-clock spans, time attribution and
//!   Chrome-trace/Perfetto + JSONL exporters.
//! * [`timeseries`] — windowed counter/histogram sampling on the virtual
//!   clock, per-shard window merging and CSV/JSONL timeline export.
//! * [`alerts`] — a deterministic alerting engine (multi-window SLO burn
//!   rate, counter storms) with an FNV-digested firing/resolved log.
//! * [`flight`] — a bounded flight recorder dumped when invariants fail.
//! * [`jsonlite`] — a dependency-free JSON parser used to validate
//!   exported traces.
//!
//! # Examples
//!
//! ```
//! use dmem_sim::{CostModel, SimClock};
//!
//! let clock = SimClock::new();
//! let model = CostModel::paper_default();
//! clock.advance(model.rdma.transfer(4096)); // one remote 4 KiB page
//! clock.advance(model.hdd.transfer(4096)); // one disk page
//! // The disk op dominates by ~3 orders of magnitude:
//! assert!(clock.now().nanos() > 1_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alerts;
pub mod chaos;
pub mod clock;
pub mod cost;
pub mod events;
pub mod failure;
pub mod flight;
pub mod jsonlite;
pub mod metrics;
pub mod rng;
pub mod shard;
pub mod time;
pub mod timeseries;
pub mod trace;

pub use alerts::{AlertEdge, AlertEngine, AlertEvent, AlertRule};
pub use chaos::{ChaosConfig, ChaosSchedule, ChaosStep};
pub use flight::{FlightEvent, FlightRecorder};
pub use clock::{ShardClock, SimClock};
pub use cost::{CostModel, DeviceCost};
pub use events::EventQueue;
pub use failure::{FailureEvent, FailureInjector};
pub use metrics::{
    AllocCounterSet, AllocTelemetry, Counter, Gauge, Histogram, HistogramSummary, LocalMetrics,
    MetricsRegistry,
};
pub use rng::{splitmix64, DetRng};
pub use shard::{
    merge_envelopes, shard_rng, EngineReport, Envelope, EpochCtx, ShardId, ShardMap, ShardWorker,
    ShardedEngine,
};
pub use time::{SimDuration, SimInstant};
pub use timeseries::{
    sparkline, MetricWindow, ShardSampler, ShardWindow, TelemetryHub, Timeline, WindowHistogram,
};
pub use trace::{
    Attribution, AttributionRow, ShardEventLog, ShardTraceEvent, SpanGuard, SpanKind, SpanRecord,
    Trace, Tracer,
};
