//! Windowed time-series telemetry on the virtual clock.
//!
//! End-of-run counters (PR 3) answer *how much*; this module answers
//! *when*. A [`TelemetryHub`] samples one or more [`MetricsRegistry`]
//! instances every configurable virtual-time window, capturing per-window
//! counter deltas and histogram quantile summaries (p50/p99/max from the
//! diff of two bucket snapshots), and a [`ShardSampler`] does the same
//! for a shard's private [`LocalMetrics`] buffer inside the sharded
//! engine's event loop. Per-shard windows merge in `(window, shard)`
//! order — the same total order as the engine's mailboxes — so a rack
//! run produces a byte-identical [`Timeline`] at every worker count.
//!
//! Everything is integer math on the virtual clock: window boundaries
//! are multiples of the window width, quantiles are log₂ bucket upper
//! bounds, and exports ([`Timeline::to_csv`], [`Timeline::to_jsonl`])
//! are deterministic text. The disabled path of [`TelemetryHub::tick`]
//! is a single relaxed atomic load, mirroring the tracer's
//! zero-cost-when-off contract.
//!
//! [`MetricsRegistry`]: crate::metrics::MetricsRegistry
//! [`LocalMetrics`]: crate::metrics::LocalMetrics

use crate::alerts::{AlertEngine, AlertEvent, AlertRule};
use crate::flight::FlightRecorder;
use crate::metrics::{Histogram, LocalMetrics, MetricsRegistry};
use crate::time::{SimDuration, SimInstant};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Per-window summary of one histogram: observation count inside the
/// window plus log₂-bucket quantile bounds of just those observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHistogram {
    /// Metric name.
    pub name: String,
    /// Observations recorded inside the window.
    pub count: u64,
    /// Median bucket upper bound of the window's observations.
    pub p50: u64,
    /// 99th-percentile bucket upper bound of the window's observations.
    pub p99: u64,
    /// Upper bound of the window's highest non-empty bucket.
    pub max: u64,
    /// Raw per-window bucket counts — kept for the alerting engine's
    /// burn-rate rules (fraction of observations over an SLO bound);
    /// not exported to CSV/JSONL.
    pub buckets: Box<[u64; 65]>,
}

impl WindowHistogram {
    /// Builds a summary from a window's bucket-count diff.
    pub fn from_counts(name: &str, counts: [u64; 65]) -> Self {
        WindowHistogram {
            name: name.to_owned(),
            count: counts.iter().sum(),
            p50: Histogram::quantile_of_counts(&counts, 0.5),
            p99: Histogram::quantile_of_counts(&counts, 0.99),
            max: Histogram::max_bound_of_counts(&counts),
            buckets: Box::new(counts),
        }
    }

    /// Observations in this window certainly above `threshold` (total of
    /// every bucket whose lower bound is at or above it).
    pub fn count_over(&self, threshold: u64) -> u64 {
        Histogram::count_over_counts(&self.buckets, threshold)
    }
}

/// One captured window: the half-open virtual-time span
/// `[start_ns, end_ns)`, the counter increments inside it, and a
/// [`WindowHistogram`] per histogram that saw observations.
///
/// `index` is the grid slot of the window's *end* boundary
/// (`end_ns / window - 1`): captures always close on a grid boundary,
/// but a capture that observes several elapsed slots at once spans them
/// all, so `end_ns - start_ns` is a multiple of the window width ≥ 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricWindow {
    /// Grid slot of the window's end boundary.
    pub index: u64,
    /// Inclusive start of the span, in virtual nanoseconds.
    pub start_ns: u64,
    /// Exclusive end of the span, in virtual nanoseconds.
    pub end_ns: u64,
    /// Counter deltas inside the window, name-sorted, zeros omitted.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries inside the window, name-sorted, empties omitted.
    pub histograms: Vec<WindowHistogram>,
}

impl MetricWindow {
    /// `true` when the window saw no counter increments and no
    /// histogram observations.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Delta of the named counter in this window (zero if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The named histogram's window summary, if it saw observations.
    pub fn histogram(&self, name: &str) -> Option<&WindowHistogram> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// One-line rendering used by the flight recorder's window ring.
    pub fn brief(&self) -> String {
        let mut line = format!("w{} [{}..{}ns)", self.index, self.start_ns, self.end_ns);
        for (name, v) in &self.counters {
            write!(line, " {name}=+{v}").unwrap();
        }
        for h in &self.histograms {
            write!(line, " {}:n={},p99={}", h.name, h.count, h.p99).unwrap();
        }
        line
    }
}

/// An ordered sequence of [`MetricWindow`]s with deterministic CSV and
/// JSONL exports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Captured windows, in increasing `index` order.
    pub windows: Vec<MetricWindow>,
}

impl Timeline {
    /// Merges per-shard windows into one timeline in `(window index,
    /// shard)` order — the sharded engine's mailbox order — folding the
    /// [`LocalMetrics`] deltas of shards that share a grid slot. The
    /// fold leans on `merge_counts` being commutative and associative,
    /// so the result is independent of the input ordering and of how
    /// the run was parallelised.
    pub fn merge_shards(window_ns: u64, mut shard_windows: Vec<ShardWindow>) -> Timeline {
        shard_windows.sort_by_key(|w| (w.index, w.shard));
        let mut out = Timeline::default();
        let mut i = 0;
        while i < shard_windows.len() {
            let index = shard_windows[i].index;
            let mut start_ns = u64::MAX;
            let mut merged = LocalMetrics::new();
            while i < shard_windows.len() && shard_windows[i].index == index {
                start_ns = start_ns.min(shard_windows[i].start_ns);
                merged.merge_from(&shard_windows[i].delta);
                i += 1;
            }
            out.windows.push(window_from_local(
                index,
                start_ns,
                (index + 1) * window_ns,
                &merged,
            ));
        }
        out
    }

    /// Per-window deltas of the named counter (zero where absent).
    pub fn counter_series(&self, name: &str) -> Vec<u64> {
        self.windows.iter().map(|w| w.counter(name)).collect()
    }

    /// Per-window p99 of the named histogram (zero where absent).
    pub fn p99_series(&self, name: &str) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.histogram(name).map_or(0, |h| h.p99))
            .collect()
    }

    /// Per-window observation count of the named histogram.
    pub fn count_series(&self, name: &str) -> Vec<u64> {
        self.windows
            .iter()
            .map(|w| w.histogram(name).map_or(0, |h| h.count))
            .collect()
    }

    /// All metric names appearing anywhere in the timeline, sorted, as
    /// `(name, is_histogram)` pairs.
    pub fn series_names(&self) -> Vec<(String, bool)> {
        let mut names: BTreeMap<String, bool> = BTreeMap::new();
        for w in &self.windows {
            for (n, _) in &w.counters {
                names.entry(n.clone()).or_insert(false);
            }
            for h in &w.histograms {
                names.insert(h.name.clone(), true);
            }
        }
        names.into_iter().collect()
    }

    /// Deterministic CSV export: one row per (window, metric), counters
    /// before histograms inside each window, names sorted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("window,start_ns,end_ns,kind,name,value,p50_ns,p99_ns,max_ns\n");
        for w in &self.windows {
            for (name, v) in &w.counters {
                writeln!(
                    out,
                    "{},{},{},counter,{name},{v},,,",
                    w.index, w.start_ns, w.end_ns
                )
                .unwrap();
            }
            for h in &w.histograms {
                writeln!(
                    out,
                    "{},{},{},histogram,{},{},{},{},{}",
                    w.index, w.start_ns, w.end_ns, h.name, h.count, h.p50, h.p99, h.max
                )
                .unwrap();
            }
        }
        out
    }

    /// Deterministic JSONL export: one JSON object per window, keys
    /// sorted, parseable back through [`crate::jsonlite`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            write!(
                out,
                "{{\"window\":{},\"start_ns\":{},\"end_ns\":{},\"counters\":{{",
                w.index, w.start_ns, w.end_ns
            )
            .unwrap();
            for (i, (name, v)) in w.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(out, "\"{name}\":{v}").unwrap();
            }
            out.push_str("},\"histograms\":{");
            for (i, h) in w.histograms.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write!(
                    out,
                    "\"{}\":{{\"count\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                    h.name, h.count, h.p50, h.p99, h.max
                )
                .unwrap();
            }
            out.push_str("}}\n");
        }
        out
    }
}

/// Renders `values` as a unicode sparkline, scaled to the series
/// maximum with pure integer math (deterministic across platforms).
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 || v == 0 {
                BARS[0]
            } else {
                // Ceil-scaled into 1..=7 extra steps so any nonzero
                // value is visibly above the baseline.
                BARS[(1 + (v - 1) * 7 / max).min(7) as usize]
            }
        })
        .collect()
}

/// Builds a [`MetricWindow`] from a [`LocalMetrics`] delta buffer.
fn window_from_local(index: u64, start_ns: u64, end_ns: u64, delta: &LocalMetrics) -> MetricWindow {
    let mut histograms = Vec::new();
    delta.for_each_histogram(|name, counts| {
        if counts.iter().any(|&c| c > 0) {
            histograms.push(WindowHistogram::from_counts(name, *counts));
        }
    });
    MetricWindow {
        index,
        start_ns,
        end_ns,
        counters: delta
            .counter_snapshot()
            .into_iter()
            .filter(|&(_, v)| v > 0)
            .collect(),
        histograms,
    }
}

/// A windowed sampler over one shard's private [`LocalMetrics`] buffer.
///
/// The shard calls [`ShardSampler::tick`] from its deterministic local
/// event loop (event times are worker-count independent, so capture
/// points are too) and [`ShardSampler::finish`] once at quiescence; the
/// coordinator then merges every shard's windows with
/// [`Timeline::merge_shards`]. A `window` of zero disables the sampler
/// entirely — ticks return immediately and no windows are kept.
#[derive(Debug, Clone)]
pub struct ShardSampler {
    shard: u32,
    window_ns: u64,
    last_boundary_ns: u64,
    prev: LocalMetrics,
    windows: Vec<ShardWindow>,
}

/// One shard-local captured window, merged by `(index, shard)`.
#[derive(Debug, Clone)]
pub struct ShardWindow {
    /// Grid slot of the window's end boundary.
    pub index: u64,
    /// Inclusive start of the span, in virtual nanoseconds.
    pub start_ns: u64,
    /// Exclusive end of the span, in virtual nanoseconds.
    pub end_ns: u64,
    /// The shard that captured it.
    pub shard: u32,
    /// Metric increments inside the span.
    pub delta: LocalMetrics,
}

impl ShardSampler {
    /// Creates a sampler for `shard` with the given window width
    /// (`SimDuration::ZERO` disables).
    pub fn new(shard: u32, window: SimDuration) -> Self {
        ShardSampler {
            shard,
            window_ns: window.as_nanos(),
            last_boundary_ns: 0,
            prev: LocalMetrics::new(),
            windows: Vec::new(),
        }
    }

    /// `true` when the sampler keeps windows.
    pub fn enabled(&self) -> bool {
        self.window_ns != 0
    }

    /// Offers the current shard time and metrics buffer; captures a
    /// window when `now_ns` has crossed a grid boundary.
    pub fn tick(&mut self, now_ns: u64, metrics: &LocalMetrics) {
        if self.window_ns == 0 {
            return;
        }
        let boundary = now_ns / self.window_ns * self.window_ns;
        if boundary > self.last_boundary_ns {
            self.capture(boundary, metrics);
        }
    }

    /// Closes the final (possibly partial) window at quiescence and
    /// returns every captured window. The end boundary rounds *up* to
    /// the grid so the tail of the run is never dropped.
    pub fn finish(mut self, now_ns: u64, metrics: &LocalMetrics) -> Vec<ShardWindow> {
        if self.window_ns != 0 {
            let end = now_ns.div_ceil(self.window_ns).max(1) * self.window_ns;
            if end > self.last_boundary_ns {
                self.capture(end, metrics);
            }
        }
        self.windows
    }

    fn capture(&mut self, boundary_ns: u64, metrics: &LocalMetrics) {
        let delta = metrics.delta_since(&self.prev);
        if !delta.is_empty() {
            self.windows.push(ShardWindow {
                index: boundary_ns / self.window_ns - 1,
                start_ns: self.last_boundary_ns,
                end_ns: boundary_ns,
                shard: self.shard,
                delta,
            });
        }
        self.prev = metrics.clone();
        self.last_boundary_ns = boundary_ns;
    }
}

/// Shared state behind the hub's mutex.
#[derive(Debug, Default)]
struct HubInner {
    registries: Vec<MetricsRegistry>,
    prev_counters: BTreeMap<String, u64>,
    prev_buckets: BTreeMap<String, [u64; 65]>,
    last_boundary_ns: u64,
    windows: Vec<MetricWindow>,
    alerts: AlertEngine,
    flight: FlightRecorder,
}

/// The windowed telemetry sampler for shared [`MetricsRegistry`]
/// instances, with an embedded [`AlertEngine`] and [`FlightRecorder`].
///
/// Installed on a `DisaggregatedMemory` (which gives the maintenance
/// loop a tick source) or driven directly by a benchmark loop. Strictly
/// opt-in: [`TelemetryHub::tick`] on a disarmed hub is a single relaxed
/// atomic load, and nothing installs one by default — so untraced runs
/// execute byte-identical event sequences.
#[derive(Debug)]
pub struct TelemetryHub {
    armed: AtomicBool,
    window_ns: u64,
    inner: Mutex<HubInner>,
}

impl TelemetryHub {
    /// Creates an armed hub capturing every `window` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero — a disabled hub is expressed by not
    /// installing one.
    pub fn new(window: SimDuration) -> Self {
        assert!(
            window.as_nanos() > 0,
            "telemetry window must be nonzero (leave the hub uninstalled to disable)"
        );
        TelemetryHub {
            armed: AtomicBool::new(true),
            window_ns: window.as_nanos(),
            inner: Mutex::new(HubInner::default()),
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_nanos(self.window_ns)
    }

    /// Adds a registry to sample. Metrics with the same name in several
    /// registries are summed per window (registries are disjoint by
    /// convention: `core.*`/`qos.*` vs `net.*`/`faults.*`).
    pub fn add_registry(&self, registry: MetricsRegistry) {
        self.inner.lock().registries.push(registry);
    }

    /// Replaces the alert rule set (clearing any rule state).
    pub fn set_rules(&self, rules: Vec<AlertRule>) {
        self.inner.lock().alerts = AlertEngine::new(rules);
    }

    /// Pauses/resumes sampling. While disarmed, `tick` costs exactly
    /// one relaxed atomic load.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::Relaxed);
    }

    /// Offers the current virtual time; captures one window (and
    /// evaluates alert rules on it) when a grid boundary has been
    /// crossed. Returns the number of windows captured (0 or 1).
    pub fn tick(&self, now: SimInstant) -> usize {
        if !self.armed.load(Ordering::Relaxed) {
            return 0;
        }
        let now_ns = now.nanos();
        let mut inner = self.inner.lock();
        let boundary = now_ns / self.window_ns * self.window_ns;
        if boundary <= inner.last_boundary_ns {
            return 0;
        }
        self.capture(&mut inner, boundary);
        1
    }

    /// Closes the final (possibly partial) window, rounding the end
    /// boundary up to the grid. Call once at the end of the run.
    pub fn flush(&self, now: SimInstant) {
        if !self.armed.load(Ordering::Relaxed) {
            return;
        }
        let mut inner = self.inner.lock();
        let end = now.nanos().div_ceil(self.window_ns).max(1) * self.window_ns;
        if end > inner.last_boundary_ns {
            self.capture(&mut inner, end);
        }
    }

    fn capture(&self, inner: &mut HubInner, boundary_ns: u64) {
        // Aggregate current counter values and bucket counts across all
        // registries (each snapshot is name-sorted; the fold is by name,
        // so registry order does not matter).
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut buckets: BTreeMap<String, [u64; 65]> = BTreeMap::new();
        for reg in &inner.registries {
            for (name, v) in reg.counter_snapshot() {
                *counters.entry(name).or_insert(0) += v;
            }
            for (name, counts) in reg.bucket_snapshot() {
                let slot = buckets.entry(name).or_insert([0; 65]);
                for (a, b) in slot.iter_mut().zip(counts.iter()) {
                    *a += b;
                }
            }
        }
        let mut window = MetricWindow {
            index: boundary_ns / self.window_ns - 1,
            start_ns: inner.last_boundary_ns,
            end_ns: boundary_ns,
            counters: Vec::new(),
            histograms: Vec::new(),
        };
        for (name, &v) in &counters {
            let delta = v - inner.prev_counters.get(name).copied().unwrap_or(0);
            if delta > 0 {
                window.counters.push((name.clone(), delta));
            }
        }
        for (name, counts) in &buckets {
            let mut delta = [0u64; 65];
            let prev = inner.prev_buckets.get(name);
            let mut any = false;
            for i in 0..65 {
                delta[i] = counts[i] - prev.map_or(0, |p| p[i]);
                any |= delta[i] != 0;
            }
            if any {
                window
                    .histograms
                    .push(WindowHistogram::from_counts(name, delta));
            }
        }
        inner.prev_counters = counters;
        inner.prev_buckets = buckets;
        inner.last_boundary_ns = boundary_ns;
        inner.alerts.observe(&window);
        inner.flight.push_window(&window);
        inner.windows.push(window);
    }

    /// Copy of the captured timeline so far.
    pub fn timeline(&self) -> Timeline {
        Timeline {
            windows: self.inner.lock().windows.clone(),
        }
    }

    /// Ordered alert log lines emitted so far (firing/resolved edges).
    pub fn alert_log(&self) -> Vec<String> {
        self.inner.lock().alerts.log().to_vec()
    }

    /// Ordered alert events emitted so far.
    pub fn alert_events(&self) -> Vec<AlertEvent> {
        self.inner.lock().alerts.events().to_vec()
    }

    /// FNV digest of the alert log (`n=<lines> fnv=<hash>`).
    pub fn alert_digest(&self) -> String {
        self.inner.lock().alerts.digest()
    }

    /// Appends a note to the embedded flight recorder's event ring.
    pub fn flight_note(&self, at_ns: u64, kind: &'static str, detail: String) {
        self.inner.lock().flight.note(at_ns, kind, detail);
    }

    /// Renders the embedded flight recorder's dump.
    pub fn flight_dump(&self, reason: &str) -> String {
        self.inner.lock().flight.dump(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(ns: u64) -> SimInstant {
        let clock = crate::SimClock::new();
        clock.advance(SimDuration::from_nanos(ns));
        clock.now()
    }

    #[test]
    fn hub_captures_window_deltas() {
        let reg = MetricsRegistry::new();
        let hub = TelemetryHub::new(SimDuration::from_nanos(100));
        hub.add_registry(reg.clone());
        reg.counter("ops").add(3);
        reg.histogram("lat").record(16);
        assert_eq!(hub.tick(instant(50)), 0, "no boundary crossed yet");
        assert_eq!(hub.tick(instant(100)), 1);
        reg.counter("ops").add(2);
        reg.histogram("lat").record(64);
        reg.histogram("lat").record(64);
        hub.flush(instant(130));
        let t = hub.timeline();
        assert_eq!(t.windows.len(), 2);
        assert_eq!(t.windows[0].counter("ops"), 3);
        assert_eq!(t.windows[0].histogram("lat").unwrap().p99, 16);
        assert_eq!(t.windows[1].index, 1);
        assert_eq!(t.windows[1].start_ns, 100);
        assert_eq!(t.windows[1].end_ns, 200, "flush rounds up to the grid");
        assert_eq!(t.windows[1].counter("ops"), 2);
        let h = t.windows[1].histogram("lat").unwrap();
        assert_eq!((h.count, h.p50, h.max), (2, 64, 64));
    }

    #[test]
    fn hub_skip_emits_single_spanning_window() {
        let reg = MetricsRegistry::new();
        let hub = TelemetryHub::new(SimDuration::from_nanos(100));
        hub.add_registry(reg.clone());
        reg.counter("ops").inc();
        // Time jumps over four boundaries before the next tick: the
        // capture spans all of them as one window ending on the grid.
        assert_eq!(hub.tick(instant(450)), 1);
        let t = hub.timeline();
        assert_eq!(t.windows.len(), 1);
        assert_eq!(t.windows[0].index, 3);
        assert_eq!(t.windows[0].start_ns, 0);
        assert_eq!(t.windows[0].end_ns, 400);
    }

    #[test]
    fn disarmed_tick_is_inert() {
        let hub = TelemetryHub::new(SimDuration::from_nanos(100));
        hub.arm(false);
        assert_eq!(hub.tick(instant(10_000)), 0);
        assert!(hub.timeline().windows.is_empty());
    }

    #[test]
    fn shard_merge_is_input_order_independent() {
        let window = SimDuration::from_nanos(100);
        let mut shard_windows = Vec::new();
        for shard in [2u32, 0, 1] {
            let mut sampler = ShardSampler::new(shard, window);
            let mut metrics = LocalMetrics::new();
            metrics.add("ops", u64::from(shard) + 1);
            metrics.record("lat", 1 << shard);
            sampler.tick(150, &metrics);
            metrics.inc("ops");
            shard_windows.extend(sampler.finish(260, &metrics));
        }
        let forward = Timeline::merge_shards(100, shard_windows.clone());
        let mut reversed = shard_windows;
        reversed.reverse();
        let backward = Timeline::merge_shards(100, reversed);
        assert_eq!(forward, backward);
        assert_eq!(forward.windows.len(), 2);
        assert_eq!(forward.windows[0].counter("ops"), 1 + 2 + 3);
        assert_eq!(forward.windows[0].histogram("lat").unwrap().count, 3);
        assert_eq!(forward.windows[1].counter("ops"), 3);
        assert_eq!(forward.to_csv(), backward.to_csv());
        assert_eq!(forward.to_jsonl(), backward.to_jsonl());
    }

    #[test]
    fn disabled_shard_sampler_keeps_nothing() {
        let mut sampler = ShardSampler::new(0, SimDuration::ZERO);
        let mut metrics = LocalMetrics::new();
        metrics.inc("ops");
        sampler.tick(1_000_000, &metrics);
        assert!(!sampler.enabled());
        assert!(sampler.finish(2_000_000, &metrics).is_empty());
    }

    #[test]
    fn csv_and_jsonl_round_trip_shapes() {
        let reg = MetricsRegistry::new();
        let hub = TelemetryHub::new(SimDuration::from_nanos(10));
        hub.add_registry(reg.clone());
        reg.counter("a").add(7);
        reg.histogram("h").record(5);
        hub.flush(instant(10));
        let t = hub.timeline();
        let csv = t.to_csv();
        assert!(csv.starts_with("window,start_ns,end_ns,kind,name,value,"));
        assert!(csv.contains("0,0,10,counter,a,7,,,"));
        assert!(csv.contains("0,0,10,histogram,h,1,"));
        let jsonl = t.to_jsonl();
        let doc = crate::jsonlite::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("window").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("a")).and_then(|v| v.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn sparkline_is_pure_integer_scaling() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[1, 8, 4, 0]), "▂█▄▁");
        // Any nonzero value renders above the baseline glyph.
        assert!(sparkline(&[1, 1_000_000]).starts_with('▂'));
    }
}
