//! A minimal discrete-event queue.
//!
//! Used for periodic background work in the cluster layer: leader
//! heartbeats, idle-memory monitoring, re-replication scans. Events at the
//! same instant pop in scheduling order (FIFO), which keeps simulations
//! deterministic.

use crate::time::SimInstant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A time-ordered queue of events of type `T`.
///
/// # Examples
///
/// ```
/// use dmem_sim::{EventQueue, SimInstant};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimInstant::from_nanos(20), "heartbeat");
/// q.schedule(SimInstant::from_nanos(10), "scan");
/// let due = q.pop_due(SimInstant::from_nanos(15));
/// assert_eq!(due, vec![(SimInstant::from_nanos(10), "scan")]);
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Clone)]
struct Entry<T> {
    at: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at virtual time `at`.
    pub fn schedule(&mut self, at: SimInstant, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
    }

    /// Removes and returns all events due at or before `now`, in time
    /// order (FIFO among ties).
    pub fn pop_due(&mut self, now: SimInstant) -> Vec<(SimInstant, T)> {
        let mut due = Vec::new();
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.at > now {
                break;
            }
            let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
            due.push((entry.at, entry.payload));
        }
        due
    }

    /// Removes and returns the single earliest event strictly before
    /// `end`, if any — the epoch-window variant of [`pop_due`]
    /// (exclusive bound, one event at a time so handlers can schedule
    /// further events inside the same window and still see them pop in
    /// time order).
    ///
    /// [`pop_due`]: EventQueue::pop_due
    pub fn pop_before(&mut self, end: SimInstant) -> Option<(SimInstant, T)> {
        let Reverse(head) = self.heap.peek()?;
        if head.at >= end {
            return None;
        }
        let Reverse(entry) = self.heap.pop().expect("peeked entry exists");
        Some((entry.at, entry.payload))
    }

    /// The time of the next scheduled event, if any.
    pub fn next_at(&self) -> Option<SimInstant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next_at", &self.next_at())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_nanos(30), 3);
        q.schedule(SimInstant::from_nanos(10), 1);
        q.schedule(SimInstant::from_nanos(20), 2);
        let due: Vec<i32> = q
            .pop_due(SimInstant::from_nanos(100))
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert_eq!(due, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let due: Vec<i32> = q.pop_due(t).into_iter().map(|(_, p)| p).collect();
        assert_eq!(due, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn future_events_stay() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_nanos(50), "later");
        assert!(q.pop_due(SimInstant::from_nanos(49)).is_empty());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_at(), Some(SimInstant::from_nanos(50)));
    }

    #[test]
    fn pop_before_is_exclusive_and_single() {
        let mut q = EventQueue::new();
        q.schedule(SimInstant::from_nanos(10), "a");
        q.schedule(SimInstant::from_nanos(10), "b");
        q.schedule(SimInstant::from_nanos(20), "c");
        // Exclusive bound: an event at exactly `end` stays queued.
        assert_eq!(q.pop_before(SimInstant::from_nanos(10)), None);
        assert_eq!(q.pop_before(SimInstant::from_nanos(11)), Some((SimInstant::from_nanos(10), "a")));
        assert_eq!(q.pop_before(SimInstant::from_nanos(11)), Some((SimInstant::from_nanos(10), "b")));
        assert_eq!(q.pop_before(SimInstant::from_nanos(11)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_at(), None);
        assert!(q.pop_due(SimInstant::from_nanos(1)).is_empty());
    }

    proptest! {
        #[test]
        fn prop_pop_due_is_sorted(times in proptest::collection::vec(0u64..1000, 1..50)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimInstant::from_nanos(t), i);
            }
            let due = q.pop_due(SimInstant::from_nanos(2000));
            prop_assert_eq!(due.len(), times.len());
            for w in due.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
            }
        }

        #[test]
        fn prop_partition_respects_now(times in proptest::collection::vec(0u64..1000, 1..50), now in 0u64..1000) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule(SimInstant::from_nanos(t), t);
            }
            let now_i = SimInstant::from_nanos(now);
            let due = q.pop_due(now_i);
            prop_assert!(due.iter().all(|(at, _)| *at <= now_i));
            prop_assert_eq!(due.len() + q.len(), times.len());
        }
    }
}
