//! Workload models for the paper's evaluation (§V, Table 3).
//!
//! The authors drive their systems with ten memory-intensive applications
//! (working sets 25-30 GB, inputs 12-20 GB per virtual server): iterative
//! ML/graph analytics for the completion-time experiments (Fig. 3-7, 10)
//! and key-value/OLTP stores for the throughput experiments (Fig. 8-9).
//! Those binaries are not replayable here, so this crate models each
//! application by what the experiments actually consume:
//!
//! * a **page access trace** — iteration structure, sequential input
//!   sweeps, a zipf-skewed hot set ([`traces`]);
//! * a **page compressibility profile** — per-workload mean/spread used by
//!   the synthetic page generator ([`catalog`]);
//! * for KV stores, an **operation stream** — ETC-like read/write mix and
//!   skew ([`kv`]).
//!
//! # Examples
//!
//! ```
//! use dmem_workloads::{catalog, traces::TraceConfig};
//!
//! let apps = catalog::table3();
//! assert_eq!(apps.len(), 10);
//! let pagerank = catalog::by_name("PageRank").expect("in Table 3");
//! let config = TraceConfig::scaled_from(pagerank, 1024); // 1024-page WS
//! let accesses: Vec<_> = config.generate(7).take(100).collect();
//! assert_eq!(accesses.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod conversation;
pub mod kv;
pub mod traces;
pub mod zipf;

pub use catalog::{AppKind, AppProfile};
pub use conversation::{ConversationConfig, ConversationStream, TurnEvent};
pub use kv::{KvOp, KvWorkload};
pub use traces::{PageAccess, TraceConfig};
pub use zipf::ZipfSampler;
