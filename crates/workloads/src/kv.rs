//! Key-value operation streams (paper Fig. 8-9).
//!
//! The throughput experiments drive Memcached (Facebook's ETC mix), Redis
//! and VoltDB under 50% memory pressure. What the paging layer sees is a
//! stream of get/set operations over a skewed key space, with values that
//! occupy whole pages once the store's heap pages out. [`KvWorkload`]
//! produces that stream deterministically.

use crate::catalog::{AppKind, AppProfile};
use crate::zipf::ZipfSampler;
use dmem_sim::DetRng;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Read of a key.
    Get {
        /// The key touched.
        key: u64,
    },
    /// Write of a key with a value of `len` bytes.
    Set {
        /// The key touched.
        key: u64,
        /// Value size in bytes.
        len: usize,
    },
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match self {
            KvOp::Get { key } | KvOp::Set { key, .. } => *key,
        }
    }

    /// `true` for writes.
    pub fn is_write(&self) -> bool {
        matches!(self, KvOp::Set { .. })
    }
}

/// A deterministic generator of KV operations.
#[derive(Debug, Clone)]
pub struct KvWorkload {
    keys: u64,
    read_fraction: f64,
    sampler: ZipfSampler,
    rng: DetRng,
    /// ETC-style value sizes: mostly small objects, a tail of page-sized
    /// values. `(size, cumulative probability)` pairs.
    value_cdf: Vec<(usize, f64)>,
}

impl KvWorkload {
    /// ETC-like skew exponent.
    pub const ETC_SKEW: f64 = 0.99;

    /// Creates a workload over `keys` keys from an application profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile is not a key-value application or `keys`
    /// is zero.
    pub fn from_profile(profile: &AppProfile, keys: u64, seed: u64) -> Self {
        let AppKind::KeyValue { read_fraction } = profile.kind else {
            panic!("{} is not a key-value application", profile.name);
        };
        Self::new(keys, read_fraction, seed)
    }

    /// Creates a workload with an explicit read fraction.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is zero or `read_fraction` is outside `[0, 1]`.
    pub fn new(keys: u64, read_fraction: f64, seed: u64) -> Self {
        assert!(keys > 0, "key space must be nonempty");
        assert!(
            (0.0..=1.0).contains(&read_fraction),
            "read fraction outside [0, 1]"
        );
        KvWorkload {
            keys,
            read_fraction,
            sampler: ZipfSampler::new(keys as usize, Self::ETC_SKEW),
            rng: DetRng::new(seed),
            // ETC: dominated by sub-KB objects with a page-sized tail.
            value_cdf: vec![(64, 0.40), (256, 0.70), (1024, 0.90), (4096, 1.0)],
        }
    }

    /// Number of keys in the key space.
    pub fn keys(&self) -> u64 {
        self.keys
    }

    /// The configured read fraction.
    pub fn read_fraction(&self) -> f64 {
        self.read_fraction
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let key = self.sampler.sample(&mut self.rng) as u64;
        if self.rng.chance(self.read_fraction) {
            KvOp::Get { key }
        } else {
            let u = self.rng.unit();
            let len = self
                .value_cdf
                .iter()
                .find(|(_, p)| u <= *p)
                .map(|(s, _)| *s)
                .unwrap_or(4096);
            KvOp::Set { key, len }
        }
    }

    /// Generates `n` operations.
    pub fn ops(&mut self, n: usize) -> Vec<KvOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn read_mix_matches_profile() {
        let profile = catalog::by_name("Memcached").unwrap();
        let mut wl = KvWorkload::from_profile(&profile, 10_000, 1);
        let ops = wl.ops(10_000);
        let reads = ops.iter().filter(|o| !o.is_write()).count() as f64 / 10_000.0;
        assert!(
            (reads - 0.95).abs() < 0.02,
            "ETC should be ~95% reads, got {reads:.3}"
        );
    }

    #[test]
    fn voltdb_is_write_heavy() {
        let profile = catalog::by_name("VoltDB").unwrap();
        let mut wl = KvWorkload::from_profile(&profile, 1_000, 2);
        let ops = wl.ops(4_000);
        let writes = ops.iter().filter(|o| o.is_write()).count() as f64 / 4_000.0;
        assert!((writes - 0.50).abs() < 0.05, "VoltDB ~50% writes, got {writes:.3}");
    }

    #[test]
    fn keys_are_skewed() {
        let mut wl = KvWorkload::new(10_000, 0.95, 3);
        let ops = wl.ops(20_000);
        let top100 = ops.iter().filter(|o| o.key() < 100).count() as f64 / 20_000.0;
        assert!(top100 > 0.25, "top-1% keys should carry heavy traffic: {top100:.2}");
    }

    #[test]
    fn value_sizes_from_cdf() {
        let mut wl = KvWorkload::new(100, 0.0, 4); // all writes
        for op in wl.ops(1_000) {
            match op {
                KvOp::Set { len, .. } => {
                    assert!([64, 256, 1024, 4096].contains(&len), "unexpected size {len}")
                }
                KvOp::Get { .. } => panic!("read_fraction 0 must produce only writes"),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = KvWorkload::new(1000, 0.9, 7).ops(100);
        let b = KvWorkload::new(1000, 0.9, 7).ops(100);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a key-value application")]
    fn ml_profile_rejected() {
        let profile = catalog::by_name("PageRank").unwrap();
        let _ = KvWorkload::from_profile(&profile, 10, 0);
    }
}
