//! LLM conversation streams (ROADMAP item 2, MemDis-LLM-style).
//!
//! An LLM serving front-end sees an **open-loop** stream of turn
//! requests: users arrive on their own schedule (Poisson, `lambda_rate`
//! requests per virtual second), each request either opens a new
//! conversation (`new_conv_prob`) or continues a live one, and every
//! turn grows the conversation's KV-cache state by the tokens it
//! prefills and generates. Two kinds of reuse shape the memory system:
//!
//! * **cross-turn** — turn *n* reuses the KV state of turns `0..n`, so a
//!   conversation whose state was dropped must re-prefill its whole
//!   history;
//! * **cross-conversation** — conversations share a small set of system
//!   prompts, so a cached prefix turns the prefill of those tokens into
//!   a fetch.
//!
//! [`ConversationStream`] produces that request stream deterministically
//! on the virtual clock: same seed, same stream, independent of host,
//! thread count, or how the consumer interleaves other RNG draws.

use crate::zipf::ZipfSampler;
use dmem_sim::{DetRng, SimDuration};
use std::collections::HashMap;

/// Shape of an LLM conversation workload.
#[derive(Debug, Clone)]
pub struct ConversationConfig {
    /// Mean arrivals per virtual second (open-loop Poisson process).
    pub lambda_rate: f64,
    /// Probability an arrival opens a new conversation instead of
    /// continuing a live one.
    pub new_conv_prob: f64,
    /// Distinct system prompts shared across conversations.
    pub system_prompts: usize,
    /// Zipf skew over system-prompt popularity.
    pub prompt_skew: f64,
    /// Tokens in every system prompt (the reusable prefix).
    pub prefix_tokens: u32,
    /// Mean user-prompt tokens per turn (uniform in `[m/2, 3m/2)`).
    pub mean_prompt_tokens: u32,
    /// Mean generated tokens per turn (uniform in `[m/2, 3m/2)`).
    pub mean_output_tokens: u32,
    /// Conversations retire after this many turns.
    pub max_turns: u32,
}

impl Default for ConversationConfig {
    fn default() -> Self {
        ConversationConfig {
            lambda_rate: 50.0,
            new_conv_prob: 0.3,
            system_prompts: 8,
            prompt_skew: 0.9,
            prefix_tokens: 512,
            mean_prompt_tokens: 64,
            mean_output_tokens: 192,
            max_turns: 8,
        }
    }
}

/// One turn request, as the serving engine receives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TurnEvent {
    /// Arrival time, as an offset from the stream's start.
    pub at: SimDuration,
    /// Conversation (session) this turn belongs to.
    pub session: u64,
    /// 0-based turn index within the conversation; 0 opens it.
    pub turn: u32,
    /// Which shared system prompt the conversation starts from.
    pub prefix_id: u32,
    /// KV-state tokens accumulated *before* this turn (system prefix
    /// plus all prior turns) — what must be resident to serve it.
    pub context_tokens: u32,
    /// New user-prompt tokens prefilled this turn.
    pub prompt_tokens: u32,
    /// Tokens generated this turn.
    pub output_tokens: u32,
}

impl TurnEvent {
    /// KV-state tokens the conversation holds *after* this turn.
    pub fn context_after(&self) -> u32 {
        self.context_tokens + self.prompt_tokens + self.output_tokens
    }
}

#[derive(Debug, Clone, Copy)]
struct SessionState {
    prefix_id: u32,
    turn: u32,
    context_tokens: u32,
}

/// The RNG stream behind a conversation workload.
///
/// Derived by a labelled fork of the seed — label-stable, independent of
/// parent consumption — and pinned by a first-draws regression test in
/// the `shard_rng` style, so a refactor that re-couples or re-derives
/// the stream is caught loudly.
pub fn conversation_rng(seed: u64) -> DetRng {
    DetRng::new(seed).fork("conversations")
}

/// A deterministic open-loop generator of [`TurnEvent`]s.
///
/// # Examples
///
/// ```
/// use dmem_workloads::{ConversationConfig, ConversationStream};
///
/// let mut stream = ConversationStream::new(ConversationConfig::default(), 42);
/// let events: Vec<_> = stream.by_ref().take(100).collect();
/// assert_eq!(events.len(), 100);
/// assert!(events.windows(2).all(|w| w[0].at <= w[1].at), "arrivals ordered");
/// ```
#[derive(Debug, Clone)]
pub struct ConversationStream {
    config: ConversationConfig,
    rng: DetRng,
    prompt_sampler: ZipfSampler,
    next_arrival_ns: u64,
    next_session: u64,
    /// Sessions still below `max_turns`, in creation order so continue
    /// picks are deterministic.
    live: Vec<u64>,
    sessions: HashMap<u64, SessionState>,
}

impl ConversationStream {
    /// Creates a stream.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive arrival rate, a probability outside
    /// `[0, 1]`, zero system prompts, or zero `max_turns`.
    pub fn new(config: ConversationConfig, seed: u64) -> Self {
        assert!(config.lambda_rate > 0.0, "arrival rate must be positive");
        assert!(
            (0.0..=1.0).contains(&config.new_conv_prob),
            "new_conv_prob outside [0, 1]"
        );
        assert!(config.system_prompts > 0, "need at least one system prompt");
        assert!(config.max_turns > 0, "conversations need at least one turn");
        let prompt_sampler = ZipfSampler::new(config.system_prompts, config.prompt_skew);
        ConversationStream {
            config,
            rng: conversation_rng(seed),
            prompt_sampler,
            next_arrival_ns: 0,
            next_session: 0,
            live: Vec::new(),
            sessions: HashMap::new(),
        }
    }

    /// The configuration the stream was built from.
    pub fn config(&self) -> &ConversationConfig {
        &self.config
    }

    /// Conversations opened so far.
    pub fn sessions_started(&self) -> u64 {
        self.next_session
    }

    /// Conversations still live (below `max_turns`).
    pub fn live_sessions(&self) -> usize {
        self.live.len()
    }

    /// Token count in `[m/2, 3m/2)`, mean `m` (minimum 1).
    fn token_draw(&mut self, mean: u32) -> u32 {
        let lo = (mean / 2).max(1);
        let width = mean.max(1);
        lo + (self.rng.unit() * f64::from(width)) as u32
    }

    /// Exponential inter-arrival draw for the Poisson process.
    fn interarrival_ns(&mut self) -> u64 {
        // Inverse-CDF; unit() < 1 so ln(1-u) is finite.
        let u = self.rng.unit();
        let secs = -(1.0 - u).ln() / self.config.lambda_rate;
        (secs * 1e9) as u64
    }
}

impl Iterator for ConversationStream {
    type Item = TurnEvent;

    fn next(&mut self) -> Option<TurnEvent> {
        let at = SimDuration::from_nanos(self.next_arrival_ns);
        self.next_arrival_ns += self.interarrival_ns();

        let open_new = self.live.is_empty() || self.rng.chance(self.config.new_conv_prob);
        let (session, state) = if open_new {
            let session = self.next_session;
            self.next_session += 1;
            let prefix_id = self.prompt_sampler.sample(&mut self.rng) as u32;
            let state = SessionState {
                prefix_id,
                turn: 0,
                context_tokens: self.config.prefix_tokens,
            };
            self.sessions.insert(session, state);
            self.live.push(session);
            (session, state)
        } else {
            let pick = self.rng.below(self.live.len());
            let session = self.live[pick];
            (session, self.sessions[&session])
        };

        let prompt_tokens = self.token_draw(self.config.mean_prompt_tokens);
        let output_tokens = self.token_draw(self.config.mean_output_tokens);
        let event = TurnEvent {
            at,
            session,
            turn: state.turn,
            prefix_id: state.prefix_id,
            context_tokens: state.context_tokens,
            prompt_tokens,
            output_tokens,
        };

        let entry = self.sessions.get_mut(&session).expect("session live");
        entry.turn += 1;
        entry.context_tokens = event.context_after();
        if entry.turn >= self.config.max_turns {
            self.live.retain(|&s| s != session);
            self.sessions.remove(&session);
        }
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn stream(seed: u64) -> ConversationStream {
        ConversationStream::new(ConversationConfig::default(), seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<TurnEvent> = stream(7).take(500).collect();
        let b: Vec<TurnEvent> = stream(7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<TurnEvent> = stream(8).take(500).collect();
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrivals_are_ordered_and_open_loop() {
        let events: Vec<TurnEvent> = stream(1).take(2000).collect();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // Mean inter-arrival ≈ 1/lambda = 20 ms at the default 50/s.
        let span = (events.last().unwrap().at - events[0].at).as_secs_f64();
        let rate = events.len() as f64 / span;
        assert!(
            (rate - 50.0).abs() < 5.0,
            "arrival rate should be ~lambda, got {rate:.1}/s"
        );
    }

    #[test]
    fn turn_zero_opens_and_context_grows() {
        let events: Vec<TurnEvent> = stream(3).take(2000).collect();
        let mut context: HashMap<u64, u32> = HashMap::new();
        let mut turns: HashMap<u64, u32> = HashMap::new();
        for e in &events {
            let expected_turn = turns.entry(e.session).or_insert(0);
            assert_eq!(e.turn, *expected_turn, "turns are dense per session");
            *expected_turn += 1;
            match context.get(&e.session) {
                None => {
                    assert_eq!(e.turn, 0);
                    assert_eq!(
                        e.context_tokens,
                        ConversationConfig::default().prefix_tokens,
                        "a fresh conversation starts from its system prefix"
                    );
                }
                Some(&ctx) => assert_eq!(e.context_tokens, ctx, "cross-turn KV reuse"),
            }
            context.insert(e.session, e.context_after());
            assert!(e.turn < ConversationConfig::default().max_turns);
        }
    }

    #[test]
    fn new_conv_mix_matches_probability() {
        let events: Vec<TurnEvent> = stream(5).take(8_000).collect();
        let new = events.iter().filter(|e| e.turn == 0).count() as f64 / events.len() as f64;
        // Retirements can force extra opens (only when no session is
        // live), so the rate tracks new_conv_prob with sampling noise.
        assert!(
            (0.27..0.37).contains(&new),
            "new-conversation fraction out of band: {new:.3}"
        );
    }

    #[test]
    fn prefixes_are_shared_and_skewed() {
        let events: Vec<TurnEvent> = stream(9).take(8_000).collect();
        let opens: Vec<&TurnEvent> = events.iter().filter(|e| e.turn == 0).collect();
        let hottest = opens.iter().filter(|e| e.prefix_id == 0).count() as f64;
        assert!(
            hottest / opens.len() as f64 > 0.25,
            "prefix popularity should be zipf-skewed"
        );
        assert!(
            opens.iter().any(|e| e.prefix_id != 0),
            "but not degenerate"
        );
    }

    /// Regression pin (ISSUE 7, `shard_rng` style): the first 8 draws of
    /// the conversation RNG stream for seeds 0..4. A refactor that
    /// re-derives the stream (different fork label, shared stream,
    /// draw-order change in `conversation_rng`) changes these constants
    /// and must be caught loudly.
    #[test]
    fn conversation_rng_first_draws_pinned() {
        let drawn: Vec<Vec<u64>> = (0..4u64)
            .map(|seed| {
                let mut rng = conversation_rng(seed);
                (0..8).map(|_| rng.next_u64()).collect()
            })
            .collect();
        let pinned: Vec<Vec<u64>> = PINNED_CONV_DRAWS.iter().map(|row| row.to_vec()).collect();
        assert_eq!(
            drawn, pinned,
            "conversation RNG streams drifted from the pinned draws"
        );
    }

    const PINNED_CONV_DRAWS: [[u64; 8]; 4] = [
        [
            5115413649585680333,
            11367189627943912709,
            5105087922024120935,
            9982058409100439653,
            8216945249987991797,
            1469583895323722479,
            9478871569112279528,
            6209648492741289386,
        ],
        [
            1477622112947551461,
            8144867510850756053,
            11525595519556887834,
            4089121273723761342,
            7212301440333128863,
            14024495895880512977,
            10382587495824830874,
            15355751765136323426,
        ],
        [
            676165641294064702,
            4363813868343465812,
            618642992493569921,
            890688952874346191,
            9720096968280569157,
            1982764704429197786,
            2985055663059658423,
            12667040321883082130,
        ],
        [
            15559397652980829089,
            2038558192466465152,
            365212476601989416,
            11727729768256139788,
            7678267728352542581,
            14296050481564124852,
            8741553474809158382,
            1524294785354376794,
        ],
    ];

    /// First-events pin: beyond the raw RNG stream, the mapping from
    /// draws to events (arrival, session choice, token sizes) is part of
    /// the reproducibility contract — goldens downstream depend on it.
    #[test]
    fn first_events_pinned() {
        let events: Vec<TurnEvent> = stream(42).take(3).collect();
        let rendered: Vec<String> = events
            .iter()
            .map(|e| {
                format!(
                    "{}ns s{} t{} p{} ctx{} in{} out{}",
                    e.at.as_nanos(),
                    e.session,
                    e.turn,
                    e.prefix_id,
                    e.context_tokens,
                    e.prompt_tokens,
                    e.output_tokens
                )
            })
            .collect();
        assert_eq!(rendered, PINNED_FIRST_EVENTS, "event derivation drifted");
    }

    const PINNED_FIRST_EVENTS: [&str; 3] = [
        "0ns s0 t0 p0 ctx512 in56 out176",
        "11089059ns s0 t1 p0 ctx744 in59 out113",
        "11777686ns s0 t2 p0 ctx916 in82 out168",
    ];
}
