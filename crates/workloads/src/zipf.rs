//! A bounded Zipf sampler.
//!
//! Key-value workloads like Facebook's ETC trace are strongly skewed; the
//! paper's Memcached/Redis experiments inherit that skew. `rand` 0.8 has
//! no Zipf distribution without `rand_distr`, so we implement the bounded
//! version directly with a cumulative table and binary search — exact,
//! allocation-free after construction, and fast enough for millions of
//! draws.

use dmem_sim::DetRng;

/// Samples ranks `0..n` with probability proportional to `1/(rank+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// `s = 0` is uniform; ETC-like skew is around `s ≈ 0.99`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf over zero ranks");
        assert!(s >= 0.0, "negative zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for value in &mut cdf {
            *value /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler has exactly one rank (always returns 0).
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.unit();
        // partition_point returns the first index with cdf > u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_when_s_zero() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = DetRng::new(1);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform draw skewed: {counts:?}");
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let sampler = ZipfSampler::new(1000, 0.99);
        let mut rng = DetRng::new(2);
        let mut top10 = 0usize;
        const N: usize = 10_000;
        for _ in 0..N {
            if sampler.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        let share = top10 as f64 / N as f64;
        // With s=0.99 over 1000 ranks, the top-10 carry ~39% of the mass.
        assert!(share > 0.30 && share < 0.50, "top-10 share {share:.2}");
    }

    #[test]
    fn single_rank_always_zero() {
        let sampler = ZipfSampler::new(1, 1.0);
        let mut rng = DetRng::new(3);
        for _ in 0..10 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
        assert!(!sampler.is_empty());
    }

    #[test]
    #[should_panic(expected = "zero ranks")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_samples_in_range(n in 1usize..500, s in 0.0f64..2.0, seed in 0u64..100) {
            let sampler = ZipfSampler::new(n, s);
            let mut rng = DetRng::new(seed);
            for _ in 0..20 {
                prop_assert!(sampler.sample(&mut rng) < n);
            }
        }

        #[test]
        fn prop_cdf_monotone(n in 2usize..200, s in 0.0f64..2.0) {
            let sampler = ZipfSampler::new(n, s);
            for w in sampler.cdf.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            prop_assert!((sampler.cdf.last().unwrap() - 1.0).abs() < 1e-9);
        }
    }
}
