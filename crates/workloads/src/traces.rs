//! Page-access trace generation for iterative workloads.
//!
//! An iterative ML job sweeps its input sequentially each iteration while
//! hammering a smaller hot set (model state) with skewed random accesses.
//! The paging experiments only see the resulting page reference string, so
//! that is what we generate — deterministically, from a profile and a
//! seed.

use crate::catalog::{AppKind, AppProfile};
use crate::zipf::ZipfSampler;
use dmem_sim::DetRng;
use dmem_types::PageId;

/// One access in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccess {
    /// The page touched.
    pub page: PageId,
    /// `true` if the access dirties the page.
    pub write: bool,
}

/// Parameters of a generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total pages in the working set.
    pub working_set_pages: u64,
    /// Sweeps over the working set.
    pub iterations: usize,
    /// Pages in the hot set (at the front of the address space).
    pub hot_pages: u64,
    /// Probability of an access going to the hot set.
    pub hot_access_prob: f64,
    /// Probability an access is a write.
    pub write_fraction: f64,
    /// Zipf exponent of hot-set popularity.
    pub hot_skew: f64,
}

impl TraceConfig {
    /// Scales a paper-sized profile down to `working_set_pages` while
    /// preserving its structure (iterations, locality, write mix).
    pub fn scaled_from(profile: AppProfile, working_set_pages: u64) -> Self {
        let iterations = match profile.kind {
            AppKind::IterativeMl { iterations } => iterations,
            // KV stores have no sweep structure; a single "iteration"
            // stands for a fixed op budget when traced this way.
            AppKind::KeyValue { .. } => 1,
        };
        TraceConfig {
            working_set_pages,
            iterations,
            hot_pages: ((working_set_pages as f64) * profile.hot_fraction).ceil() as u64,
            hot_access_prob: profile.hot_access_prob,
            write_fraction: profile.write_fraction,
            hot_skew: 0.9,
        }
    }

    /// Total accesses the full trace will produce.
    pub fn total_accesses(&self) -> u64 {
        self.working_set_pages * self.iterations as u64
    }

    /// Generates the deterministic access stream for `seed`.
    ///
    /// Each iteration emits one access per working-set page: either the
    /// sequential sweep position or (with `hot_access_prob`) a zipf-skewed
    /// hot page. The stream length is [`TraceConfig::total_accesses`].
    pub fn generate(&self, seed: u64) -> Trace {
        let hot = if self.hot_pages > 0 {
            Some(ZipfSampler::new(self.hot_pages as usize, self.hot_skew))
        } else {
            None
        };
        Trace {
            config: self.clone(),
            rng: DetRng::new(seed),
            hot,
            iteration: 0,
            position: 0,
        }
    }
}

/// The iterator over a generated trace. Created by
/// [`TraceConfig::generate`].
#[derive(Debug, Clone)]
pub struct Trace {
    config: TraceConfig,
    rng: DetRng,
    hot: Option<ZipfSampler>,
    iteration: usize,
    position: u64,
}

impl Iterator for Trace {
    type Item = PageAccess;

    fn next(&mut self) -> Option<PageAccess> {
        if self.iteration >= self.config.iterations {
            return None;
        }
        let sweep_page = self.position;
        self.position += 1;
        if self.position >= self.config.working_set_pages {
            self.position = 0;
            self.iteration += 1;
        }
        let page = match &self.hot {
            Some(hot) if self.rng.chance(self.config.hot_access_prob) => {
                hot.sample(&mut self.rng) as u64
            }
            _ => sweep_page,
        };
        let write = self.rng.chance(self.config.write_fraction);
        Some(PageAccess {
            page: PageId::new(page),
            write,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .config
            .total_accesses()
            .saturating_sub(self.iteration as u64 * self.config.working_set_pages + self.position)
            as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn config(pages: u64) -> TraceConfig {
        TraceConfig::scaled_from(catalog::by_name("PageRank").unwrap(), pages)
    }

    #[test]
    fn trace_length_matches_structure() {
        let cfg = config(128);
        let count = cfg.generate(1).count() as u64;
        assert_eq!(count, cfg.total_accesses());
        assert_eq!(count, 128 * 10, "PageRank runs 10 iterations");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = config(64);
        let a: Vec<_> = cfg.generate(5).collect();
        let b: Vec<_> = cfg.generate(5).collect();
        let c: Vec<_> = cfg.generate(6).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds yield different traces");
    }

    #[test]
    fn all_pages_in_working_set() {
        let cfg = config(100);
        for access in cfg.generate(2) {
            assert!(access.page.pfn() < 100);
        }
    }

    #[test]
    fn every_page_eventually_touched() {
        // The sequential sweep guarantees coverage of the cold tail.
        let cfg = TraceConfig {
            hot_access_prob: 0.3,
            ..config(50)
        };
        let touched: HashSet<u64> = cfg.generate(3).map(|a| a.page.pfn()).collect();
        assert!(
            touched.len() > 45,
            "only {} of 50 pages touched",
            touched.len()
        );
    }

    #[test]
    fn hot_pages_dominate_frequency() {
        let cfg = config(1000); // 15% hot, 55% hot-access prob
        let mut counts = vec![0u64; 1000];
        for access in cfg.generate(4) {
            counts[access.page.pfn() as usize] += 1;
        }
        let hot_total: u64 = counts[..150].iter().sum();
        let cold_avg = counts[150..].iter().sum::<u64>() as f64 / 850.0;
        let hot_avg = hot_total as f64 / 150.0;
        assert!(
            hot_avg > cold_avg * 2.0,
            "hot avg {hot_avg:.1} not dominant over cold avg {cold_avg:.1}"
        );
    }

    #[test]
    fn write_fraction_respected() {
        let cfg = config(500);
        let total = cfg.total_accesses() as f64;
        let writes = cfg.generate(5).filter(|a| a.write).count() as f64;
        let fraction = writes / total;
        assert!(
            (fraction - 0.30).abs() < 0.05,
            "write fraction {fraction:.2}, expected ≈0.30"
        );
    }

    #[test]
    fn kv_profile_traces_single_pass() {
        let cfg = TraceConfig::scaled_from(catalog::by_name("Memcached").unwrap(), 64);
        assert_eq!(cfg.iterations, 1);
        assert_eq!(cfg.generate(1).count(), 64);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_size_hint_exact(pages in 1u64..200, seed in 0u64..50) {
            let cfg = config(pages);
            let mut trace = cfg.generate(seed);
            let (lo, hi) = trace.size_hint();
            prop_assert_eq!(Some(lo), hi);
            let mut remaining = lo;
            while trace.next().is_some() {
                remaining -= 1;
                prop_assert_eq!(trace.size_hint().0, remaining);
            }
            prop_assert_eq!(remaining, 0);
        }
    }
}
