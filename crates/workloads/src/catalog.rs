//! The application catalog (paper Table 3 and the Fig. 3 ML suite).
//!
//! Each profile captures what the experiments consume: paper-scale
//! working-set/input sizes, iteration structure, access locality and the
//! page-compressibility band the workload's heap exhibits. The
//! compressibility means are chosen to reproduce the Fig. 3 spread —
//! graph analytics with pointer-dense pages compress modestly; text/
//! feature-matrix workloads compress well; zero-heavy sparse workloads
//! compress best.

use dmem_types::ByteSize;

/// What kind of application a profile models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppKind {
    /// Iterative ML / graph analytics: repeated sweeps over the working
    /// set (the Fig. 3-7 and Fig. 10 workloads).
    IterativeMl {
        /// Number of passes over the working set.
        iterations: usize,
    },
    /// Key-value or OLTP store (the Fig. 8-9 workloads).
    KeyValue {
        /// Fraction of operations that are reads.
        read_fraction: f64,
    },
}

/// One application's model.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name as the paper uses it.
    pub name: &'static str,
    /// Application kind and its structural parameter.
    pub kind: AppKind,
    /// Paper-scale working set per virtual server (25-30 GB band).
    pub working_set: ByteSize,
    /// Paper-scale input dataset per virtual server (12-20 GB band).
    pub input_size: ByteSize,
    /// Mean page compression ratio of the workload's heap.
    pub compress_mean: f64,
    /// Half-width of the per-page compressibility band.
    pub compress_spread: f64,
    /// Fraction of the working set that is hot.
    pub hot_fraction: f64,
    /// Probability an access targets the hot set.
    pub hot_access_prob: f64,
    /// Probability an access is a write (dirties the page).
    pub write_fraction: f64,
}

const fn gib(n: u64) -> ByteSize {
    ByteSize::from_gib(n)
}

/// The ten applications of Table 3: seven iterative ML/graph analytics
/// plus the three stores used in the throughput experiments.
pub fn table3() -> Vec<AppProfile> {
    vec![
        AppProfile {
            name: "PageRank",
            kind: AppKind::IterativeMl { iterations: 10 },
            working_set: gib(28),
            input_size: gib(16),
            compress_mean: 2.2,
            compress_spread: 0.8,
            hot_fraction: 0.15,
            hot_access_prob: 0.55,
            write_fraction: 0.30,
        },
        AppProfile {
            name: "LogisticRegression",
            kind: AppKind::IterativeMl { iterations: 12 },
            working_set: gib(27),
            input_size: gib(14),
            compress_mean: 3.4,
            compress_spread: 1.0,
            hot_fraction: 0.10,
            hot_access_prob: 0.50,
            write_fraction: 0.20,
        },
        AppProfile {
            name: "TunkRank",
            kind: AppKind::IterativeMl { iterations: 10 },
            working_set: gib(26),
            input_size: gib(13),
            compress_mean: 2.0,
            compress_spread: 0.7,
            hot_fraction: 0.20,
            hot_access_prob: 0.60,
            write_fraction: 0.30,
        },
        AppProfile {
            name: "KMeans",
            kind: AppKind::IterativeMl { iterations: 15 },
            working_set: gib(25),
            input_size: gib(12),
            compress_mean: 2.8,
            compress_spread: 0.9,
            hot_fraction: 0.05,
            hot_access_prob: 0.40,
            write_fraction: 0.15,
        },
        AppProfile {
            name: "SVM",
            kind: AppKind::IterativeMl { iterations: 12 },
            working_set: gib(27),
            input_size: gib(15),
            compress_mean: 3.0,
            compress_spread: 1.0,
            hot_fraction: 0.10,
            hot_access_prob: 0.45,
            write_fraction: 0.20,
        },
        AppProfile {
            name: "ConnectedComponents",
            kind: AppKind::IterativeMl { iterations: 8 },
            working_set: gib(26),
            input_size: gib(14),
            compress_mean: 1.8,
            compress_spread: 0.6,
            hot_fraction: 0.25,
            hot_access_prob: 0.60,
            write_fraction: 0.35,
        },
        AppProfile {
            name: "ALS",
            kind: AppKind::IterativeMl { iterations: 10 },
            working_set: gib(30),
            input_size: gib(18),
            compress_mean: 2.5,
            compress_spread: 0.8,
            hot_fraction: 0.12,
            hot_access_prob: 0.50,
            write_fraction: 0.25,
        },
        AppProfile {
            name: "Memcached",
            kind: AppKind::KeyValue {
                read_fraction: 0.95,
            },
            working_set: gib(28),
            input_size: gib(20),
            compress_mean: 2.6,
            compress_spread: 1.2,
            hot_fraction: 0.10,
            hot_access_prob: 0.80,
            write_fraction: 0.05,
        },
        AppProfile {
            name: "Redis",
            kind: AppKind::KeyValue {
                read_fraction: 0.90,
            },
            working_set: gib(27),
            input_size: gib(18),
            compress_mean: 2.4,
            compress_spread: 1.0,
            hot_fraction: 0.10,
            hot_access_prob: 0.80,
            write_fraction: 0.10,
        },
        AppProfile {
            name: "VoltDB",
            kind: AppKind::KeyValue {
                read_fraction: 0.50,
            },
            working_set: gib(25),
            input_size: gib(15),
            compress_mean: 2.0,
            compress_spread: 0.8,
            hot_fraction: 0.20,
            hot_access_prob: 0.70,
            write_fraction: 0.50,
        },
    ]
}

/// The ten ML workloads whose compression ratios Fig. 3 plots: the seven
/// iterative profiles of Table 3 extended with three text/feature-heavy
/// workloads.
pub fn fig3_ml_suite() -> Vec<AppProfile> {
    let mut suite: Vec<AppProfile> = table3()
        .into_iter()
        .filter(|p| matches!(p.kind, AppKind::IterativeMl { .. }))
        .collect();
    suite.push(AppProfile {
        name: "LDA",
        kind: AppKind::IterativeMl { iterations: 10 },
        working_set: gib(26),
        input_size: gib(13),
        compress_mean: 4.2,
        compress_spread: 1.2,
        hot_fraction: 0.08,
        hot_access_prob: 0.45,
        write_fraction: 0.20,
    });
    suite.push(AppProfile {
        name: "Word2Vec",
        kind: AppKind::IterativeMl { iterations: 12 },
        working_set: gib(25),
        input_size: gib(12),
        compress_mean: 3.8,
        compress_spread: 1.1,
        hot_fraction: 0.10,
        hot_access_prob: 0.50,
        write_fraction: 0.25,
    });
    suite.push(AppProfile {
        name: "GradientBoostedTrees",
        kind: AppKind::IterativeMl { iterations: 15 },
        working_set: gib(27),
        input_size: gib(14),
        compress_mean: 3.2,
        compress_spread: 0.9,
        hot_fraction: 0.10,
        hot_access_prob: 0.50,
        write_fraction: 0.20,
    });
    suite
}

/// Looks up a profile from [`table3`] or [`fig3_ml_suite`] by name.
pub fn by_name(name: &str) -> Option<AppProfile> {
    table3()
        .into_iter()
        .chain(fig3_ml_suite())
        .find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_ten_apps_in_paper_bands() {
        let apps = table3();
        assert_eq!(apps.len(), 10);
        for app in &apps {
            assert!(
                app.working_set >= gib(25) && app.working_set <= gib(30),
                "{}: working set {} outside the 25-30 GB band",
                app.name,
                app.working_set
            );
            assert!(
                app.input_size >= gib(12) && app.input_size <= gib(20),
                "{}: input {} outside the 12-20 GB band",
                app.name,
                app.input_size
            );
            assert!(app.compress_mean >= 1.0);
            assert!((0.0..=1.0).contains(&app.hot_fraction));
            assert!((0.0..=1.0).contains(&app.hot_access_prob));
            assert!((0.0..=1.0).contains(&app.write_fraction));
        }
    }

    #[test]
    fn fig3_suite_is_ten_ml_workloads() {
        let suite = fig3_ml_suite();
        assert_eq!(suite.len(), 10);
        assert!(suite
            .iter()
            .all(|p| matches!(p.kind, AppKind::IterativeMl { .. })));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = table3()
            .iter()
            .chain(fig3_ml_suite().iter())
            .map(|p| p.name)
            .collect::<std::collections::HashSet<_>>()
            .into_iter()
            .collect();
        names.sort_unstable();
        assert_eq!(names.len(), 13, "10 Table-3 apps + 3 Fig. 3 extensions");
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("PageRank").is_some());
        assert!(by_name("LDA").is_some());
        assert!(by_name("DoesNotExist").is_none());
    }

    #[test]
    fn fig7_workloads_present() {
        for name in ["PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"] {
            assert!(by_name(name).is_some(), "Fig. 7 needs {name}");
        }
    }

    #[test]
    fn fig8_workloads_present() {
        for name in ["Redis", "Memcached", "VoltDB"] {
            let app = by_name(name).unwrap();
            assert!(matches!(app.kind, AppKind::KeyValue { .. }));
        }
    }
}
