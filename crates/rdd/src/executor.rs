//! The executor block manager: bounded memory store with LRU eviction
//! and a pluggable spill tier.
//!
//! Vanilla Spark (`MEMORY_AND_DISK`) spills evicted cached partitions to
//! the executor's local disk; DAHI redirects the spill to disaggregated
//! memory — node shared pool first, then cluster remote memory — in
//! page-sized chunks (its prototype rides Accelio's 8 KiB messages; ours
//! rides the 4 KiB entry path of `dmem-core`).

use crate::record::{deserialize_partition, serialize_partition, Record};
use dmem_core::{DiskTier, DisaggregatedMemory};
use dmem_sim::{CostModel, SimClock};
use dmem_types::{ByteSize, DmemResult, EntryId, NodeId, ServerId, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Identifies one cached partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Owning RDD.
    pub rdd: u64,
    /// Partition index.
    pub partition: usize,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(rdd: u64, partition: usize) -> Self {
        BlockId { rdd, partition }
    }

    /// Key prefix for chunked off-heap storage: 16 bits of chunk space.
    fn chunk_key(&self, chunk: u64) -> u64 {
        (self.rdd << 36) | ((self.partition as u64) << 16) | chunk
    }
}

/// Where evicted blocks go.
pub enum SpillBackend {
    /// Vanilla Spark: executor-local disk.
    VanillaDisk {
        /// The simulated disk.
        disk: DiskTier,
        /// Node owning the disk.
        node: NodeId,
        /// Executor identity (namespaces disk entries).
        server: ServerId,
    },
    /// DAHI: off-heap disaggregated memory.
    Dahi {
        /// The assembled disaggregated memory cluster.
        dm: Arc<DisaggregatedMemory>,
        /// The executor's virtual-server identity on that cluster.
        server: ServerId,
    },
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Reads served from executor memory.
    pub memory_hits: u64,
    /// Reads served from the spill tier.
    pub spill_hits: u64,
    /// Reads that found nothing (caller recomputes from lineage).
    pub misses: u64,
    /// Blocks written to the spill tier.
    pub spills: u64,
    /// Blocks evicted from memory.
    pub evictions: u64,
}

struct MemBlock {
    len: usize,
    tick: u64,
}

/// The canonical serialized form of a block plus its parsed records.
///
/// Reads are served as `Arc` clones of `records` instead of re-parsing
/// `bytes` on every `get` — the deserialization loop (one `Vec<f64>`
/// allocation per record, tens of millions of records across a fig10
/// run) dominated the real CPU profile before this. Spill-tier reads are
/// byte-guarded: the bytes coming back from the tier must equal `bytes`
/// for the cached parse to be served, so a corrupted or stale tier read
/// still goes through `deserialize_partition` and fails (or re-parses)
/// exactly as without the cache. Virtual-time charges are unaffected.
struct ParsedBlock {
    bytes: Vec<u8>,
    records: Arc<Vec<Record>>,
}

/// The bounded-memory block store of one executor.
pub struct BlockManager {
    clock: SimClock,
    cost: CostModel,
    capacity: ByteSize,
    used: ByteSize,
    memory: HashMap<BlockId, MemBlock>,
    lru: BTreeMap<u64, BlockId>,
    tick: u64,
    spilled: HashMap<BlockId, usize>, // serialized length
    /// Parse cache over every block this manager has seen (memory or
    /// spill tier); memory use is bounded by the job's dataset, which a
    /// single-run manager holds anyway.
    parsed: HashMap<BlockId, ParsedBlock>,
    backend: SpillBackend,
    stats: BlockStats,
}

impl BlockManager {
    /// Creates a block manager with `capacity` of executor cache memory.
    pub fn new(capacity: ByteSize, clock: SimClock, cost: CostModel, backend: SpillBackend) -> Self {
        BlockManager {
            clock,
            cost,
            capacity,
            used: ByteSize::ZERO,
            memory: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            spilled: HashMap::new(),
            parsed: HashMap::new(),
            backend,
            stats: BlockStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Bytes currently cached in executor memory.
    pub fn memory_used(&self) -> ByteSize {
        self.used
    }

    /// Number of blocks in the spill tier.
    pub fn spilled_blocks(&self) -> usize {
        self.spilled.len()
    }

    fn touch(&mut self, id: BlockId) {
        self.tick += 1;
        if let Some(b) = self.memory.get_mut(&id) {
            self.lru.remove(&b.tick);
            b.tick = self.tick;
            self.lru.insert(self.tick, id);
        }
    }

    fn spill_out(&mut self, id: BlockId, bytes: Vec<u8>) -> DmemResult<()> {
        let len = bytes.len();
        let span = self.clock.tracer().span("rdd", "spill.out");
        span.tag("bytes", len);
        span.tag(
            "tier",
            match &self.backend {
                SpillBackend::VanillaDisk { .. } => "disk",
                SpillBackend::Dahi { .. } => "dmem",
            },
        );
        match &self.backend {
            SpillBackend::VanillaDisk { disk, node, server } => {
                disk.store(*node, EntryId::new(*server, id.chunk_key(0)), bytes);
            }
            SpillBackend::Dahi { dm, server } => {
                let batch: Vec<(u64, Vec<u8>)> = bytes
                    .chunks(PAGE_SIZE)
                    .enumerate()
                    .map(|(i, c)| (id.chunk_key(i as u64), c.to_vec()))
                    .collect();
                dm.put_batch(*server, batch, dmem_core::TierPreference::Auto)?;
            }
        }
        self.spilled.insert(id, len);
        self.stats.spills += 1;
        Ok(())
    }

    fn spill_in(&mut self, id: BlockId) -> DmemResult<Vec<u8>> {
        let len = *self.spilled.get(&id).expect("caller checked membership");
        let span = self.clock.tracer().span("rdd", "spill.in");
        span.tag("bytes", len);
        span.tag(
            "tier",
            match &self.backend {
                SpillBackend::VanillaDisk { .. } => "disk",
                SpillBackend::Dahi { .. } => "dmem",
            },
        );
        match &self.backend {
            SpillBackend::VanillaDisk { disk, node, server } => {
                disk.load(*node, EntryId::new(*server, id.chunk_key(0)))
            }
            SpillBackend::Dahi { dm, server } => {
                let chunks = len.div_ceil(PAGE_SIZE) as u64;
                let keys: Vec<u64> = (0..chunks).map(|c| id.chunk_key(c)).collect();
                let parts = dm.get_batch(*server, &keys)?;
                let mut out = Vec::with_capacity(len);
                for part in parts {
                    out.extend_from_slice(&part);
                }
                Ok(out)
            }
        }
    }

    fn evict_until(&mut self, needed: ByteSize) -> DmemResult<()> {
        while self.used + needed > self.capacity && !self.memory.is_empty() {
            let (&tick, &victim) = self.lru.iter().next().expect("memory nonempty");
            self.lru.remove(&tick);
            let block = self.memory.remove(&victim).expect("victim in memory");
            self.used -= ByteSize::from(block.len);
            self.stats.evictions += 1;
            if !self.spilled.contains_key(&victim) {
                let bytes = self.parsed[&victim].bytes.clone();
                self.spill_out(victim, bytes)?;
            }
        }
        Ok(())
    }

    /// Caches a partition (serializing it) and returns the shared handle
    /// reads will serve. Blocks larger than the whole cache go straight
    /// to the spill tier.
    ///
    /// # Errors
    ///
    /// Propagates spill-tier failures.
    pub fn put(&mut self, id: BlockId, records: Vec<Record>) -> DmemResult<Arc<Vec<Record>>> {
        let bytes = serialize_partition(&records);
        // Serialization cost: one memory pass over the payload.
        self.clock.advance(self.cost.dram.transfer(bytes.len()));
        let size = ByteSize::from(bytes.len());
        let records = Arc::new(records);
        self.parsed.insert(
            id,
            ParsedBlock {
                bytes: bytes.clone(),
                records: Arc::clone(&records),
            },
        );
        if size > self.capacity {
            self.spill_out(id, bytes)?;
            return Ok(records);
        }
        self.evict_until(size)?;
        self.tick += 1;
        self.used += size;
        self.lru.insert(self.tick, id);
        self.memory.insert(
            id,
            MemBlock {
                len: bytes.len(),
                tick: self.tick,
            },
        );
        Ok(records)
    }

    /// Fetches a cached partition: executor memory, then the spill tier.
    /// `None` means the caller must recompute from lineage.
    ///
    /// # Errors
    ///
    /// Propagates spill-tier read failures.
    pub fn get(&mut self, id: BlockId) -> DmemResult<Option<Arc<Vec<Record>>>> {
        if let Some(block) = self.memory.get(&id) {
            // The in-memory bytes are exactly what `put` serialized, so
            // the cached parse is served without a guard.
            self.clock.advance(self.cost.dram.transfer(block.len));
            let records = Arc::clone(&self.parsed[&id].records);
            self.touch(id);
            self.stats.memory_hits += 1;
            return Ok(Some(records));
        }
        if self.spilled.contains_key(&id) {
            let bytes = self.spill_in(id)?;
            self.clock.advance(self.cost.dram.transfer(bytes.len()));
            let records = match self.parsed.get(&id) {
                // Byte guard: tier bytes must equal the serialized form
                // we remembered for the cached parse to be valid.
                Some(block) if block.bytes == bytes => Arc::clone(&block.records),
                _ => {
                    let records = Arc::new(deserialize_partition(&bytes)?);
                    self.parsed.insert(
                        id,
                        ParsedBlock {
                            bytes,
                            records: Arc::clone(&records),
                        },
                    );
                    records
                }
            };
            self.stats.spill_hits += 1;
            return Ok(Some(records));
        }
        self.stats.misses += 1;
        Ok(None)
    }

    /// `true` if the block is cached anywhere.
    pub fn contains(&self, id: BlockId) -> bool {
        self.memory.contains_key(&id) || self.spilled.contains_key(&id)
    }
}

impl fmt::Debug for BlockManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlockManager")
            .field("capacity", &self.capacity)
            .field("used", &self.used)
            .field("memory_blocks", &self.memory.len())
            .field("spilled_blocks", &self.spilled.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ClusterConfig;

    fn records(n: usize, tag: f64) -> Vec<Record> {
        (0..n).map(|i| Record::new(i as u64, vec![tag; 8])).collect()
    }

    fn disk_bm(capacity: ByteSize) -> (SimClock, BlockManager) {
        let clock = SimClock::new();
        let cost = CostModel::paper_default();
        let node = NodeId::new(0);
        let backend = SpillBackend::VanillaDisk {
            disk: DiskTier::new(clock.clone(), cost),
            node,
            server: ServerId::new(node, 0),
        };
        (clock.clone(), BlockManager::new(capacity, clock, cost, backend))
    }

    fn dahi_bm(capacity: ByteSize) -> (Arc<DisaggregatedMemory>, BlockManager) {
        let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap());
        let server = dm.servers()[0];
        let clock = dm.clock().clone();
        let backend = SpillBackend::Dahi {
            dm: Arc::clone(&dm),
            server,
        };
        let bm = BlockManager::new(capacity, clock, CostModel::paper_default(), backend);
        (dm, bm)
    }

    #[test]
    fn memory_hit_roundtrip() {
        let (_, mut bm) = disk_bm(ByteSize::from_mib(1));
        let id = BlockId::new(1, 0);
        bm.put(id, records(100, 1.0)).unwrap();
        let got = bm.get(id).unwrap().unwrap();
        assert_eq!(*got, records(100, 1.0));
        assert_eq!(bm.stats().memory_hits, 1);
        assert_eq!(bm.stats().spills, 0);
    }

    #[test]
    fn overflow_spills_lru_to_disk() {
        // Each 100-record block is ~7.4 KB; capacity fits two.
        let (_, mut bm) = disk_bm(ByteSize::from_kib(16));
        for p in 0..4 {
            bm.put(BlockId::new(1, p), records(100, p as f64)).unwrap();
        }
        assert!(bm.stats().spills >= 2);
        // Everything still readable, spilled or not.
        for p in 0..4 {
            let got = bm.get(BlockId::new(1, p)).unwrap().unwrap();
            assert_eq!(*got, records(100, p as f64));
        }
        assert!(bm.stats().spill_hits >= 2);
    }

    #[test]
    fn vanilla_spill_read_costs_disk_time() {
        let (clock, mut bm) = disk_bm(ByteSize::from_kib(12));
        bm.put(BlockId::new(1, 0), records(100, 0.0)).unwrap();
        bm.put(BlockId::new(1, 1), records(100, 1.0)).unwrap(); // evicts 0
        let t0 = clock.now();
        let _ = bm.get(BlockId::new(1, 0)).unwrap().unwrap();
        assert!((clock.now() - t0).as_millis_f64() > 3.0, "disk spill read");
    }

    #[test]
    fn dahi_spill_read_is_fast() {
        let (_, mut bm) = dahi_bm(ByteSize::from_kib(12));
        let clock = bm.clock.clone();
        bm.put(BlockId::new(1, 0), records(100, 0.0)).unwrap();
        bm.put(BlockId::new(1, 1), records(100, 1.0)).unwrap(); // evicts 0
        let t0 = clock.now();
        let got = bm.get(BlockId::new(1, 0)).unwrap().unwrap();
        assert_eq!(*got, records(100, 0.0));
        assert!(
            (clock.now() - t0).as_millis_f64() < 1.0,
            "DAHI spill read must be sub-millisecond"
        );
    }

    #[test]
    fn dahi_chunks_large_blocks() {
        let (dm, mut bm) = dahi_bm(ByteSize::from_kib(4));
        // ~30 KB block: cannot fit the cache at all, goes off-heap in
        // eight 4 KiB chunks.
        bm.put(BlockId::new(2, 0), records(400, 3.0)).unwrap();
        assert!(dm.stats().entries >= 8);
        let got = bm.get(BlockId::new(2, 0)).unwrap().unwrap();
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn miss_returns_none() {
        let (_, mut bm) = disk_bm(ByteSize::from_kib(64));
        assert!(bm.get(BlockId::new(9, 9)).unwrap().is_none());
        assert_eq!(bm.stats().misses, 1);
        assert!(!bm.contains(BlockId::new(9, 9)));
    }

    #[test]
    fn lru_eviction_order() {
        let (_, mut bm) = disk_bm(ByteSize::from_kib(16));
        let (a, b, c) = (BlockId::new(1, 0), BlockId::new(1, 1), BlockId::new(1, 2));
        bm.put(a, records(100, 0.0)).unwrap();
        bm.put(b, records(100, 1.0)).unwrap();
        let _ = bm.get(a).unwrap(); // refresh a
        bm.put(c, records(100, 2.0)).unwrap(); // must evict b
        assert!(bm.memory.contains_key(&a));
        assert!(!bm.memory.contains_key(&b));
        assert!(bm.spilled.contains_key(&b));
    }
}
