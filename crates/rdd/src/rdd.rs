//! Lineage-based RDDs (the paper's reference \[33\]).
//!
//! An RDD is an immutable, partitioned dataset described by how it is
//! derived from other RDDs. Partitions are computed on demand from
//! lineage; a lost (evicted) cached partition is simply recomputed — the
//! property DAHI's off-heap caching trades against.

use crate::record::Record;
use dmem_sim::DetRng;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_RDD_ID: AtomicU64 = AtomicU64::new(1);

type GenFn = dyn Fn(usize, &mut DetRng) -> Vec<Record> + Send + Sync;
type MapFn = dyn Fn(Record) -> Record + Send + Sync;
type PredFn = dyn Fn(&Record) -> bool + Send + Sync;
type ReduceFn = dyn Fn(&[f64], &[f64]) -> Vec<f64> + Send + Sync;

enum Op {
    /// A deterministic source: partition index → records.
    Source { gen: Arc<GenFn>, seed: u64 },
    /// Narrow: element-wise transform.
    Map { parent: Arc<Rdd>, f: Arc<MapFn> },
    /// Narrow: element-wise filter.
    Filter { parent: Arc<Rdd>, pred: Arc<PredFn> },
    /// Wide: hash-partition by key across ALL parent partitions, merging
    /// values with `f` (a shuffle).
    ReduceByKey { parent: Arc<Rdd>, f: Arc<ReduceFn> },
}

/// An immutable, partitioned, lineage-tracked dataset.
pub struct Rdd {
    id: u64,
    partitions: usize,
    op: Op,
}

impl Rdd {
    /// Creates a source RDD of `partitions` partitions whose contents are
    /// produced by `gen(partition, rng)`.
    pub fn source<F>(partitions: usize, seed: u64, gen: F) -> Arc<Rdd>
    where
        F: Fn(usize, &mut DetRng) -> Vec<Record> + Send + Sync + 'static,
    {
        assert!(partitions > 0, "an RDD needs at least one partition");
        Arc::new(Rdd {
            id: NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed),
            partitions,
            op: Op::Source {
                gen: Arc::new(gen),
                seed,
            },
        })
    }

    /// Element-wise transformation (narrow dependency).
    pub fn map<F>(self: &Arc<Rdd>, f: F) -> Arc<Rdd>
    where
        F: Fn(Record) -> Record + Send + Sync + 'static,
    {
        Arc::new(Rdd {
            id: NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed),
            partitions: self.partitions,
            op: Op::Map {
                parent: Arc::clone(self),
                f: Arc::new(f),
            },
        })
    }

    /// Element-wise filter (narrow dependency).
    pub fn filter<F>(self: &Arc<Rdd>, pred: F) -> Arc<Rdd>
    where
        F: Fn(&Record) -> bool + Send + Sync + 'static,
    {
        Arc::new(Rdd {
            id: NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed),
            partitions: self.partitions,
            op: Op::Filter {
                parent: Arc::clone(self),
                pred: Arc::new(pred),
            },
        })
    }

    /// Key-wise aggregation with a shuffle (wide dependency): values of
    /// equal keys are merged with `f`.
    pub fn reduce_by_key<F>(self: &Arc<Rdd>, f: F) -> Arc<Rdd>
    where
        F: Fn(&[f64], &[f64]) -> Vec<f64> + Send + Sync + 'static,
    {
        Arc::new(Rdd {
            id: NEXT_RDD_ID.fetch_add(1, Ordering::Relaxed),
            partitions: self.partitions,
            op: Op::ReduceByKey {
                parent: Arc::clone(self),
                f: Arc::new(f),
            },
        })
    }

    /// This RDD's unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Depth of the lineage chain above this RDD (a source is 1).
    pub fn lineage_depth(&self) -> usize {
        match &self.op {
            Op::Source { .. } => 1,
            Op::Map { parent, .. }
            | Op::Filter { parent, .. }
            | Op::ReduceByKey { parent, .. } => 1 + parent.lineage_depth(),
        }
    }

    /// Computes partition `p` from lineage, consulting `cached` for
    /// already-materialized parent partitions (the block manager passes
    /// its lookup here so recomputation stops at the nearest cache hit).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn compute(
        &self,
        p: usize,
        cached: &dyn Fn(u64, usize) -> Option<Vec<Record>>,
    ) -> Vec<Record> {
        assert!(p < self.partitions, "partition {p} out of range");
        if let Some(hit) = cached(self.id, p) {
            return hit;
        }
        match &self.op {
            Op::Source { gen, seed } => {
                let mut rng = DetRng::new(*seed).fork_indexed("partition", p as u64);
                gen(p, &mut rng)
            }
            Op::Map { parent, f } => parent
                .compute(p, cached)
                .into_iter()
                .map(|r| f(r))
                .collect(),
            Op::Filter { parent, pred } => parent
                .compute(p, cached)
                .into_iter()
                .filter(|r| pred(r))
                .collect(),
            Op::ReduceByKey { parent, f } => {
                // Shuffle: this output partition owns keys hashing to p.
                let mut acc: std::collections::BTreeMap<u64, Vec<f64>> =
                    std::collections::BTreeMap::new();
                for parent_part in 0..parent.partitions {
                    for record in parent.compute(parent_part, cached) {
                        if (record.key as usize) % self.partitions == p {
                            match acc.remove(&record.key) {
                                Some(prev) => {
                                    acc.insert(record.key, f(&prev, &record.values));
                                }
                                None => {
                                    acc.insert(record.key, record.values);
                                }
                            }
                        }
                    }
                }
                acc.into_iter()
                    .map(|(key, values)| Record::new(key, values))
                    .collect()
            }
        }
    }

    /// Computes all partitions (a `collect` with no caching).
    pub fn collect(&self) -> Vec<Record> {
        let no_cache = |_: u64, _: usize| None;
        (0..self.partitions)
            .flat_map(|p| self.compute(p, &no_cache))
            .collect()
    }
}

impl fmt::Debug for Rdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.op {
            Op::Source { .. } => "Source",
            Op::Map { .. } => "Map",
            Op::Filter { .. } => "Filter",
            Op::ReduceByKey { .. } => "ReduceByKey",
        };
        f.debug_struct("Rdd")
            .field("id", &self.id)
            .field("kind", &kind)
            .field("partitions", &self.partitions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbers(partitions: usize, per_part: usize) -> Arc<Rdd> {
        Rdd::source(partitions, 7, move |p, _| {
            (0..per_part)
                .map(|i| Record::new((p * per_part + i) as u64, vec![1.0]))
                .collect()
        })
    }

    #[test]
    fn source_is_deterministic() {
        let rdd = Rdd::source(2, 9, |_, rng| {
            vec![Record::new(rng.below(100) as u64, vec![rng.unit()])]
        });
        let a = rdd.collect();
        let b = rdd.collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_filter_chain() {
        let rdd = numbers(4, 10)
            .map(|mut r| {
                r.values[0] *= 2.0;
                r
            })
            .filter(|r| r.key % 2 == 0);
        let out = rdd.collect();
        assert_eq!(out.len(), 20);
        assert!(out.iter().all(|r| r.values[0] == 2.0 && r.key % 2 == 0));
    }

    #[test]
    fn reduce_by_key_shuffles_and_merges() {
        // Two partitions both containing keys 0..5.
        let rdd = Rdd::source(2, 1, |_, _| {
            (0..5).map(|k| Record::new(k, vec![1.0])).collect()
        });
        let reduced = rdd.reduce_by_key(|a, b| vec![a[0] + b[0]]);
        let out = reduced.collect();
        assert_eq!(out.len(), 5, "one record per distinct key");
        assert!(out.iter().all(|r| r.values[0] == 2.0), "both copies merged");
        // Keys are routed to the right output partition.
        let no_cache = |_: u64, _: usize| None;
        for p in 0..reduced.partitions() {
            for r in reduced.compute(p, &no_cache) {
                assert_eq!(r.key as usize % 2, p);
            }
        }
    }

    #[test]
    fn cache_lookup_short_circuits_lineage() {
        let base = numbers(1, 4);
        let mapped = base.map(|mut r| {
            r.values[0] += 1.0;
            r
        });
        let base_id = base.id();
        // Pretend the base partition is cached with sentinel contents.
        let cached = move |id: u64, _p: usize| {
            (id == base_id).then(|| vec![Record::new(99, vec![10.0])])
        };
        let out = mapped.compute(0, &cached);
        assert_eq!(out, vec![Record::new(99, vec![11.0])]);
    }

    #[test]
    fn lineage_depth_counts_stages() {
        let rdd = numbers(1, 1).map(|r| r).filter(|_| true).reduce_by_key(|a, _| a.to_vec());
        assert_eq!(rdd.lineage_depth(), 4);
    }

    #[test]
    fn ids_are_unique() {
        let a = numbers(1, 1);
        let b = numbers(1, 1);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), a.map(|r| r).id());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_partition_panics() {
        let no_cache = |_: u64, _: usize| None;
        numbers(2, 1).compute(5, &no_cache);
    }
}
