//! The Fig. 10 job runner: iterative workloads over cached RDDs, vanilla
//! Spark vs DAHI.
//!
//! Each job materializes a cached dataset RDD, then runs `iterations`
//! passes that read every cached partition, do per-record compute, and
//! aggregate with a reduce. The executor cache is deliberately smaller
//! than the medium/large datasets so partitions spill — to local disk for
//! vanilla Spark, to disaggregated memory for DAHI. Completion time is
//! virtual, as everywhere in this workspace.

use crate::executor::{BlockId, BlockManager, BlockStats, SpillBackend};
use crate::rdd::Rdd;
use crate::record::Record;
use dmem_core::{DiskTier, DisaggregatedMemory};
use dmem_sim::{CostModel, SimClock, SimDuration};
use dmem_types::{ByteSize, ClusterConfig, DmemResult, NodeId, ServerId};
use std::sync::Arc;

/// The Fig. 10 dataset categories: small caches fully in executor
/// memory; medium and large exhibit partial caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetSize {
    /// RDDs fit fully in memory.
    Small,
    /// Some partitions spill.
    Medium,
    /// Most partitions spill.
    Large,
}

impl DatasetSize {
    /// All three categories, in Fig. 10 order.
    pub const ALL: [DatasetSize; 3] = [DatasetSize::Small, DatasetSize::Medium, DatasetSize::Large];

    /// Records-per-partition multiplier relative to [`DatasetSize::Small`].
    pub fn scale(self) -> usize {
        match self {
            DatasetSize::Small => 1,
            DatasetSize::Medium => 4,
            DatasetSize::Large => 8,
        }
    }
}

impl std::fmt::Display for DatasetSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DatasetSize::Small => "small",
            DatasetSize::Medium => "medium",
            DatasetSize::Large => "large",
        };
        f.write_str(name)
    }
}

/// Where evicted cached partitions go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpillTier {
    /// Vanilla Spark `MEMORY_AND_DISK`.
    VanillaDisk,
    /// DAHI off-heap disaggregated memory.
    Dahi,
}

impl std::fmt::Display for SpillTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SpillTier::VanillaDisk => "vanilla-spark",
            SpillTier::Dahi => "DAHI",
        })
    }
}

/// Parameters of one Fig. 10 workload.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload name as in the paper.
    pub name: &'static str,
    /// Iterations over the cached dataset.
    pub iterations: usize,
    /// Cached-RDD partitions.
    pub partitions: usize,
    /// Records per partition at [`DatasetSize::Small`].
    pub base_records: usize,
    /// Feature-vector width.
    pub values_per_record: usize,
    /// CPU work per record per iteration.
    pub compute_per_record: SimDuration,
    /// Deterministic seed.
    pub seed: u64,
}

impl JobSpec {
    /// The four Fig. 10 workloads. The compute intensities are chosen so
    /// the measured DAHI speedups land in the figure's bands (LR 1.7x/
    /// 4.3x, SVM 3.3x/5.8x, KMeans 2.5x/3.1x, CC 1.3x/1.9x for medium/
    /// large).
    pub fn fig10_suite() -> Vec<JobSpec> {
        vec![
            JobSpec {
                name: "LogisticRegression",
                iterations: 10,
                partitions: 8,
                base_records: 6_000,
                values_per_record: 10,
                compute_per_record: SimDuration::from_nanos(350),
                seed: 101,
            },
            JobSpec {
                name: "SVM",
                iterations: 12,
                partitions: 8,
                base_records: 6_000,
                values_per_record: 10,
                compute_per_record: SimDuration::from_nanos(140),
                seed: 102,
            },
            JobSpec {
                name: "KMeans",
                iterations: 10,
                partitions: 8,
                base_records: 6_000,
                values_per_record: 12,
                compute_per_record: SimDuration::from_nanos(200),
                seed: 103,
            },
            JobSpec {
                name: "ConnectedComponents",
                iterations: 8,
                partitions: 8,
                base_records: 6_000,
                values_per_record: 8,
                compute_per_record: SimDuration::from_nanos(700),
                seed: 104,
            },
        ]
    }

    /// Looks up a Fig. 10 workload by name.
    pub fn named(name: &str) -> Option<JobSpec> {
        JobSpec::fig10_suite().into_iter().find(|s| s.name == name)
    }

    /// Serialized bytes of one partition at `size`.
    pub fn partition_bytes(&self, size: DatasetSize) -> ByteSize {
        let per_record = 8 + 4 + 8 * self.values_per_record;
        ByteSize::from(4 + self.base_records * size.scale() * per_record)
    }
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Workload name.
    pub workload: String,
    /// Spill tier used.
    pub tier: SpillTier,
    /// Dataset category.
    pub size: DatasetSize,
    /// Virtual completion time.
    pub completion: SimDuration,
    /// Block-manager statistics.
    pub cache: BlockStats,
}

/// Executor cache capacity: sized so `Small` datasets fit fully and
/// larger ones partially (the Fig. 10 setup).
pub fn executor_capacity(spec: &JobSpec) -> ByteSize {
    // 1.5x the small dataset: small fully cached, medium ~37%, large ~19%.
    ByteSize::from(
        (spec.partition_bytes(DatasetSize::Small).as_u64() as usize * spec.partitions * 3) / 2,
    )
}

fn build_manager(spec: &JobSpec, tier: SpillTier) -> DmemResult<(SimClock, BlockManager)> {
    let cost = CostModel::paper_default();
    match tier {
        SpillTier::VanillaDisk => {
            let clock = SimClock::new();
            let node = NodeId::new(0);
            let backend = SpillBackend::VanillaDisk {
                disk: DiskTier::new(clock.clone(), cost),
                node,
                server: ServerId::new(node, 0),
            };
            Ok((
                clock.clone(),
                BlockManager::new(executor_capacity(spec), clock, cost, backend),
            ))
        }
        SpillTier::Dahi => {
            let mut config = ClusterConfig::small();
            config.nodes = 6;
            config.group_size = 6;
            config.server.memory = ByteSize::from_mib(8);
            // A well-provisioned shared pool: DAHI's Fig. 10 setup has
            // ample idle executor memory to donate.
            config.server.donation = dmem_types::DonationPolicy::fixed(0.4);
            config.node.dram = ByteSize::from_mib(128);
            config.node.recv_pool = ByteSize::from_mib(32);
            config.seed = spec.seed;
            let dm = Arc::new(DisaggregatedMemory::new(config)?);
            let server = dm.servers()[0];
            let clock = dm.clock().clone();
            let backend = SpillBackend::Dahi { dm, server };
            Ok((
                clock.clone(),
                BlockManager::new(executor_capacity(spec), clock, cost, backend),
            ))
        }
    }
}

fn dataset_rdd(spec: &JobSpec, size: DatasetSize) -> Arc<Rdd> {
    let records = spec.base_records * size.scale();
    let width = spec.values_per_record;
    Rdd::source(spec.partitions, spec.seed, move |p, rng| {
        (0..records)
            .map(|i| {
                let values = (0..width).map(|_| rng.unit()).collect();
                Record::new((p * records + i) as u64, values)
            })
            .collect()
    })
}

/// Runs one iterative workload and measures virtual completion time.
///
/// # Errors
///
/// Propagates storage-tier failures.
pub fn run_iterative_job(
    spec: &JobSpec,
    size: DatasetSize,
    tier: SpillTier,
) -> DmemResult<JobResult> {
    let (clock, mut bm) = build_manager(spec, tier)?;
    let dataset = dataset_rdd(spec, size);
    let start = clock.now();
    let no_cache = |_: u64, _: usize| None;

    // Materialize & cache the dataset (the first pass computes from
    // lineage and caches; Spark does the same on the first action).
    {
        let stage = clock.tracer().span("rdd", "materialize");
        stage.tag("partitions", spec.partitions);
        for p in 0..spec.partitions {
            let task = clock.tracer().span("rdd", "task");
            task.tag("partition", p);
            let records = dataset.compute(p, &no_cache);
            clock.advance(spec.compute_per_record * records.len() as u64);
            bm.put(BlockId::new(dataset.id(), p), records)?;
        }
    }

    // Iterations: read every cached partition, compute, aggregate.
    for iter in 0..spec.iterations {
        let stage = clock.tracer().span("rdd", "iteration");
        stage.tag("iter", iter);
        let mut aggregate = vec![0.0f64; spec.values_per_record];
        for p in 0..spec.partitions {
            let task = clock.tracer().span("rdd", "task");
            task.tag("partition", p);
            let records = match bm.get(BlockId::new(dataset.id(), p))? {
                Some(r) => r,
                None => {
                    // Lost block (MEMORY_ONLY semantics would land here):
                    // recompute from lineage and re-cache.
                    let r = dataset.compute(p, &no_cache);
                    clock.advance(spec.compute_per_record * r.len() as u64);
                    bm.put(BlockId::new(dataset.id(), p), r)?
                }
            };
            clock.advance(spec.compute_per_record * records.len() as u64);
            for record in records.iter() {
                for (slot, v) in aggregate.iter_mut().zip(&record.values) {
                    *slot += v;
                }
            }
        }
        // Driver-side reduce of a tiny vector: negligible, charged as one
        // cache-line-scale DRAM access.
        clock.advance(CostModel::paper_default().dram.transfer(aggregate.len() * 8));
    }

    Ok(JobResult {
        workload: spec.name.to_owned(),
        tier,
        size,
        completion: clock.now() - start,
        cache: bm.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_fig10_workloads() {
        let names: Vec<&str> = JobSpec::fig10_suite().iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["LogisticRegression", "SVM", "KMeans", "ConnectedComponents"]
        );
        assert!(JobSpec::named("SVM").is_some());
        assert!(JobSpec::named("Nope").is_none());
    }

    #[test]
    fn small_dataset_fits_no_spills() {
        let spec = JobSpec::named("LogisticRegression").unwrap();
        for tier in [SpillTier::VanillaDisk, SpillTier::Dahi] {
            let result = run_iterative_job(&spec, DatasetSize::Small, tier).unwrap();
            assert_eq!(result.cache.spills, 0, "{tier}: small must fit in memory");
            assert_eq!(result.cache.misses, 0);
        }
    }

    #[test]
    fn small_runs_are_tier_equivalent() {
        // When everything fits, vanilla and DAHI must cost the same — the
        // Fig. 10 bars for the small datasets coincide.
        let spec = JobSpec::named("KMeans").unwrap();
        let vanilla = run_iterative_job(&spec, DatasetSize::Small, SpillTier::VanillaDisk).unwrap();
        let dahi = run_iterative_job(&spec, DatasetSize::Small, SpillTier::Dahi).unwrap();
        let ratio = vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio:.3}");
    }

    #[test]
    fn medium_and_large_spill() {
        let spec = JobSpec::named("SVM").unwrap();
        let medium =
            run_iterative_job(&spec, DatasetSize::Medium, SpillTier::VanillaDisk).unwrap();
        assert!(medium.cache.spills > 0);
        assert!(medium.cache.spill_hits > 0);
    }

    #[test]
    fn dahi_beats_vanilla_under_pressure() {
        let spec = JobSpec::named("LogisticRegression").unwrap();
        for size in [DatasetSize::Medium, DatasetSize::Large] {
            let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk).unwrap();
            let dahi = run_iterative_job(&spec, size, SpillTier::Dahi).unwrap();
            let speedup =
                vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64;
            assert!(
                speedup > 1.2,
                "{size}: DAHI speedup only {speedup:.2}x over vanilla"
            );
        }
    }

    #[test]
    fn speedup_grows_with_dataset_size() {
        // Fig. 10: the large-dataset speedup exceeds the medium one for
        // every workload.
        let spec = JobSpec::named("SVM").unwrap();
        let speedup = |size| {
            let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk).unwrap();
            let dahi = run_iterative_job(&spec, size, SpillTier::Dahi).unwrap();
            vanilla.completion.as_nanos() as f64 / dahi.completion.as_nanos() as f64
        };
        let medium = speedup(DatasetSize::Medium);
        let large = speedup(DatasetSize::Large);
        assert!(large > medium, "large {large:.2}x <= medium {medium:.2}x");
    }

    #[test]
    fn partition_bytes_scales() {
        let spec = JobSpec::named("KMeans").unwrap();
        let small = spec.partition_bytes(DatasetSize::Small);
        let large = spec.partition_bytes(DatasetSize::Large);
        // Both carry a 4-byte header, so the payload scales exactly 8x.
        assert_eq!((large.as_u64() - 4) / (small.as_u64() - 4), 8);
    }
}
