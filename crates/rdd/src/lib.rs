//! A mini dataflow engine with RDDs and the DAHI disaggregated cache
//! (paper §V-B, Fig. 10).
//!
//! DAHI is the authors' second prototype: off-heap caching of Spark RDD
//! partitions in disaggregated memory, so executors that cannot fit their
//! cached RDDs in memory spill to the node shared pool and cluster remote
//! memory instead of recomputing or hitting disk. To reproduce Fig. 10 we
//! need the Spark mechanics that produce its numbers — no more, no less:
//!
//! * immutable, partitioned [`Rdd`]s with lineage-based recomputation
//!   ([`rdd`]);
//! * narrow (map/filter) and wide (reduce-by-key) transformations;
//! * an executor [`BlockManager`] with a bounded memory store, LRU
//!   eviction and a pluggable spill tier ([`executor`]): vanilla Spark
//!   spills to local disk, DAHI spills to a [`DisaggregatedMemory`]
//!   cluster in page-sized chunks;
//! * an iterative job runner charging compute, (de)serialization and
//!   storage costs to the virtual clock ([`job`]).
//!
//! [`DisaggregatedMemory`]: dmem_core::DisaggregatedMemory
//!
//! # Examples
//!
//! ```
//! use dmem_rdd::job::{run_iterative_job, DatasetSize, JobSpec, SpillTier};
//!
//! let spec = JobSpec::named("LogisticRegression").expect("known Fig. 10 job");
//! let vanilla = run_iterative_job(&spec, DatasetSize::Medium, SpillTier::VanillaDisk).unwrap();
//! let dahi = run_iterative_job(&spec, DatasetSize::Medium, SpillTier::Dahi).unwrap();
//! assert!(dahi.completion < vanilla.completion, "DAHI must beat disk spill");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod job;
pub mod rdd;
pub mod record;

pub use executor::{BlockId, BlockManager, BlockStats, SpillBackend};
pub use job::{run_iterative_job, DatasetSize, JobResult, JobSpec, SpillTier};
pub use rdd::Rdd;
pub use record::Record;
