//! The record type flowing through RDDs, with a compact serialization
//! used when partitions are cached off-heap.

use dmem_types::{DmemError, DmemResult, EntryId};

/// A keyed feature vector — the shape of the data in every Fig. 10
/// workload (labels/weights/edges are all `key + f64 values`).
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Record key (sample id, vertex id, cluster id…).
    pub key: u64,
    /// Numeric payload.
    pub values: Vec<f64>,
}

impl Record {
    /// Creates a record.
    pub fn new(key: u64, values: Vec<f64>) -> Self {
        Record { key, values }
    }

    /// Serialized size in bytes: 8 (key) + 4 (len) + 8 per value.
    pub fn serialized_len(&self) -> usize {
        8 + 4 + 8 * self.values.len()
    }

    /// Appends this record's wire form to `out`.
    pub fn write_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.key.to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn read_from(buf: &[u8], pos: &mut usize) -> DmemResult<Record> {
        // Parse in place — this runs once per record on every cache read,
        // so it must not allocate beyond the `values` vector itself.
        let corrupt = || DmemError::Corrupt(EntryId::default());
        fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Option<[u8; N]> {
            let bytes = buf.get(*pos..*pos + N)?;
            *pos += N;
            Some(bytes.try_into().expect("slice of length N"))
        }
        let key = u64::from_le_bytes(take::<8>(buf, pos).ok_or_else(corrupt)?);
        let len = u32::from_le_bytes(take::<4>(buf, pos).ok_or_else(corrupt)?) as usize;
        if len > (buf.len() - *pos) / 8 {
            return Err(corrupt());
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(f64::from_le_bytes(take::<8>(buf, pos).ok_or_else(corrupt)?));
        }
        Ok(Record { key, values })
    }
}

/// Serializes a whole partition.
pub fn serialize_partition(records: &[Record]) -> Vec<u8> {
    let total: usize = 4 + records.iter().map(Record::serialized_len).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for r in records {
        r.write_to(&mut out);
    }
    out
}

/// Deserializes a partition produced by [`serialize_partition`].
///
/// # Errors
///
/// Returns [`DmemError::Corrupt`] on truncated or malformed bytes.
pub fn deserialize_partition(buf: &[u8]) -> DmemResult<Vec<Record>> {
    if buf.len() < 4 {
        return Err(DmemError::Corrupt(EntryId::default()));
    }
    let count = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    let mut pos = 4;
    let mut records = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        records.push(Record::read_from(buf, &mut pos)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let records = vec![
            Record::new(1, vec![1.0, 2.5]),
            Record::new(2, vec![]),
            Record::new(u64::MAX, vec![f64::MIN, f64::MAX, f64::NAN]),
        ];
        let bytes = serialize_partition(&records);
        let back = deserialize_partition(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], records[0]);
        assert_eq!(back[1], records[1]);
        assert_eq!(back[2].key, u64::MAX);
        assert!(back[2].values[2].is_nan());
    }

    #[test]
    fn serialized_len_is_exact() {
        let r = Record::new(7, vec![1.0; 5]);
        let mut buf = Vec::new();
        r.write_to(&mut buf);
        assert_eq!(buf.len(), r.serialized_len());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = serialize_partition(&[Record::new(1, vec![2.0, 3.0])]);
        for cut in [0, 3, 5, 12, bytes.len() - 1] {
            assert!(
                deserialize_partition(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn hostile_length_rejected() {
        // Claims 2^32-1 records in 8 bytes.
        let mut bytes = vec![0xFF, 0xFF, 0xFF, 0xFF];
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(deserialize_partition(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            recs in proptest::collection::vec(
                (any::<u64>(), proptest::collection::vec(-1e12f64..1e12, 0..16)),
                0..64,
            )
        ) {
            let records: Vec<Record> = recs.into_iter().map(|(k, v)| Record::new(k, v)).collect();
            let back = deserialize_partition(&serialize_partition(&records)).unwrap();
            prop_assert_eq!(back, records);
        }
    }
}
