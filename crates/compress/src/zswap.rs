//! A zswap-style compressed RAM cache with zbud packing.
//!
//! zswap (the paper's reference \[32\], its Fig. 3 baseline) keeps
//! compressed swap pages in a RAM pool in front of the disk swap device.
//! Its classic `zbud` allocator packs at most **two** compressed objects
//! per 4 KiB frame, capping the effective compression ratio at 2 — which
//! is exactly why FastSwap's 4-granularity size classes beat it in Fig. 3.
//!
//! This implementation reproduces the mechanics that matter:
//!
//! * buddy packing: two objects share a frame when their compressed sizes
//!   fit together;
//! * rejection of poorly compressible pages (they go straight to disk);
//! * LRU eviction of whole entries when the pool is full, handing evicted
//!   pages back to the caller for disk writeback.

use crate::codec::CompressedPage;
use std::collections::HashMap;

/// Frame payload capacity: 4 KiB minus zbud's per-frame metadata.
const FRAME_CAPACITY: usize = 4096 - 56;
/// Pages whose compressed form exceeds this are rejected (stored
/// uncompressed on the swap device instead), mirroring zswap's
/// `max_compressed_size` behaviour.
const REJECT_THRESHOLD: usize = 4096 * 3 / 4;

#[derive(Debug)]
struct Slot {
    key: u64,
    page: CompressedPage,
    lru_tick: u64,
}

#[derive(Debug, Default)]
struct Frame {
    slots: Vec<Slot>, // at most 2 (zbud = "buddies")
}

impl Frame {
    fn used(&self) -> usize {
        self.slots.iter().map(|s| s.page.data.len()).sum()
    }
    fn free(&self) -> usize {
        FRAME_CAPACITY - self.used()
    }
}

/// Outcome of a [`ZswapCache::insert`].
#[derive(Debug, PartialEq, Eq)]
pub enum ZswapInsert {
    /// Stored in the pool; any entries evicted to make room are returned
    /// (oldest first) for writeback to the backing swap device.
    Stored {
        /// Entries evicted to make room.
        evicted: Vec<(u64, CompressedPage)>,
    },
    /// Rejected as poorly compressible; the caller must write the page to
    /// the backing device directly.
    Rejected(CompressedPage),
}

/// Aggregate statistics of a [`ZswapCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ZswapStats {
    /// Entries currently stored.
    pub stored_pages: usize,
    /// 4 KiB frames currently allocated.
    pub frames: usize,
    /// Pages rejected as poorly compressible since creation.
    pub rejected: u64,
    /// Entries evicted to the backing device since creation.
    pub evicted: u64,
}

impl ZswapStats {
    /// Effective compression ratio: original bytes stored per frame byte.
    /// At most 2.0 by construction of zbud.
    pub fn effective_ratio(&self) -> f64 {
        if self.frames == 0 {
            1.0
        } else {
            (self.stored_pages as f64 * 4096.0) / (self.frames as f64 * 4096.0)
        }
    }
}

/// The compressed RAM cache.
///
/// # Examples
///
/// ```
/// use dmem_compress::{PageCodec, ZswapCache};
/// use dmem_types::CompressionMode;
///
/// let codec = PageCodec::new(CompressionMode::FourGranularity);
/// let mut cache = ZswapCache::new(4); // four 4 KiB frames
/// let page = codec.compress(&vec![0u8; 4096]);
/// cache.insert(1, page);
/// assert!(cache.get(1).is_some());
/// assert_eq!(cache.stats().stored_pages, 1);
/// ```
#[derive(Debug)]
pub struct ZswapCache {
    frames: Vec<Frame>,
    max_frames: usize,
    index: HashMap<u64, usize>, // key -> frame index
    tick: u64,
    rejected: u64,
    evicted: u64,
}

impl ZswapCache {
    /// Creates a cache holding at most `max_frames` 4 KiB frames.
    pub fn new(max_frames: usize) -> Self {
        ZswapCache {
            frames: Vec::new(),
            max_frames,
            index: HashMap::new(),
            tick: 0,
            rejected: 0,
            evicted: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Inserts a compressed page under `key`, evicting LRU entries if the
    /// pool is full. Re-inserting an existing key replaces the old entry.
    pub fn insert(&mut self, key: u64, page: CompressedPage) -> ZswapInsert {
        if page.data.len() > REJECT_THRESHOLD {
            self.rejected += 1;
            return ZswapInsert::Rejected(page);
        }
        self.remove(key);
        let mut evicted = Vec::new();
        loop {
            // Best-fit among frames with room for a buddy.
            let fit = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.slots.len() < 2 && f.free() >= page.data.len())
                .min_by_key(|(_, f)| f.free());
            if let Some((idx, _)) = fit {
                let tick = self.next_tick();
                self.frames[idx].slots.push(Slot {
                    key,
                    page,
                    lru_tick: tick,
                });
                self.index.insert(key, idx);
                return ZswapInsert::Stored { evicted };
            }
            if self.frames.len() < self.max_frames {
                self.frames.push(Frame::default());
                continue;
            }
            match self.evict_lru() {
                Some(victim) => evicted.push(victim),
                None => {
                    // Pool of zero frames: behave like rejection.
                    self.rejected += 1;
                    return ZswapInsert::Rejected(page);
                }
            }
        }
    }

    /// Membership probe without LRU side effects.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    /// Looks up `key`, refreshing its LRU position.
    pub fn get(&mut self, key: u64) -> Option<&CompressedPage> {
        let frame_idx = *self.index.get(&key)?;
        let tick = self.next_tick();
        let slot = self.frames[frame_idx]
            .slots
            .iter_mut()
            .find(|s| s.key == key)?;
        slot.lru_tick = tick;
        Some(&slot.page)
    }

    /// Removes and returns the entry under `key`.
    pub fn remove(&mut self, key: u64) -> Option<CompressedPage> {
        let frame_idx = self.index.remove(&key)?;
        let frame = &mut self.frames[frame_idx];
        let pos = frame.slots.iter().position(|s| s.key == key)?;
        let slot = frame.slots.remove(pos);
        self.compact();
        Some(slot.page)
    }

    fn evict_lru(&mut self) -> Option<(u64, CompressedPage)> {
        let key = self
            .frames
            .iter()
            .flat_map(|f| f.slots.iter())
            .min_by_key(|s| s.lru_tick)
            .map(|s| s.key)?;
        let page = self.remove(key)?;
        self.evicted += 1;
        Some((key, page))
    }

    /// Drops empty frames (zbud frees frames whose buddies are both gone).
    fn compact(&mut self) {
        if self.frames.iter().any(|f| f.slots.is_empty()) {
            let mut new_frames = Vec::with_capacity(self.frames.len());
            let mut new_index = HashMap::with_capacity(self.index.len());
            for frame in self.frames.drain(..) {
                if frame.slots.is_empty() {
                    continue;
                }
                for slot in &frame.slots {
                    new_index.insert(slot.key, new_frames.len());
                }
                new_frames.push(frame);
            }
            self.frames = new_frames;
            self.index = new_index;
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ZswapStats {
        ZswapStats {
            stored_pages: self.index.len(),
            frames: self.frames.len(),
            rejected: self.rejected,
            evicted: self.evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::PageCodec;
    use crate::synth;
    use dmem_types::CompressionMode;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn codec() -> PageCodec {
        PageCodec::new(CompressionMode::FourGranularity)
    }

    fn compressible_page(seed: u64) -> CompressedPage {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        codec().compress(&synth::page_with_ratio(6.0, &mut rng))
    }

    #[test]
    fn buddies_share_frames() {
        let mut cache = ZswapCache::new(8);
        for key in 0..4 {
            assert!(matches!(
                cache.insert(key, compressible_page(key)),
                ZswapInsert::Stored { .. }
            ));
        }
        let stats = cache.stats();
        assert_eq!(stats.stored_pages, 4);
        assert_eq!(stats.frames, 2, "four small pages pack into two frames");
        assert!((stats.effective_ratio() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn effective_ratio_capped_at_two() {
        let mut cache = ZswapCache::new(64);
        // Even pages compressing 8x cannot beat zbud's 2-per-frame cap.
        for key in 0..32 {
            cache.insert(key, codec().compress(&synth::zero_page()));
        }
        assert!(cache.stats().effective_ratio() <= 2.0 + 1e-9);
    }

    #[test]
    fn incompressible_pages_rejected() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let raw = codec().compress(&synth::random_page(&mut rng));
        let mut cache = ZswapCache::new(8);
        assert!(matches!(cache.insert(1, raw), ZswapInsert::Rejected(_)));
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().stored_pages, 0);
    }

    #[test]
    fn full_pool_evicts_lru() {
        let mut cache = ZswapCache::new(1); // one frame = two buddies max
        cache.insert(1, compressible_page(1));
        cache.insert(2, compressible_page(2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(cache.get(1).is_some());
        let result = cache.insert(3, compressible_page(3));
        match result {
            ZswapInsert::Stored { evicted } => {
                assert_eq!(evicted.len(), 1);
                assert_eq!(evicted[0].0, 2, "LRU entry (key 2) should be evicted");
            }
            other => panic!("expected Stored, got {other:?}"),
        }
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn remove_frees_frames() {
        let mut cache = ZswapCache::new(4);
        cache.insert(1, compressible_page(1));
        cache.insert(2, compressible_page(2));
        assert!(cache.remove(1).is_some());
        assert!(cache.remove(2).is_some());
        assert_eq!(cache.stats().frames, 0);
        assert!(cache.remove(1).is_none(), "double remove returns None");
    }

    #[test]
    fn reinsert_replaces() {
        let mut cache = ZswapCache::new(4);
        cache.insert(7, compressible_page(1));
        cache.insert(7, compressible_page(2));
        assert_eq!(cache.stats().stored_pages, 1);
    }

    #[test]
    fn zero_capacity_pool_rejects() {
        let mut cache = ZswapCache::new(0);
        assert!(matches!(
            cache.insert(1, compressible_page(1)),
            ZswapInsert::Rejected(_)
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_pool_never_exceeds_capacity(
            max_frames in 1usize..8,
            keys in proptest::collection::vec(0u64..32, 1..48),
        ) {
            let mut cache = ZswapCache::new(max_frames);
            for key in keys {
                let _ = cache.insert(key, compressible_page(key));
                prop_assert!(cache.stats().frames <= max_frames);
                let s = cache.stats();
                prop_assert!(s.effective_ratio() <= 2.0 + 1e-9);
            }
        }

        #[test]
        fn prop_get_returns_inserted_payload(seed in 0u64..64) {
            let mut cache = ZswapCache::new(8);
            let page = compressible_page(seed);
            let expected = page.clone();
            cache.insert(seed, page);
            prop_assert_eq!(cache.get(seed).unwrap(), &expected);
        }
    }
}
