//! The size-class page codec used by FastSwap.

use crate::lz;
use dmem_types::{checksum, CompressionMode, DmemError, DmemResult, EntryId, SizeClass, PAGE_SIZE};

/// A page after compression, tagged with the size class it is stored in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPage {
    /// The stored bytes: LZ stream, or the raw page when incompressible
    /// (exactly `PAGE_SIZE` bytes in that case).
    pub data: Vec<u8>,
    /// Size class the page occupies in slab storage.
    pub class: SizeClass,
    /// Original (uncompressed) length.
    pub original_len: usize,
    /// `true` if `data` is an LZ stream, `false` if raw.
    pub is_compressed: bool,
    /// FNV-1a checksum of the original page.
    pub checksum: u64,
}

impl CompressedPage {
    /// Bytes of slab storage this page consumes (its class footprint).
    pub fn stored_bytes(&self) -> usize {
        self.class.bytes().as_u64() as usize
    }

    /// Per-page compression ratio: original size over class footprint.
    pub fn ratio(&self) -> f64 {
        self.original_len as f64 / self.stored_bytes() as f64
    }
}

/// Compresses and decompresses pages under a [`CompressionMode`] policy.
///
/// With [`CompressionMode::Off`] every page is stored raw in the 4 KiB
/// class; the granularity modes compress and round up to the smallest
/// allowed class. Pages whose LZ stream does not fit any class smaller
/// than 4 KiB are stored raw — decompression cost is never paid for
/// incompressible pages.
///
/// # Examples
///
/// ```
/// use dmem_compress::PageCodec;
/// use dmem_types::{CompressionMode, SizeClass};
///
/// let codec = PageCodec::new(CompressionMode::TwoGranularity);
/// let page = vec![0u8; 4096]; // maximally compressible
/// let stored = codec.compress(&page);
/// // Two-granularity mode cannot do better than the 2 KiB class:
/// assert_eq!(stored.class, SizeClass::C2K);
/// assert_eq!(codec.decompress(&stored).unwrap(), page);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageCodec {
    mode: CompressionMode,
}

impl PageCodec {
    /// Creates a codec for the given mode.
    pub fn new(mode: CompressionMode) -> Self {
        PageCodec { mode }
    }

    /// The codec's compression mode.
    pub fn mode(&self) -> CompressionMode {
        self.mode
    }

    /// Compresses one page (at most [`PAGE_SIZE`] bytes).
    ///
    /// # Panics
    ///
    /// Panics if `page` exceeds [`PAGE_SIZE`] bytes; page-granularity
    /// callers never construct larger buffers.
    pub fn compress(&self, page: &[u8]) -> CompressedPage {
        assert!(
            page.len() <= PAGE_SIZE,
            "page of {} bytes exceeds PAGE_SIZE",
            page.len()
        );
        let sum = checksum(page);
        if self.mode.is_enabled() {
            // A stream longer than the largest sub-4K class would be
            // stored raw anyway, so the matcher may stop at that budget —
            // surviving streams are byte-identical to an unbounded run.
            let budget = self
                .mode
                .classes()
                .iter()
                .filter(|c| **c < SizeClass::C4K)
                .map(|c| c.bytes().as_u64() as usize)
                .max();
            let mut stream = Vec::new();
            if let Some(budget) = budget {
                if lz::compress_within(page, budget, &mut stream) {
                    // Pick the smallest allowed class that fits the
                    // stream (within budget, so below 4 KiB).
                    let class = SizeClass::fitting_among(stream.len(), self.mode.classes())
                        .expect("stream within budget fits a class");
                    return CompressedPage {
                        data: stream,
                        class,
                        original_len: page.len(),
                        is_compressed: true,
                        checksum: sum,
                    };
                }
            }
        }
        CompressedPage {
            data: page.to_vec(),
            class: SizeClass::C4K,
            original_len: page.len(),
            is_compressed: false,
            checksum: sum,
        }
    }

    /// Decompresses a stored page and verifies its checksum.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::Corrupt`] if the stream is malformed or the
    /// checksum does not match (the entry id in the error is a zero
    /// placeholder; callers with context attach their own).
    pub fn decompress(&self, stored: &CompressedPage) -> DmemResult<Vec<u8>> {
        let page = if stored.is_compressed {
            lz::decompress(&stored.data, stored.original_len)
                .map_err(|_| DmemError::Corrupt(EntryId::default()))?
        } else {
            stored.data.clone()
        };
        if checksum(&page) != stored.checksum {
            return Err(DmemError::Corrupt(EntryId::default()));
        }
        Ok(page)
    }

    /// Aggregate compression ratio over a set of pages: total original
    /// bytes over total class-footprint bytes. This is the metric Fig. 3
    /// plots per workload.
    pub fn aggregate_ratio<'a, I>(&self, pages: I) -> f64
    where
        I: IntoIterator<Item = &'a [u8]>,
    {
        let mut original = 0usize;
        let mut stored = 0usize;
        for page in pages {
            let c = self.compress(page);
            original += c.original_len;
            stored += c.stored_bytes();
        }
        if stored == 0 {
            1.0
        } else {
            original as f64 / stored as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn off_mode_stores_raw() {
        let codec = PageCodec::new(CompressionMode::Off);
        let page = vec![0u8; PAGE_SIZE];
        let stored = codec.compress(&page);
        assert_eq!(stored.class, SizeClass::C4K);
        assert!(!stored.is_compressed);
        assert_eq!(stored.ratio(), 1.0);
        assert_eq!(codec.decompress(&stored).unwrap(), page);
    }

    #[test]
    fn four_granularity_reaches_512b() {
        let codec = PageCodec::new(CompressionMode::FourGranularity);
        let stored = codec.compress(&vec![0u8; PAGE_SIZE]);
        assert_eq!(stored.class, SizeClass::C512);
        assert!((stored.ratio() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn two_granularity_floor_is_2k() {
        let codec = PageCodec::new(CompressionMode::TwoGranularity);
        let stored = codec.compress(&vec![0u8; PAGE_SIZE]);
        assert_eq!(stored.class, SizeClass::C2K);
    }

    #[test]
    fn incompressible_page_stored_raw() {
        use rand::RngCore;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut page = vec![0u8; PAGE_SIZE];
        rng.fill_bytes(&mut page);
        let codec = PageCodec::new(CompressionMode::FourGranularity);
        let stored = codec.compress(&page);
        assert_eq!(stored.class, SizeClass::C4K);
        assert!(!stored.is_compressed, "random page must be stored raw");
        assert_eq!(codec.decompress(&stored).unwrap(), page);
    }

    #[test]
    fn checksum_detects_tampering() {
        let codec = PageCodec::new(CompressionMode::Off);
        let mut stored = codec.compress(&vec![42u8; PAGE_SIZE]);
        stored.data[100] ^= 0xFF;
        assert!(matches!(
            codec.decompress(&stored),
            Err(DmemError::Corrupt(_))
        ));
    }

    #[test]
    fn corrupt_stream_detected() {
        let codec = PageCodec::new(CompressionMode::FourGranularity);
        let mut stored = codec.compress(&vec![0u8; PAGE_SIZE]);
        assert!(stored.is_compressed);
        stored.data.truncate(stored.data.len() / 2);
        assert!(codec.decompress(&stored).is_err());
    }

    #[test]
    fn four_granularity_never_worse_than_two() {
        let four = PageCodec::new(CompressionMode::FourGranularity);
        let two = PageCodec::new(CompressionMode::TwoGranularity);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for ratio in [1.0, 1.5, 2.0, 3.0, 5.0, 8.0] {
            let pages: Vec<Vec<u8>> = (0..16)
                .map(|_| synth::page_with_ratio(ratio, &mut rng))
                .collect();
            let r4 = four.aggregate_ratio(pages.iter().map(|p| p.as_slice()));
            let r2 = two.aggregate_ratio(pages.iter().map(|p| p.as_slice()));
            assert!(
                r4 >= r2 - 1e-9,
                "4-granularity ({r4:.2}) must dominate 2-granularity ({r2:.2}) at target {ratio}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds PAGE_SIZE")]
    fn oversized_page_panics() {
        PageCodec::new(CompressionMode::Off).compress(&vec![0u8; PAGE_SIZE + 1]);
    }

    #[test]
    fn aggregate_ratio_empty_is_one() {
        let codec = PageCodec::new(CompressionMode::FourGranularity);
        assert_eq!(codec.aggregate_ratio(std::iter::empty::<&[u8]>()), 1.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_all_modes(seed in 0u64..200, ratio in 1.0f64..8.0) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let page = synth::page_with_ratio(ratio, &mut rng);
            for mode in [CompressionMode::Off, CompressionMode::TwoGranularity, CompressionMode::FourGranularity] {
                let codec = PageCodec::new(mode);
                let stored = codec.compress(&page);
                prop_assert_eq!(codec.decompress(&stored).unwrap(), page.clone());
                prop_assert!(stored.data.len() <= stored.stored_bytes());
            }
        }
    }
}
