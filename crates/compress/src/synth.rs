//! Synthetic pages with calibrated compressibility.
//!
//! The paper's Fig. 3-5 vary *page compressibility* across ten ML
//! workloads. We cannot replay the authors' application memory, so this
//! module fabricates pages whose LZ-compressed size lands near a target
//! ratio: each page is a prefix of incompressible random bytes followed by
//! a repeated motif, with the split point solved from the codec's token
//! economics.

use dmem_types::PAGE_SIZE;
use rand::Rng;

/// Bytes of LZ output per motif byte covered (3-byte match tokens covering
/// up to 131 bytes).
const MATCH_COST_PER_BYTE: f64 = 3.0 / 131.0;
/// Bytes of LZ output per literal byte (control byte per 128-byte run).
const LITERAL_COST_PER_BYTE: f64 = 1.0 + 1.0 / 128.0;

/// Generates a 4 KiB page whose LZ-compressed size approximates
/// `PAGE_SIZE / target_ratio`.
///
/// Ratios at or below 1.0 yield fully random (incompressible) pages;
/// ratios of 8 and above yield nearly constant pages. In between, the
/// achieved ratio is monotone in the target (verified by property test),
/// which is all the experiments rely on.
///
/// # Examples
///
/// ```
/// use dmem_compress::{lz, synth};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let page = synth::page_with_ratio(4.0, &mut rng);
/// let achieved = page.len() as f64 / lz::compress(&page).len() as f64;
/// assert!(achieved > 2.5 && achieved < 6.0);
/// ```
pub fn page_with_ratio<R: Rng>(target_ratio: f64, rng: &mut R) -> Vec<u8> {
    let mut page = Vec::new();
    page_with_ratio_into(target_ratio, rng, &mut page);
    page
}

/// [`page_with_ratio`] into a caller-provided buffer, reusing its
/// capacity. Every byte of the buffer is overwritten, so the result is
/// identical to the allocating variant for the same rng state.
pub fn page_with_ratio_into<R: Rng>(target_ratio: f64, rng: &mut R, page: &mut Vec<u8>) {
    let ratio = target_ratio.max(1.0);
    let target_compressed = PAGE_SIZE as f64 / ratio;
    // Solve: L*literal_cost + (PAGE_SIZE - L)*match_cost = target.
    let numerator = target_compressed - PAGE_SIZE as f64 * MATCH_COST_PER_BYTE;
    let denominator = LITERAL_COST_PER_BYTE - MATCH_COST_PER_BYTE;
    let random_len = (numerator / denominator).clamp(0.0, PAGE_SIZE as f64) as usize;

    page.clear();
    page.resize(PAGE_SIZE, 0);
    rng.fill(&mut page[..random_len]);
    // Repeated motif for the compressible tail. An 8-byte motif keeps the
    // matcher in long-match territory without degenerate RLE behaviour.
    let motif: [u8; 8] = rng.gen();
    for (i, byte) in page[random_len..].iter_mut().enumerate() {
        *byte = motif[i % motif.len()];
    }
}

/// A fully random, incompressible page.
pub fn random_page<R: Rng>(rng: &mut R) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE];
    rng.fill(&mut page[..]);
    page
}

/// An all-zero page (the most compressible case; common in practice for
/// freshly touched heap).
pub fn zero_page() -> Vec<u8> {
    vec![0u8; PAGE_SIZE]
}

/// Samples a page whose target ratio is drawn uniformly from
/// `mean_ratio ± spread`, floored at 1.0.
///
/// Workload models use this to produce a realistic per-page
/// compressibility distribution around a workload's profile mean.
pub fn page_around_ratio<R: Rng>(mean_ratio: f64, spread: f64, rng: &mut R) -> Vec<u8> {
    let mut page = Vec::new();
    page_around_ratio_into(mean_ratio, spread, rng, &mut page);
    page
}

/// [`page_around_ratio`] into a caller-provided buffer.
pub fn page_around_ratio_into<R: Rng>(
    mean_ratio: f64,
    spread: f64,
    rng: &mut R,
    page: &mut Vec<u8>,
) {
    let lo = (mean_ratio - spread).max(1.0);
    let hi = (mean_ratio + spread).max(lo + f64::EPSILON);
    let target = rng.gen_range(lo..hi);
    page_with_ratio_into(target, rng, page);
}

/// Fraction of same-filled (near-zero) pages in a realistic anonymous
/// heap; zswap's own evaluation reports 10-20% of swapped pages are
/// same-filled, which is why it special-cases them.
pub const DEFAULT_ZERO_FRACTION: f64 = 0.15;

/// Samples from the bimodal distribution real heaps exhibit: with
/// probability `zero_fraction` a same-filled page (maximally
/// compressible), otherwise a page around the workload's mean ratio.
///
/// Multi-granularity size classes profit from the same-filled mode
/// (512 B class, 8x) in a way zbud's two-buddies-per-frame cap cannot,
/// which is the structural gap Fig. 3 plots.
pub fn page_mixture<R: Rng>(
    mean_ratio: f64,
    spread: f64,
    zero_fraction: f64,
    rng: &mut R,
) -> Vec<u8> {
    let mut page = Vec::new();
    page_mixture_into(mean_ratio, spread, zero_fraction, rng, &mut page);
    page
}

/// [`page_mixture`] into a caller-provided buffer, reusing its capacity.
/// The swap engine's eviction loop routes every page generation through
/// this variant so steady-state swap-outs do no heap allocation.
pub fn page_mixture_into<R: Rng>(
    mean_ratio: f64,
    spread: f64,
    zero_fraction: f64,
    rng: &mut R,
    page: &mut Vec<u8>,
) {
    if rng.gen_bool(zero_fraction.clamp(0.0, 1.0)) {
        // Same-filled, not all-zero: a repeated word, still ~max class.
        let word: u8 = rng.gen();
        page.clear();
        page.resize(PAGE_SIZE, word);
    } else {
        page_around_ratio_into(mean_ratio, spread, rng, page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lz;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn achieved_ratio(page: &[u8]) -> f64 {
        page.len() as f64 / lz::compress(page).len() as f64
    }

    #[test]
    fn extreme_targets() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let incompressible = page_with_ratio(1.0, &mut rng);
        assert!(achieved_ratio(&incompressible) < 1.2);
        let constant = page_with_ratio(20.0, &mut rng);
        assert!(achieved_ratio(&constant) > 8.0);
    }

    #[test]
    fn mid_targets_land_near() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        for target in [1.5, 2.0, 3.0, 4.0, 6.0] {
            let mut total = 0.0;
            const N: usize = 8;
            for _ in 0..N {
                total += achieved_ratio(&page_with_ratio(target, &mut rng));
            }
            let mean = total / N as f64;
            assert!(
                (mean / target) > 0.6 && (mean / target) < 1.7,
                "target {target} achieved {mean:.2}"
            );
        }
    }

    #[test]
    fn zero_page_is_zeroes() {
        let p = zero_page();
        assert_eq!(p.len(), PAGE_SIZE);
        assert!(p.iter().all(|&b| b == 0));
        assert!(achieved_ratio(&p) > 8.0);
    }

    #[test]
    fn random_page_incompressible() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        assert!(achieved_ratio(&random_page(&mut rng)) < 1.1);
    }

    #[test]
    fn page_mixture_has_same_filled_mode() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let mut same_filled = 0;
        const N: usize = 200;
        for _ in 0..N {
            let p = page_mixture(2.0, 0.5, 0.5, &mut rng);
            if p.iter().all(|&b| b == p[0]) {
                same_filled += 1;
            }
        }
        let share = same_filled as f64 / N as f64;
        assert!((0.35..0.65).contains(&share), "same-filled share {share}");
        // zero_fraction 0 never emits same-filled pages.
        for _ in 0..20 {
            let p = page_mixture(1.2, 0.1, 0.0, &mut rng);
            assert!(!p.iter().all(|&b| b == p[0]));
        }
    }

    #[test]
    fn into_variant_matches_allocating_bytewise() {
        let mut a = rand::rngs::SmallRng::seed_from_u64(3);
        let mut b = rand::rngs::SmallRng::seed_from_u64(3);
        let mut buf = vec![9u8; 17]; // dirty, wrong-sized reusable buffer
        for _ in 0..16 {
            let fresh = page_mixture(2.5, 0.7, 0.3, &mut a);
            page_mixture_into(2.5, 0.7, 0.3, &mut b, &mut buf);
            assert_eq!(buf, fresh, "reused buffer must match fresh allocation");
        }
    }

    #[test]
    fn page_around_ratio_within_band() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        for _ in 0..10 {
            let p = page_around_ratio(3.0, 1.0, &mut rng);
            let r = achieved_ratio(&p);
            assert!(r > 1.2 && r < 8.0, "ratio {r} outside plausible band");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_pages_are_page_sized(target in 1.0f64..10.0, seed in 0u64..1000) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            prop_assert_eq!(page_with_ratio(target, &mut rng).len(), PAGE_SIZE);
        }

        #[test]
        fn prop_achieved_monotone_in_target(seed in 0u64..200) {
            // Averaged over a few pages, higher targets compress better.
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mean = |t: f64, rng: &mut rand::rngs::SmallRng| -> f64 {
                (0..4).map(|_| achieved_ratio(&page_with_ratio(t, rng))).sum::<f64>() / 4.0
            };
            let low = mean(1.5, &mut rng);
            let high = mean(6.0, &mut rng);
            prop_assert!(high > low, "high-target mean {high:.2} <= low-target mean {low:.2}");
        }
    }
}
