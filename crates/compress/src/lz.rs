//! An LZ77-family byte codec.
//!
//! The format is a simplified LZ4-style token stream tuned for 4 KiB
//! pages:
//!
//! * control byte with high bit **clear**: a literal run of
//!   `(control + 1)` bytes (1..=128) follows;
//! * control byte with high bit **set**: a back-reference of length
//!   `(control & 0x7f) + MIN_MATCH` (4..=131) at the 16-bit little-endian
//!   offset that follows (1..=65535, within the already-decoded output).
//!
//! The compressor uses a greedy hash-chain matcher over 4-byte prefixes.
//! It is deliberately small and allocation-light rather than maximally
//! tight: the experiments depend on *relative* compressibility across
//! workloads, which this codec preserves.

/// Minimum back-reference length; shorter matches are emitted as literals.
pub const MIN_MATCH: usize = 4;
/// Maximum back-reference length encodable in one token.
pub const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Maximum literal run per token.
const MAX_LITERAL_RUN: usize = 128;
/// Window: the full page (offsets are 16-bit).
const MAX_OFFSET: usize = u16::MAX as usize;

const HASH_BITS: u32 = 12;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

#[inline]
fn read_u32(input: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes(input[pos..pos + 4].try_into().expect("4 bytes in bounds"))
}

/// Length of the common prefix of `input[a..]` and `input[b..]`, capped at
/// `limit`. Both `a + limit` and `b + limit` must be in bounds.
#[inline]
fn match_len(input: &[u8], a: usize, b: usize, limit: usize) -> usize {
    let mut len = 0;
    while len + 8 <= limit {
        let x = u64::from_le_bytes(input[a + len..a + len + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(input[b + len..b + len + 8].try_into().expect("8 bytes"));
        let diff = x ^ y;
        if diff != 0 {
            return len + (diff.trailing_zeros() / 8) as usize;
        }
        len += 8;
    }
    while len < limit && input[a + len] == input[b + len] {
        len += 1;
    }
    len
}

std::thread_local! {
    // Matcher state reused across calls: head[h] = most recent position
    // with hash h; prev[i] = previous position in the chain for position
    // i. `head` is reset per call; `prev[x]` is only ever read for
    // positions inserted during the same call (chains start at `head`),
    // so stale entries from earlier inputs are unreachable and `prev`
    // only needs resizing, not clearing.
    static SCRATCH: std::cell::RefCell<(Vec<usize>, Vec<usize>)> =
        std::cell::RefCell::new((Vec::new(), Vec::new()));
}

/// Compresses `input`, returning the token stream.
///
/// The output may be longer than the input for incompressible data;
/// callers that need a bound should compare lengths and keep the raw
/// bytes instead (as [`crate::PageCodec`] does).
///
/// # Examples
///
/// ```
/// use dmem_compress::lz;
///
/// let data = b"abcabcabcabcabcabc".to_vec();
/// let packed = lz::compress(&data);
/// assert!(packed.len() < data.len());
/// assert_eq!(lz::decompress(&packed, data.len()).unwrap(), data);
/// ```
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    compress_into(input, &mut out);
    out
}

/// [`compress`] into a caller-provided buffer, reusing its capacity.
///
/// The buffer is cleared first; on return it holds exactly the token
/// stream. Together with the thread-local matcher scratch this makes
/// steady-state compression allocation-free once buffers have grown to
/// their working size.
pub fn compress_into(input: &[u8], out: &mut Vec<u8>) {
    compress_within(input, usize::MAX, out);
}

/// Compresses `input` only if the token stream fits in `max_len` bytes.
///
/// Returns `true` with the complete stream in `out` (byte-identical to
/// [`compress`]) when it fits, and `false` as soon as the stream is
/// provably longer — without finishing the match search. Callers that
/// fall back to raw storage above a size threshold (the page codec, for
/// which any stream over the largest sub-page size class means "store
/// raw") use this to stop paying the matcher for incompressible input;
/// the accept/reject decision is exactly that of running [`compress`] to
/// completion and comparing lengths.
pub fn compress_within(input: &[u8], max_len: usize, out: &mut Vec<u8>) -> bool {
    out.clear();
    SCRATCH.with(|scratch| {
        let (head, prev) = &mut *scratch.borrow_mut();
        head.clear();
        head.resize(HASH_SIZE, usize::MAX);
        if prev.len() < input.len() {
            prev.resize(input.len(), usize::MAX);
        }
        compress_with(input, out, head, prev, max_len)
    })
}

fn compress_with(
    input: &[u8],
    out: &mut Vec<u8>,
    head: &mut [usize],
    prev: &mut [usize],
    max_len: usize,
) -> bool {
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(MAX_LITERAL_RUN);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        // Emitted bytes plus pending literals (everything before `i` not
        // covered by a match is committed to literal emission) is a lower
        // bound on the final stream length — once past the budget, stop
        // searching.
        if out.len() + (i - literal_start) > max_len {
            return false;
        }
        let h = hash4(&input[i..]);
        // Walk the chain looking for the longest match.
        let cur4 = read_u32(input, i);
        let mut best_len = 0usize;
        let mut best_pos = usize::MAX;
        let mut candidate = head[h];
        let mut probes = 16; // bounded effort per position
        while candidate != usize::MAX && probes > 0 {
            if i - candidate <= MAX_OFFSET {
                // An accepted match needs at least MIN_MATCH = 4 leading
                // bytes; a candidate failing the 4-byte probe could only
                // score a sub-minimum length, which never changes the
                // emitted stream — skip its byte scan.
                if read_u32(input, candidate) == cur4 {
                    let limit = (input.len() - i).min(MAX_MATCH);
                    let len = match_len(input, candidate, i, limit);
                    if len > best_len {
                        best_len = len;
                        best_pos = candidate;
                        if len == limit {
                            break;
                        }
                    }
                }
            } else {
                break; // chains are position-ordered; older is farther
            }
            candidate = prev[candidate];
            probes -= 1;
        }

        if best_len >= MIN_MATCH {
            flush_literals(out, literal_start, i, input);
            let offset = (i - best_pos) as u16;
            out.push(0x80 | (best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&offset.to_le_bytes());
            // Insert the covered positions into the hash chains so later
            // matches can reference them.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            for p in i..end {
                let hp = hash4(&input[p..]);
                prev[p] = head[hp];
                head[hp] = p;
            }
            i += best_len;
            literal_start = i;
        } else {
            prev[i] = head[h];
            head[h] = i;
            i += 1;
        }
    }
    flush_literals(out, literal_start, input.len(), input);
    out.len() <= max_len
}

/// Errors produced by [`decompress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadOffset {
        /// The offending offset.
        offset: usize,
        /// Output length at that point.
        have: usize,
    },
    /// The stream decoded to a different length than expected.
    LengthMismatch {
        /// Expected output length.
        expected: usize,
        /// Actual decoded length.
        actual: usize,
    },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated => write!(f, "compressed stream truncated"),
            LzError::BadOffset { offset, have } => {
                write!(f, "back-reference offset {offset} exceeds decoded length {have}")
            }
            LzError::LengthMismatch { expected, actual } => {
                write!(f, "decoded {actual} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for LzError {}

/// Decompresses a token stream produced by [`compress`].
///
/// `expected_len` is the original input length (stored out-of-band by the
/// page codec, since pages have a fixed size).
///
/// # Errors
///
/// Returns an [`LzError`] if the stream is truncated, contains an invalid
/// back-reference, or does not decode to `expected_len` bytes.
pub fn decompress(stream: &[u8], expected_len: usize) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::with_capacity(expected_len);
    decompress_into(stream, expected_len, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-provided buffer, reusing its capacity.
///
/// The buffer is cleared first; on success it holds exactly the decoded
/// bytes. On error the buffer contents are unspecified.
///
/// # Errors
///
/// Same as [`decompress`].
pub fn decompress_into(
    stream: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<(), LzError> {
    out.clear();
    let mut i = 0usize;
    while i < stream.len() {
        let control = stream[i];
        i += 1;
        if control & 0x80 == 0 {
            let run = control as usize + 1;
            if i + run > stream.len() {
                return Err(LzError::Truncated);
            }
            out.extend_from_slice(&stream[i..i + run]);
            i += run;
        } else {
            if i + 2 > stream.len() {
                return Err(LzError::Truncated);
            }
            let len = (control & 0x7f) as usize + MIN_MATCH;
            let offset = u16::from_le_bytes([stream[i], stream[i + 1]]) as usize;
            i += 2;
            if offset == 0 || offset > out.len() {
                return Err(LzError::BadOffset {
                    offset,
                    have: out.len(),
                });
            }
            // Overlapping copies are legal (e.g. offset 1 repeats a byte).
            let start = out.len() - offset;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() != expected_len {
        return Err(LzError::LengthMismatch {
            expected: expected_len,
            actual: out.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> Vec<u8> {
        decompress(&compress(data), data.len()).expect("roundtrip")
    }

    #[test]
    fn empty_input() {
        assert_eq!(compress(&[]), Vec::<u8>::new());
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bounded_compress_matches_unbounded_when_within_budget() {
        let mut page = vec![0u8; 4096];
        for (i, byte) in page.iter_mut().enumerate() {
            *byte = (i / 64) as u8; // long runs: highly compressible
        }
        let full = compress(&page);
        assert!(full.len() <= 2048, "test page must fit the budget");
        let mut bounded = Vec::new();
        assert!(compress_within(&page, 2048, &mut bounded));
        assert_eq!(bounded, full, "bounded stream must be byte-identical");
    }

    #[test]
    fn bounded_compress_bails_on_incompressible_input() {
        // A simple xorshift fills the page with incompressible noise.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut page = vec![0u8; 4096];
        for byte in page.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *byte = state as u8;
        }
        assert!(compress(&page).len() > 2048, "noise page must overflow");
        let mut bounded = Vec::new();
        assert!(!compress_within(&page, 2048, &mut bounded));
    }

    #[test]
    fn zero_page_compresses_hard() {
        let page = vec![0u8; 4096];
        let packed = compress(&page);
        assert!(packed.len() < 200, "zero page packed to {}", packed.len());
        assert_eq!(roundtrip(&page), page);
    }

    #[test]
    fn repeated_motif() {
        let page: Vec<u8> = (0..4096).map(|i| b"hello world! "[i % 13]).collect();
        let packed = compress(&page);
        assert!(packed.len() < page.len() / 4);
        assert_eq!(roundtrip(&page), page);
    }

    #[test]
    fn random_data_still_roundtrips() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut page = vec![0u8; 4096];
        rng.fill_bytes(&mut page);
        let packed = compress(&page);
        // Incompressible: expansion is bounded by the per-run control byte.
        assert!(packed.len() <= page.len() + page.len() / MAX_LITERAL_RUN + 1);
        assert_eq!(roundtrip(&page), page);
    }

    #[test]
    fn overlapping_match_offset_one() {
        let mut data = vec![7u8];
        data.extend(std::iter::repeat_n(7u8, 300));
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn truncated_literal_rejected() {
        // Control byte promises 4 literals, stream has 1.
        assert_eq!(decompress(&[3, 0xAA], 4), Err(LzError::Truncated));
    }

    #[test]
    fn truncated_match_rejected() {
        assert_eq!(decompress(&[0x80, 1], 10), Err(LzError::Truncated));
    }

    #[test]
    fn bad_offset_rejected() {
        // One literal, then a match at offset 5 with only 1 byte decoded.
        let stream = vec![0, 0xAA, 0x80, 5, 0];
        assert!(matches!(
            decompress(&stream, 5),
            Err(LzError::BadOffset { offset: 5, have: 1 })
        ));
    }

    #[test]
    fn zero_offset_rejected() {
        let stream = vec![0, 0xAA, 0x80, 0, 0];
        assert!(matches!(decompress(&stream, 5), Err(LzError::BadOffset { .. })));
    }

    #[test]
    fn length_mismatch_detected() {
        let packed = compress(b"abcd");
        assert!(matches!(
            decompress(&packed, 5),
            Err(LzError::LengthMismatch { expected: 5, actual: 4 })
        ));
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_api() {
        let mut packed = Vec::new();
        let mut out = Vec::new();
        for rep in 1..6usize {
            let data: Vec<u8> = (0..512 * rep).map(|i| (i / 7) as u8).collect();
            compress_into(&data, &mut packed);
            assert_eq!(packed, compress(&data), "rep {rep}");
            decompress_into(&packed, data.len(), &mut out).unwrap();
            assert_eq!(out, data);
        }
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            LzError::Truncated,
            LzError::BadOffset { offset: 9, have: 1 },
            LzError::LengthMismatch {
                expected: 1,
                actual: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            prop_assert_eq!(roundtrip(&data), data);
        }

        #[test]
        fn prop_roundtrip_structured(motif in proptest::collection::vec(any::<u8>(), 1..32), reps in 1usize..256) {
            let data: Vec<u8> = motif.iter().cycle().take(motif.len() * reps).copied().collect();
            prop_assert_eq!(roundtrip(&data), data);
        }

        #[test]
        fn prop_structured_beats_random_size(seed in 0u64..100) {
            use rand::{RngCore, SeedableRng};
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut random = vec![0u8; 1024];
            rng.fill_bytes(&mut random);
            let structured: Vec<u8> = (0..1024).map(|i| (i / 64) as u8).collect();
            prop_assert!(compress(&structured).len() < compress(&random).len());
        }
    }
}
