//! Compressed-page memoization, both directions.
//!
//! The swap engine's page contents are a pure function of `(seed, pfn)`
//! ([`PageSource`](../../dmem_swap/engine/struct.PageSource.html)): every
//! time a page is swapped out, the engine regenerates the *same* bytes and
//! the backend recompresses them to the *same* token stream. A
//! [`CompressMemo`] caches the compressed form per key so steady-state
//! swap-outs skip the LZ matcher entirely.
//!
//! The read path is memoized too: [`CompressMemo::get_or_decompress`]
//! maps a stored [`CompressedPage`] back to its original bytes with a
//! `memcmp` of the (small) compressed stream instead of an LZ decode plus
//! a full-page checksum pass. Compressing a page seeds the decompress
//! side, so even the *first* read of an entry is a hit — in the fault
//! loop (fig4) and the RDD get path (fig10), decompression dominated the
//! real CPU profile before this.
//!
//! **Soundness.** A compress hit is only taken when the stored original
//! bytes are equal to the incoming page (a 4 KiB `memcmp`, far cheaper
//! than the matcher), so the memo is transparent even for callers whose
//! values mutate under a key (the chaos harness, KV overwrites): changed
//! bytes miss and replace the entry. A decompress hit requires the whole
//! `CompressedPage` (stream bytes, class, lengths, checksum) to equal one
//! that previously decoded successfully; decompression is a pure
//! function, so equal inputs are guaranteed the equal — already
//! checksum-verified — output, and corrupted streams can never match a
//! good entry. Simulated compression/decompression *cost* is charged by
//! the caller exactly as before — the memo elides real CPU work, never
//! virtual time — so completion times and CSV outputs are bit-identical
//! with or without it.

use crate::codec::{CompressedPage, PageCodec};
use dmem_types::DmemResult;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Default capacity: covers the bench working sets (the fig10 RDD spill
/// set peaks around 7.5k live pages) at roughly 8 KiB per entry (original
/// + compressed copy) ≈ 128 MiB per direction worst case. Sized with
/// headroom: a FIFO memo smaller than a sequentially-scanned working set
/// degrades to a 0% hit rate.
pub const DEFAULT_MEMO_CAPACITY: usize = 16384;

#[derive(Debug)]
struct MemoEntry {
    original: Vec<u8>,
    page: CompressedPage,
}

/// Aggregate hit/miss counters of a [`CompressMemo`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Compress lookups answered from the cache (compression skipped).
    pub hits: u64,
    /// Compress lookups that ran the compressor (first sight or changed
    /// bytes).
    pub misses: u64,
    /// Decompress lookups answered from the cache (LZ decode and
    /// checksum pass skipped).
    pub decompress_hits: u64,
    /// Decompress lookups that ran the decoder.
    pub decompress_misses: u64,
}

/// A bounded memo of compressed pages keyed by a caller-chosen `(u64,
/// u64)` key — `(server, pfn)` for the disaggregated store, `(0, pfn)`
/// for single-server backends.
///
/// Eviction is FIFO by first insertion: the memo is a transparent cache,
/// so eviction order affects only the hit rate, never any output.
///
/// # Examples
///
/// ```
/// use dmem_compress::{CompressMemo, PageCodec};
/// use dmem_types::CompressionMode;
///
/// let codec = PageCodec::new(CompressionMode::FourGranularity);
/// let mut memo = CompressMemo::new(64);
/// let page = vec![7u8; 4096];
/// let a = memo.get_or_compress((0, 1), &codec, &page);
/// let b = memo.get_or_compress((0, 1), &codec, &page);
/// assert_eq!(a, b);
/// assert_eq!(memo.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct CompressMemo {
    map: HashMap<(u64, u64), MemoEntry>,
    order: VecDeque<(u64, u64)>,
    /// Decompress direction, keyed by the original page's checksum (the
    /// one field present in both the compressed and decompressed form);
    /// a hit additionally requires full `CompressedPage` equality.
    decomp: HashMap<u64, MemoEntry>,
    decomp_order: VecDeque<u64>,
    capacity: usize,
    stats: MemoStats,
}

impl CompressMemo {
    /// Creates a memo holding at most `capacity` entries per direction. A
    /// capacity of zero disables memoization (every lookup runs the
    /// codec).
    pub fn new(capacity: usize) -> Self {
        CompressMemo {
            map: HashMap::with_capacity(capacity.min(DEFAULT_MEMO_CAPACITY)),
            order: VecDeque::with_capacity(capacity.min(DEFAULT_MEMO_CAPACITY)),
            decomp: HashMap::with_capacity(capacity.min(DEFAULT_MEMO_CAPACITY)),
            decomp_order: VecDeque::with_capacity(capacity.min(DEFAULT_MEMO_CAPACITY)),
            capacity,
            stats: MemoStats::default(),
        }
    }

    /// A memo with [`DEFAULT_MEMO_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        CompressMemo::new(DEFAULT_MEMO_CAPACITY)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Returns the compressed form of `data`, reusing the cached result
    /// when the key was last compressed with identical bytes, and running
    /// `codec` otherwise. The returned page is byte-identical to
    /// `codec.compress(data)` in every case.
    pub fn get_or_compress(
        &mut self,
        key: (u64, u64),
        codec: &PageCodec,
        data: &[u8],
    ) -> CompressedPage {
        if self.capacity == 0 {
            self.stats.misses += 1;
            return codec.compress(data);
        }
        match self.map.entry(key) {
            Entry::Occupied(mut occupied) => {
                if occupied.get().original == data {
                    self.stats.hits += 1;
                    return occupied.get().page.clone();
                }
                // Same key, new bytes (a versioned overwrite): recompress
                // and replace in place, keeping the FIFO position.
                self.stats.misses += 1;
                let page = codec.compress(data);
                let entry = occupied.get_mut();
                entry.original.clear();
                entry.original.extend_from_slice(data);
                entry.page = page.clone();
                self.remember_decompressed(page.clone(), data.to_vec());
                page
            }
            Entry::Vacant(vacant) => {
                self.stats.misses += 1;
                let page = codec.compress(data);
                vacant.insert(MemoEntry {
                    original: data.to_vec(),
                    page: page.clone(),
                });
                self.order.push_back(key);
                while self.map.len() > self.capacity {
                    if let Some(victim) = self.order.pop_front() {
                        self.map.remove(&victim);
                    } else {
                        break;
                    }
                }
                self.remember_decompressed(page.clone(), data.to_vec());
                page
            }
        }
    }

    /// Returns the original bytes of `stored`, reusing the cached result
    /// when an identical `CompressedPage` was compressed or decoded
    /// before, and running `codec.decompress` otherwise. Decompression is
    /// a pure function, so the result (including checksum verification)
    /// is identical to `codec.decompress(stored)` in every case.
    ///
    /// # Errors
    ///
    /// Propagates [`codec.decompress`](PageCodec::decompress) errors on a
    /// miss; a corrupted page can never equal a cached good one, so it
    /// always takes the miss path and fails exactly as without the memo.
    pub fn get_or_decompress(
        &mut self,
        codec: &PageCodec,
        stored: &CompressedPage,
    ) -> DmemResult<Vec<u8>> {
        if self.capacity == 0 {
            self.stats.decompress_misses += 1;
            return codec.decompress(stored);
        }
        if let Some(entry) = self.decomp.get(&stored.checksum) {
            if entry.page == *stored {
                self.stats.decompress_hits += 1;
                return Ok(entry.original.clone());
            }
        }
        self.stats.decompress_misses += 1;
        let original = codec.decompress(stored)?;
        self.remember_decompressed(stored.clone(), original.clone());
        Ok(original)
    }

    /// Records a known (compressed, original) pair on the decompress
    /// side. Compressing seeds this too, so the first read of a freshly
    /// written entry is already a hit.
    fn remember_decompressed(&mut self, page: CompressedPage, original: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        let key = page.checksum;
        match self.decomp.entry(key) {
            Entry::Occupied(mut occupied) => {
                // Checksum collision or re-learned pair: replace in
                // place, keeping the FIFO position.
                *occupied.get_mut() = MemoEntry { original, page };
            }
            Entry::Vacant(vacant) => {
                vacant.insert(MemoEntry { original, page });
                self.decomp_order.push_back(key);
                while self.decomp.len() > self.capacity {
                    if let Some(victim) = self.decomp_order.pop_front() {
                        self.decomp.remove(&victim);
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Drops a cached entry (e.g. when the caller knows the key's content
    /// is gone for good). Stale entries are harmless — the byte guard
    /// catches them — so calling this is an optimization, not a
    /// correctness requirement.
    pub fn invalidate(&mut self, key: (u64, u64)) {
        self.map.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;
    use dmem_types::CompressionMode;
    use rand::SeedableRng;

    fn codec() -> PageCodec {
        PageCodec::new(CompressionMode::FourGranularity)
    }

    #[test]
    fn memo_matches_direct_compression() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for pfn in 0..4u64 {
            let page = synth::page_around_ratio(3.0, 0.5, &mut rng);
            for _ in 0..3 {
                assert_eq!(
                    memo.get_or_compress((0, pfn), &codec, &page),
                    codec.compress(&page)
                );
            }
        }
        assert_eq!(memo.stats().misses, 4);
        assert_eq!(memo.stats().hits, 8);
    }

    #[test]
    fn changed_bytes_under_same_key_recompress() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let a = vec![1u8; 4096];
        let b = vec![2u8; 4096];
        memo.get_or_compress((0, 7), &codec, &a);
        let out = memo.get_or_compress((0, 7), &codec, &b);
        assert_eq!(out, codec.compress(&b), "stale entry must not be served");
        assert_eq!(memo.stats().hits, 0);
        // And the replacement is now servable.
        memo.get_or_compress((0, 7), &codec, &b);
        assert_eq!(memo.stats().hits, 1);
    }

    #[test]
    fn capacity_bounds_entries() {
        let codec = codec();
        let mut memo = CompressMemo::new(4);
        for pfn in 0..32u64 {
            memo.get_or_compress((0, pfn), &codec, &vec![pfn as u8; 4096]);
            assert!(memo.len() <= 4);
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let codec = codec();
        let mut memo = CompressMemo::new(0);
        let page = vec![3u8; 4096];
        memo.get_or_compress((0, 1), &codec, &page);
        memo.get_or_compress((0, 1), &codec, &page);
        assert!(memo.is_empty());
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().misses, 2);
    }

    #[test]
    fn decompress_memo_matches_direct_decode() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        for _ in 0..4 {
            let page = synth::page_around_ratio(3.0, 0.5, &mut rng);
            let stored = codec.compress(&page);
            for _ in 0..3 {
                assert_eq!(memo.get_or_decompress(&codec, &stored).unwrap(), page);
            }
        }
        let stats = memo.stats();
        assert_eq!(stats.decompress_misses, 4);
        assert_eq!(stats.decompress_hits, 8);
    }

    #[test]
    fn compressing_seeds_the_decompress_side() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let page = vec![6u8; 4096];
        let stored = memo.get_or_compress((0, 1), &codec, &page);
        assert_eq!(memo.get_or_decompress(&codec, &stored).unwrap(), page);
        assert_eq!(memo.stats().decompress_hits, 1, "first read must hit");
        assert_eq!(memo.stats().decompress_misses, 0);
    }

    #[test]
    fn corrupt_stream_never_matches_cached_entry() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let page = vec![0u8; 4096];
        let mut stored = memo.get_or_compress((0, 1), &codec, &page);
        assert!(stored.is_compressed);
        stored.data[0] ^= 0xFF;
        assert!(memo.get_or_decompress(&codec, &stored).is_err());
    }

    #[test]
    fn zero_capacity_disables_decompress_memo() {
        let codec = codec();
        let mut memo = CompressMemo::new(0);
        let stored = codec.compress(&vec![4u8; 4096]);
        memo.get_or_decompress(&codec, &stored).unwrap();
        memo.get_or_decompress(&codec, &stored).unwrap();
        assert_eq!(memo.stats().decompress_hits, 0);
        assert_eq!(memo.stats().decompress_misses, 2);
    }

    #[test]
    fn invalidate_forces_miss() {
        let codec = codec();
        let mut memo = CompressMemo::new(8);
        let page = vec![5u8; 4096];
        memo.get_or_compress((0, 1), &codec, &page);
        memo.invalidate((0, 1));
        memo.get_or_compress((0, 1), &codec, &page);
        assert_eq!(memo.stats().misses, 2);
    }
}
