//! Page compression substrate (paper §IV-H, Fig. 3-5).
//!
//! FastSwap compresses 4 KiB pages before parking them in disaggregated
//! memory and stores the result in one of a small set of *size classes*
//! (512 B / 1 KiB / 2 KiB / 4 KiB) so the shared-memory slab allocator
//! stays simple. This crate provides:
//!
//! * [`lz`] — a real LZ77-family byte codec (hash-chain matcher, LZ4-like
//!   token format) that round-trips arbitrary pages;
//! * [`codec`] — the size-class policy layered on the codec
//!   ([`PageCodec`]), honouring the 2- and 4-granularity modes of
//!   [`dmem_types::CompressionMode`];
//! * [`zswap`] — a zswap/zbud-style compressed RAM cache used as the
//!   baseline in Fig. 3;
//! * [`synth`] — a synthetic page generator with calibrated
//!   compressibility, standing in for the paper's ML workload pages;
//! * [`memo`] — a byte-guarded compressed-page memo ([`CompressMemo`])
//!   that lets the swap hot path skip recompressing pages whose content
//!   has not changed (sound for arbitrary callers, free for the engine's
//!   pure-function pages).
//!
//! # Examples
//!
//! ```
//! use dmem_compress::{PageCodec, synth};
//! use dmem_types::{CompressionMode, SizeClass};
//! use rand::SeedableRng;
//!
//! let codec = PageCodec::new(CompressionMode::FourGranularity);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let page = synth::page_with_ratio(4.0, &mut rng);
//! let stored = codec.compress(&page);
//! assert!(stored.class <= SizeClass::C2K, "4x-compressible page fits a small class");
//! assert_eq!(codec.decompress(&stored).unwrap(), page);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod lz;
pub mod memo;
pub mod synth;
pub mod zswap;

pub use codec::{CompressedPage, PageCodec};
pub use memo::{CompressMemo, MemoStats};
pub use zswap::{ZswapCache, ZswapStats};
