//! The per-server disaggregated memory map (paper §IV-C, §IV-G).
//!
//! "For each virtual server, the disaggregated memory system should
//! maintain a memory map which serves as a log table to track of where a
//! data entry is." Each map entry is an [`EntryRecord`]: location, sizes,
//! compression class, version and checksum.

use dmem_types::{EntryLocation, EntryRecord, NodeId};
use std::collections::HashMap;
use std::fmt;

/// One virtual server's log table of data-entry locations.
#[derive(Debug, Default, Clone)]
pub struct MemoryMap {
    entries: HashMap<u64, EntryRecord>,
}

impl MemoryMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        MemoryMap::default()
    }

    /// Records (or replaces) the entry under `key`, bumping the version.
    pub fn upsert(&mut self, key: u64, mut record: EntryRecord) -> u64 {
        let version = self
            .entries
            .get(&key)
            .map(|r| r.version + 1)
            .unwrap_or(1);
        record.version = version;
        self.entries.insert(key, record);
        version
    }

    /// Looks up the record for `key`.
    pub fn get(&self, key: u64) -> Option<&EntryRecord> {
        self.entries.get(&key)
    }

    /// Removes the record for `key`.
    pub fn remove(&mut self, key: u64) -> Option<EntryRecord> {
        self.entries.remove(&key)
    }

    /// Number of tracked entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &EntryRecord)> {
        self.entries.iter().map(|(k, r)| (*k, r))
    }

    /// Rewrites replica lists after an eviction migration: every remote
    /// record referencing `from` now references `to` instead. Returns how
    /// many records changed.
    pub fn relocate_replica(&mut self, key: u64, from: NodeId, to: NodeId) -> bool {
        if let Some(record) = self.entries.get_mut(&key) {
            if let EntryLocation::Remote { replicas } = &mut record.location {
                if let Some(slot) = replicas.iter().position(|&n| n == from) {
                    if replicas.contains(&to) {
                        // `to` is already listed — typically a node that
                        // crashed, lost its copy, and just got refilled by
                        // this migration. Collapse instead of duplicating;
                        // the repair scan restores the lost degree.
                        replicas.remove(slot);
                    } else {
                        replicas[slot] = to;
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Counts entries by tier: `(node_shared, nvm, remote, cxl, disk)`.
    pub fn tier_census(&self) -> (usize, usize, usize, usize, usize) {
        let mut census = (0, 0, 0, 0, 0);
        for record in self.entries.values() {
            match record.location {
                EntryLocation::NodeShared { .. } => census.0 += 1,
                EntryLocation::Nvm => census.1 += 1,
                EntryLocation::Remote { .. } => census.2 += 1,
                EntryLocation::Cxl { .. } => census.3 += 1,
                EntryLocation::Disk => census.4 += 1,
            }
        }
        census
    }

    /// Approximate metadata footprint of this map in bytes, using the
    /// paper's §IV-C model of 8 bytes of location metadata per entry.
    pub fn metadata_bytes(&self) -> u64 {
        self.entries.len() as u64 * 8
    }
}

impl fmt::Display for MemoryMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (shared, nvm, remote, cxl, disk) = self.tier_census();
        write!(
            f,
            "map: {} entries ({shared} shared, {nvm} nvm, {remote} remote, {cxl} cxl, {disk} disk)",
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::{SizeClass, SlabId};

    fn record(location: EntryLocation) -> EntryRecord {
        EntryRecord {
            location,
            len: 4096,
            stored_len: 1024,
            class: Some(SizeClass::C1K),
            version: 0,
            checksum: 7,
        }
    }

    #[test]
    fn upsert_bumps_version() {
        let mut map = MemoryMap::new();
        let v1 = map.upsert(1, record(EntryLocation::Disk));
        let v2 = map.upsert(1, record(EntryLocation::Disk));
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(map.get(1).unwrap().version, 2);
    }

    #[test]
    fn census_counts_tiers() {
        let mut map = MemoryMap::new();
        map.upsert(
            1,
            record(EntryLocation::NodeShared {
                slab: SlabId::new(1),
                offset: 0,
            }),
        );
        map.upsert(
            2,
            record(EntryLocation::Remote {
                replicas: vec![NodeId::new(1)],
            }),
        );
        map.upsert(3, record(EntryLocation::Disk));
        map.upsert(4, record(EntryLocation::Nvm));
        map.upsert(5, record(EntryLocation::Cxl { addr: 0x40 }));
        assert_eq!(map.tier_census(), (1, 1, 1, 1, 1));
        assert!(!map.to_string().is_empty());
    }

    #[test]
    fn relocate_replica_rewrites_one_slot() {
        let mut map = MemoryMap::new();
        map.upsert(
            5,
            record(EntryLocation::Remote {
                replicas: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            }),
        );
        assert!(map.relocate_replica(5, NodeId::new(2), NodeId::new(7)));
        match &map.get(5).unwrap().location {
            EntryLocation::Remote { replicas } => {
                assert_eq!(replicas, &vec![NodeId::new(1), NodeId::new(7), NodeId::new(3)]);
            }
            other => panic!("unexpected location {other:?}"),
        }
        // Unknown key or host: no-op.
        assert!(!map.relocate_replica(5, NodeId::new(2), NodeId::new(8)));
        assert!(!map.relocate_replica(99, NodeId::new(1), NodeId::new(8)));
    }

    #[test]
    fn relocate_replica_never_duplicates_destination() {
        let mut map = MemoryMap::new();
        map.upsert(
            5,
            record(EntryLocation::Remote {
                replicas: vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            }),
        );
        // Migrating node-2's copy onto node-3 (already listed) must
        // collapse the slot, not list node-3 twice.
        assert!(map.relocate_replica(5, NodeId::new(2), NodeId::new(3)));
        match &map.get(5).unwrap().location {
            EntryLocation::Remote { replicas } => {
                assert_eq!(replicas, &vec![NodeId::new(1), NodeId::new(3)]);
            }
            other => panic!("unexpected location {other:?}"),
        }
    }

    #[test]
    fn metadata_footprint_model() {
        let mut map = MemoryMap::new();
        for k in 0..1000 {
            map.upsert(k, record(EntryLocation::Disk));
        }
        assert_eq!(map.metadata_bytes(), 8000);
    }

    #[test]
    fn remove_and_empty() {
        let mut map = MemoryMap::new();
        assert!(map.is_empty());
        map.upsert(1, record(EntryLocation::Disk));
        assert_eq!(map.len(), 1);
        assert!(map.remove(1).is_some());
        assert!(map.remove(1).is_none());
        assert!(map.is_empty());
    }
}
