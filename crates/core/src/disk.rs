//! The external-storage tier: per-node simulated swap disks.
//!
//! The paper's baseline (and final fallback) is the node's 7.2K rpm SATA
//! disk. Each node owns an independent disk; every access charges the
//! HDD cost model to the shared virtual clock. Batched reads pay one seek.

use dmem_sim::{CostModel, DeviceCost, SimClock};
use dmem_types::{DmemError, DmemResult, EntryId, NodeId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// Per-node simulated disks storing entry payloads.
pub struct DiskTier {
    clock: SimClock,
    device: DeviceCost,
    /// Span category for this tier's device accesses ("disk", "nvm", …).
    label: &'static str,
    disks: Mutex<HashMap<NodeId, HashMap<EntryId, Vec<u8>>>>,
}

impl DiskTier {
    /// Creates the tier over the shared clock, charging the cost model's
    /// HDD device.
    pub fn new(clock: SimClock, cost: CostModel) -> Self {
        DiskTier::with_device(clock, cost.hdd)
    }

    /// Creates a byte-store tier charging an arbitrary device — used for
    /// the NVM and SSD extension tiers, which share the same per-node
    /// store-entry semantics with different costs.
    pub fn with_device(clock: SimClock, device: DeviceCost) -> Self {
        DiskTier::with_device_labeled(clock, device, "disk")
    }

    /// [`DiskTier::with_device`] with an explicit trace-span category, so
    /// NVM accesses are attributed separately from spinning disk.
    pub fn with_device_labeled(clock: SimClock, device: DeviceCost, label: &'static str) -> Self {
        DiskTier {
            clock,
            device,
            label,
            disks: Mutex::new(HashMap::new()),
        }
    }

    /// Writes `data` for `entry` on `node`'s disk.
    pub fn store(&self, node: NodeId, entry: EntryId, data: Vec<u8>) {
        let span = self.clock.tracer().span(self.label, "store");
        span.tag("bytes", data.len());
        self.clock.advance(self.device.transfer(data.len()));
        self.disks
            .lock()
            .entry(node)
            .or_default()
            .insert(entry, data);
    }

    /// Writes `data` for `entry` on `node`'s disk **without charging the
    /// device on the foreground clock** — the write-behind path used for
    /// the CXL tier's shadow copies. The put completes at pool speed;
    /// the flush happens off the critical path, overlapping later
    /// foreground work (which the virtual clock models as free), and the
    /// copy is only ever read on the slow failover path, which does pay
    /// the full device cost.
    pub fn store_behind(&self, node: NodeId, entry: EntryId, data: Vec<u8>) {
        let span = self.clock.tracer().span(self.label, "store_behind");
        span.tag("bytes", data.len());
        self.disks
            .lock()
            .entry(node)
            .or_default()
            .insert(entry, data);
    }

    /// Writes a batch in one sequential disk operation (single seek).
    pub fn store_batch(&self, node: NodeId, batch: Vec<(EntryId, Vec<u8>)>) {
        let total: usize = batch.iter().map(|(_, d)| d.len()).sum();
        let span = self.clock.tracer().span(self.label, "store_batch");
        span.tag("bytes", total);
        span.tag("entries", batch.len());
        self.clock.advance(self.device.transfer(total));
        let mut disks = self.disks.lock();
        let disk = disks.entry(node).or_default();
        for (entry, data) in batch {
            disk.insert(entry, data);
        }
    }

    /// Reads `entry` back from `node`'s disk.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if absent.
    pub fn load(&self, node: NodeId, entry: EntryId) -> DmemResult<Vec<u8>> {
        let disks = self.disks.lock();
        let data = disks
            .get(&node)
            .and_then(|d| d.get(&entry))
            .cloned()
            .ok_or(DmemError::EntryNotFound(entry))?;
        drop(disks);
        let span = self.clock.tracer().span(self.label, "load");
        span.tag("bytes", data.len());
        self.clock.advance(self.device.transfer(data.len()));
        Ok(data)
    }

    /// Reads a batch; contiguity on a spinning disk is approximated by a
    /// single seek plus the combined transfer.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if any entry is absent (no
    /// partial results, matching the remote batch semantics).
    pub fn load_batch(&self, node: NodeId, entries: &[EntryId]) -> DmemResult<Vec<Vec<u8>>> {
        let disks = self.disks.lock();
        let disk = disks.get(&node);
        let mut out = Vec::with_capacity(entries.len());
        let mut total = 0usize;
        for e in entries {
            let data = disk
                .and_then(|d| d.get(e))
                .cloned()
                .ok_or(DmemError::EntryNotFound(*e))?;
            total += data.len();
            out.push(data);
        }
        drop(disks);
        let span = self.clock.tracer().span(self.label, "load_batch");
        span.tag("bytes", total);
        span.tag("entries", entries.len());
        self.clock.advance(self.device.transfer(total));
        Ok(out)
    }

    /// Removes `entry` from `node`'s disk (metadata-only, no seek
    /// charged), returning the freed payload size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] if absent.
    pub fn delete(&self, node: NodeId, entry: EntryId) -> DmemResult<usize> {
        self.disks
            .lock()
            .get_mut(&node)
            .and_then(|d| d.remove(&entry))
            .map(|data| data.len())
            .ok_or(DmemError::EntryNotFound(entry))
    }

    /// `true` if the entry is on `node`'s disk.
    pub fn contains(&self, node: NodeId, entry: EntryId) -> bool {
        self.disks
            .lock()
            .get(&node)
            .is_some_and(|d| d.contains_key(&entry))
    }

    /// Entries stored on `node`'s disk.
    pub fn len(&self, node: NodeId) -> usize {
        self.disks.lock().get(&node).map(HashMap::len).unwrap_or(0)
    }

    /// `true` if `node`'s disk holds no entries.
    pub fn is_empty(&self, node: NodeId) -> bool {
        self.len(node) == 0
    }
}

impl fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let disks = self.disks.lock();
        f.debug_struct("DiskTier")
            .field("nodes", &disks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ServerId;

    fn tier() -> (SimClock, DiskTier) {
        let clock = SimClock::new();
        (clock.clone(), DiskTier::new(clock, CostModel::paper_default()))
    }

    fn entry(k: u64) -> EntryId {
        EntryId::new(ServerId::new(NodeId::new(0), 0), k)
    }

    #[test]
    fn store_load_roundtrip_charges_hdd_cost() {
        let (clock, tier) = tier();
        tier.store(NodeId::new(0), entry(1), vec![1u8; 4096]);
        let after_store = clock.now();
        assert!(after_store.nanos() > 3_000_000, "store pays a ~4ms seek");
        assert_eq!(tier.load(NodeId::new(0), entry(1)).unwrap(), vec![1u8; 4096]);
        assert!((clock.now() - after_store).as_millis_f64() > 3.0);
    }

    #[test]
    fn batched_io_single_seek() {
        let (clock, tier) = tier();
        let batch: Vec<_> = (0..8).map(|k| (entry(k), vec![0u8; 4096])).collect();
        let t0 = clock.now();
        tier.store_batch(NodeId::new(0), batch);
        let batched = clock.now() - t0;

        let t1 = clock.now();
        for k in 8..16 {
            tier.store(NodeId::new(0), entry(k), vec![0u8; 4096]);
        }
        let separate = clock.now() - t1;
        assert!(batched.as_nanos() * 4 < separate.as_nanos());

        let keys: Vec<_> = (0..8).map(entry).collect();
        let loaded = tier.load_batch(NodeId::new(0), &keys).unwrap();
        assert_eq!(loaded.len(), 8);
    }

    #[test]
    fn disks_are_per_node() {
        let (_, tier) = tier();
        tier.store(NodeId::new(0), entry(1), vec![1]);
        assert!(tier.contains(NodeId::new(0), entry(1)));
        assert!(!tier.contains(NodeId::new(1), entry(1)));
        assert!(tier.load(NodeId::new(1), entry(1)).is_err());
    }

    #[test]
    fn delete_and_missing() {
        let (_, tier) = tier();
        tier.store(NodeId::new(0), entry(1), vec![1]);
        tier.delete(NodeId::new(0), entry(1)).unwrap();
        assert!(tier.is_empty(NodeId::new(0)));
        assert!(matches!(
            tier.delete(NodeId::new(0), entry(1)),
            Err(DmemError::EntryNotFound(_))
        ));
        assert!(matches!(
            tier.load_batch(NodeId::new(0), &[entry(1)]),
            Err(DmemError::EntryNotFound(_))
        ));
    }
}
