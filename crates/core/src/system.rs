//! The assembled disaggregated memory system.

use crate::disk::DiskTier;
use crate::memmap::MemoryMap;
use dmem_cluster::{
    ClusterMembership, EvictionOutcome, GroupTable, LeaderElection, Placer, RemoteSlabEvictor,
    RemoteStore, Replicator,
};
use dmem_compress::{CompressMemo, CompressedPage, PageCodec};
use dmem_net::{CxlAddr, CxlPool, Fabric, ShardRouter};
use dmem_node::NodeManager;
use dmem_qos::{AdmitDecision, ControlAction, QosEngine, ResidentTier, Victim};
use dmem_sim::shard::ShardMap;
use dmem_sim::{
    CostModel, DetRng, FailureInjector, MetricsRegistry, SimClock, SimDuration, TelemetryHub,
};
use dmem_types::{
    checksum, ByteSize, ClusterConfig, DmemError, DmemResult, EntryId, EntryLocation, EntryRecord,
    NodeId, ServerId, SizeClass, TenantId, PAGE_SIZE,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Where a `put` is allowed to land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPreference {
    /// Tier through shared memory → remote → disk (the paper's design).
    Auto,
    /// Node shared memory only; error when the pool is full.
    NodeShared,
    /// Local byte-addressable NVM (the §VI extension tier); spills to
    /// disk when the NVM pool is full or absent.
    Nvm,
    /// The CXL pooled-memory tier (load/store far memory behind a
    /// switch); spills to disk when the pool is full, down, or absent.
    Cxl,
    /// Remote cluster memory only (the FS-RDMA configuration of Fig. 8).
    Remote,
    /// Local disk only (the Linux-baseline path).
    Disk,
}

/// Aggregate system statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmStats {
    /// Entries tracked across all memory maps.
    pub entries: usize,
    /// Entries resident in node shared pools.
    pub shared: usize,
    /// Entries in local NVM.
    pub nvm: usize,
    /// Entries in the CXL pooled-memory tier.
    pub cxl: usize,
    /// Entries in remote cluster memory.
    pub remote: usize,
    /// Entries spilled to disk.
    pub disk: usize,
    /// Total shared-pool capacity across nodes.
    pub shared_capacity: ByteSize,
    /// Total advertised free remote pool capacity.
    pub remote_free: ByteSize,
}

/// The paper's two-level disaggregated memory system over one simulated
/// cluster. See the crate docs for an overview and example.
pub struct DisaggregatedMemory {
    config: ClusterConfig,
    clock: SimClock,
    cost: CostModel,
    failures: FailureInjector,
    fabric: Fabric,
    membership: ClusterMembership,
    groups: Mutex<GroupTable>,
    election: LeaderElection,
    managers: HashMap<NodeId, Arc<NodeManager>>,
    remote: Arc<RemoteStore>,
    replicator: Replicator,
    disk: DiskTier,
    nvm: DiskTier,
    nvm_used: Mutex<HashMap<NodeId, u64>>,
    /// The CXL memory pool, present only when `ClusterConfig::cxl`
    /// enables it — absent, no `cxl.*` metric keys exist and the tiering
    /// order is exactly the pre-CXL one.
    cxl: Option<Arc<CxlPool>>,
    codec: PageCodec,
    /// Byte-guarded compressed-page memo keyed by `(server, key)`. Hits
    /// skip the LZ matcher; the simulated compression cost is charged
    /// either way, so virtual-time results are unchanged.
    compress_memo: Mutex<CompressMemo>,
    maps: Mutex<HashMap<ServerId, MemoryMap>>,
    servers: Vec<ServerId>,
    metrics: MetricsRegistry,
    /// Optional multi-tenant QoS control plane. `OnceLock` keeps the
    /// no-QoS hot path lock-free: an uninstalled engine is one relaxed
    /// atomic load per operation, so single-tenant runs stay byte- and
    /// cycle-identical to the pre-QoS system.
    qos: OnceLock<Arc<QosEngine>>,
    /// Optional host→shard partition + fabric router. Uninstalled (the
    /// default) the fabric skips routing entirely, so unsharded runs
    /// stay byte-identical to builds that predate sharding.
    sharding: OnceLock<Arc<ShardRouter>>,
    /// Optional windowed telemetry hub (timeline sampler + alert engine
    /// + flight recorder). Same opt-in contract as `qos`: uninstalled,
    /// nothing samples and nothing is scheduled.
    telemetry: OnceLock<Arc<TelemetryHub>>,
}

impl DisaggregatedMemory {
    /// Builds the full system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] for invalid configurations and
    /// propagates substrate construction failures.
    pub fn new(config: ClusterConfig) -> DmemResult<Self> {
        config.validate()?;
        let clock = SimClock::new();
        let cost = CostModel::paper_default();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), cost, failures.clone());
        let nodes: Vec<NodeId> = (0..config.nodes as u32).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes.clone(), failures.clone());
        let groups = GroupTable::partition(&nodes, config.group_size)?;
        let election = LeaderElection::new(
            membership.clone(),
            clock.clone(),
            SimDuration::from_millis(50),
        );
        let rng = DetRng::new(config.seed);

        let mut managers = HashMap::new();
        let mut servers = Vec::new();
        for &node in &nodes {
            let manager = Arc::new(NodeManager::new(node, config.node.slab_size, clock.clone(), cost));
            for local in 0..config.servers_per_node as u32 {
                let server = ServerId::new(node, local);
                manager.register_server(server, config.server.memory, config.server.donation);
                servers.push(server);
            }
            managers.insert(node, manager);
        }

        let remote = Arc::new(RemoteStore::new(
            fabric.clone(),
            membership.clone(),
            config.node.recv_pool,
        )?);
        let placer = Placer::new(config.placement, membership.clone(), rng.fork("placement"));
        let replicator = Replicator::new(Arc::clone(&remote), placer, config.replication);
        let disk = DiskTier::new(clock.clone(), cost);
        let nvm = DiskTier::with_device_labeled(clock.clone(), cost.nvm, "nvm");
        let codec = PageCodec::new(config.compression);
        let metrics = MetricsRegistry::new();
        let cxl = config.cxl.enabled().then(|| {
            Arc::new(CxlPool::new(
                clock.clone(),
                cost,
                metrics.clone(),
                config.cxl.pool_nodes as u16,
                config.cxl.capacity_per_node,
            ))
        });

        let maps = servers
            .iter()
            .map(|&s| (s, MemoryMap::new()))
            .collect();

        Ok(DisaggregatedMemory {
            config,
            clock,
            cost,
            failures,
            fabric,
            membership,
            groups: Mutex::new(groups),
            election,
            managers,
            remote,
            replicator,
            disk,
            nvm,
            nvm_used: Mutex::new(HashMap::new()),
            cxl,
            codec,
            compress_memo: Mutex::new(CompressMemo::with_default_capacity()),
            maps: Mutex::new(maps),
            servers,
            metrics,
            qos: OnceLock::new(),
            sharding: OnceLock::new(),
            telemetry: OnceLock::new(),
        })
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The failure injector (schedule crashes and link failures here).
    pub fn failures(&self) -> &FailureInjector {
        &self.failures
    }

    /// All virtual servers, in configuration order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster membership view.
    pub fn membership(&self) -> &ClusterMembership {
        &self.membership
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The underlying RDMA fabric (for advanced wiring, e.g. batch senders).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Partitions this cluster's nodes into `shards` contiguous
    /// host-groups and installs the shard router on the fabric: from
    /// then on every verb is checked against the inter-shard mailbox
    /// ordering contract (`(virtual_time, shard_id, seq)` strictly
    /// increasing per directed pair) and counted as cross- or
    /// intra-shard. Placement, tiering and verb semantics are untouched
    /// — the router is an observer, so sharded runs stay byte-identical
    /// to unsharded ones.
    ///
    /// # Panics
    ///
    /// Panics if sharding is already installed.
    pub fn install_sharding(&self, shards: usize) {
        let map = ShardMap::grouped(self.config.nodes, shards);
        let router = Arc::new(ShardRouter::new(map));
        self.fabric.install_shard_router(Arc::clone(&router));
        if self.sharding.set(router).is_err() {
            panic!("sharding already installed");
        }
    }

    /// The installed shard router, if any.
    pub fn shard_router(&self) -> Option<&Arc<ShardRouter>> {
        self.sharding.get()
    }

    /// Installs the multi-tenant QoS control plane (quota admission,
    /// priority eviction, fabric rate limiting, SLO controller). May be
    /// called at most once; the engine is wired to this system's metrics
    /// registry so `qos.*` counters and per-tenant latency histograms
    /// land next to the core ones.
    ///
    /// # Panics
    ///
    /// Panics if an engine is already installed.
    pub fn install_qos(&self, engine: Arc<QosEngine>) {
        engine.attach_metrics(self.metrics.clone());
        if self.qos.set(engine).is_err() {
            panic!("QoS engine already installed");
        }
    }

    /// The installed QoS engine, if any.
    pub fn qos(&self) -> Option<&Arc<QosEngine>> {
        self.qos.get()
    }

    /// Installs the windowed telemetry hub (time-series sampler, alert
    /// engine, flight recorder) and points it at this system's metrics
    /// registry plus the fabric's. May be called at most once; nothing
    /// installs one by default, so unobserved runs never even schedule
    /// the sampling task.
    ///
    /// # Panics
    ///
    /// Panics if a hub is already installed.
    pub fn install_telemetry(&self, hub: Arc<TelemetryHub>) {
        hub.add_registry(self.metrics.clone());
        hub.add_registry(self.fabric.metrics().clone());
        if self.telemetry.set(hub).is_err() {
            panic!("telemetry hub already installed");
        }
    }

    /// The installed telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Arc<TelemetryHub>> {
        self.telemetry.get()
    }

    /// One telemetry sampling pass at the current virtual time: captures
    /// a metric window (and evaluates alert rules on it) if a window
    /// boundary has been crossed. Returns the number of windows captured.
    /// No-op without an installed hub.
    pub fn telemetry_tick(&self) -> usize {
        let Some(hub) = self.telemetry.get() else {
            return 0;
        };
        hub.tick(self.clock.now())
    }

    /// A tenant-priority resolver for [`RemoteSlabEvictor::with_priority`],
    /// backed by the installed engine. `None` when QoS is off, so default
    /// eviction order is untouched.
    pub fn qos_priority_resolver(&self) -> Option<dmem_cluster::PriorityResolver> {
        let engine = Arc::clone(self.qos.get()?);
        Some(Arc::new(move |entry: EntryId| {
            engine.tenant_priority(engine.tenant_of(entry.owner()))
        }))
    }

    /// One closed-loop QoS controller pass: reads the latency histograms,
    /// lets the engine decide, and applies every donation recommendation
    /// through the node managers' ballooning path. Returns how many
    /// control actions were applied. No-op without an installed engine.
    pub fn qos_tick(&self) -> usize {
        let Some(engine) = self.qos.get() else {
            return 0;
        };
        let mut applied = 0;
        for action in engine.controller_tick(&self.metrics) {
            let ControlAction::AdjustDonation { server, delta } = action;
            if let Some(manager) = self.managers.get(&server.node()) {
                // Honor local memory pressure first (ballooning advice);
                // only grow the donation when the node is not squeezed.
                let balloon = manager.apply_recommendation(server, delta.abs());
                if !balloon.applied {
                    let _ = manager.adjust_donation(server, delta);
                }
                applied += 1;
            }
        }
        applied
    }

    /// Meters `bytes` of fabric traffic for `tenant` through the QoS
    /// token buckets (waiting out any throttle delay on the virtual
    /// clock), then runs `f` with the fabric's per-tenant verb accounting
    /// scoped to `tenant`. Without an engine this is exactly `f()`.
    fn metered<T>(
        &self,
        qos: Option<&Arc<QosEngine>>,
        tenant: TenantId,
        bytes: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let Some(engine) = qos else {
            return f();
        };
        let wait = engine.fabric_acquire(tenant, bytes, self.clock.now());
        if !wait.is_zero() {
            let span = self.clock.tracer().span("qos", "throttle");
            span.tag("bytes", bytes);
            self.clock.advance(wait);
        }
        self.fabric.set_tenant_scope(Some(tenant));
        let out = f();
        self.fabric.set_tenant_scope(None);
        out
    }

    /// Demotes a shared-pool victim to disk so a higher-or-equal-priority
    /// put can take its place. Returns `false` (leaving the victim alone)
    /// if any step fails; residency is credited on success.
    fn demote_victim(&self, engine: &QosEngine, victim: &Victim) -> bool {
        let entry = victim.entry;
        let server = entry.owner();
        let node = server.node();
        let Some(manager) = self.managers.get(&node) else {
            return false;
        };
        let Ok(bytes) = manager.get(entry) else {
            return false;
        };
        if manager.delete(entry).is_err() {
            return false;
        }
        self.disk.store(node, entry, bytes);
        let mut maps = self.maps.lock();
        if let Some(record) = maps
            .get_mut(&server)
            .and_then(|m| m.get(entry.key()))
            .cloned()
        {
            let mut record = record;
            record.location = EntryLocation::Disk;
            if let Some(map) = maps.get_mut(&server) {
                map.upsert(entry.key(), record);
            }
        }
        drop(maps);
        engine.note_dropped(victim.tenant, entry);
        self.metrics.counter("qos.evict.demotions").inc();
        true
    }

    /// [`DisaggregatedMemory::try_shared`] plus the QoS priority-eviction
    /// retry: when the pool is full and the engine can name a victim of
    /// no higher priority than `tenant`, the victim is demoted to disk
    /// and the put retried once.
    fn try_shared_qos(
        &self,
        qos: Option<&Arc<QosEngine>>,
        tenant: TenantId,
        node: NodeId,
        entry: EntryId,
        stored: &[u8],
        record: &EntryRecord,
    ) -> DmemResult<EntryLocation> {
        let first = self.try_shared(node, entry, stored, record);
        let Some(engine) = qos else {
            return first;
        };
        if !matches!(&first, Err(DmemError::CapacityExhausted { .. })) {
            return first;
        }
        let Some(victim) = engine.pick_victim(tenant, node, entry) else {
            return first;
        };
        if !self.demote_victim(engine, &victim) {
            return first;
        }
        engine.note_eviction(tenant, &victim);
        self.try_shared(node, entry, stored, record).or(first)
    }

    /// Charges fast-tier residency for a landed put (no-op for disk, or
    /// without an engine).
    fn note_landed(
        &self,
        qos: Option<&Arc<QosEngine>>,
        tenant: TenantId,
        entry: EntryId,
        stored_len: u64,
        location: &EntryLocation,
    ) {
        let Some(engine) = qos else { return };
        let node = entry.owner().node();
        let tier = match location {
            EntryLocation::NodeShared { .. } => ResidentTier::Shared(node),
            EntryLocation::Nvm => ResidentTier::Nvm(node),
            EntryLocation::Cxl { .. } => ResidentTier::Cxl,
            EntryLocation::Remote { .. } => ResidentTier::Remote,
            EntryLocation::Disk => return,
        };
        engine.note_fast_resident(tenant, entry, stored_len, tier);
    }

    /// The node manager of `node`.
    ///
    /// # Panics
    ///
    /// Panics for nodes outside the configured cluster.
    pub fn node_manager(&self, node: NodeId) -> &Arc<NodeManager> {
        self.managers
            .get(&node)
            .expect("node is part of the configured cluster")
    }

    /// The remote memory store.
    pub fn remote_store(&self) -> &Arc<RemoteStore> {
        &self.remote
    }

    /// The disk tier.
    pub fn disk_tier(&self) -> &DiskTier {
        &self.disk
    }

    /// The NVM tier (empty unless `NodeConfig::nvm_pool` is nonzero).
    pub fn nvm_tier(&self) -> &DiskTier {
        &self.nvm
    }

    /// NVM bytes in use on `node`.
    pub fn nvm_used(&self, node: NodeId) -> ByteSize {
        ByteSize::new(self.nvm_used.lock().get(&node).copied().unwrap_or(0))
    }

    /// The CXL memory pool, present when `ClusterConfig::cxl` enables it.
    /// Remote atomics ([`CxlPool::fetch_add`], [`CxlPool::cas`]) and
    /// pool-node outage control go through this handle.
    pub fn cxl_pool(&self) -> Option<&Arc<CxlPool>> {
        self.cxl.as_ref()
    }

    /// The leader of `node`'s sharing group (§IV-C election).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NoLeader`] when the whole group is down.
    pub fn group_leader(&self, node: NodeId) -> DmemResult<NodeId> {
        let groups = self.groups.lock();
        let gid = groups.group_of(node)?;
        self.election.leader(&groups, gid)
    }

    /// The alive group peers of `node` — the candidate hosts for its
    /// remote entries (group-based sharing, §IV-C).
    pub fn group_peers(&self, node: NodeId) -> DmemResult<Vec<NodeId>> {
        let groups = self.groups.lock();
        Ok(groups
            .peers(node)?
            .into_iter()
            .filter(|&n| self.membership.is_alive(n))
            .collect())
    }

    fn tier_name(location: &EntryLocation) -> &'static str {
        match location {
            EntryLocation::NodeShared { .. } => "shared",
            EntryLocation::Remote { .. } => "remote",
            EntryLocation::Nvm => "nvm",
            EntryLocation::Cxl { .. } => "cxl",
            EntryLocation::Disk => "disk",
        }
    }

    fn memo_key(entry: EntryId) -> (u64, u64) {
        let server = entry.owner();
        let server_key =
            (u64::from(server.node().index()) << 32) | u64::from(server.local_index());
        (server_key, entry.key())
    }

    fn prepare(&self, entry: EntryId, data: &[u8]) -> (Vec<u8>, EntryRecord) {
        if data.len() <= PAGE_SIZE {
            let page = self
                .compress_memo
                .lock()
                .get_or_compress(Self::memo_key(entry), &self.codec, data);
            if page.is_compressed {
                let span = self.clock.tracer().span("compress", "compress");
                span.tag("bytes", page.original_len);
                self.clock.advance(self.cost.compress_page);
            }
            let record = EntryRecord {
                location: EntryLocation::Disk, // placeholder, set by caller
                len: page.original_len as u64,
                stored_len: page.data.len() as u64,
                class: if page.is_compressed {
                    Some(page.class)
                } else {
                    None
                },
                version: 0,
                checksum: page.checksum,
            };
            (page.data, record)
        } else {
            let record = EntryRecord {
                location: EntryLocation::Disk,
                len: data.len() as u64,
                stored_len: data.len() as u64,
                class: None,
                version: 0,
                checksum: checksum(data),
            };
            (data.to_vec(), record)
        }
    }

    fn recover(&self, record: &EntryRecord, stored: Vec<u8>) -> DmemResult<Vec<u8>> {
        if let Some(class) = record.class {
            let span = self.clock.tracer().span("compress", "decompress");
            span.tag("bytes", record.len);
            self.clock.advance(self.cost.decompress_page);
            drop(span);
            let page = CompressedPage {
                data: stored,
                class,
                original_len: record.len as usize,
                is_compressed: true,
                checksum: record.checksum,
            };
            self.compress_memo
                .lock()
                .get_or_decompress(&self.codec, &page)
        } else {
            // Raw entries verify the same way via the memo: a previously
            // verified identical blob is confirmed with a vectorized
            // `memcmp` instead of re-walking the byte-serial FNV — this
            // is the hot path for incompressible pages (random payloads
            // of the RDD and chaos workloads).
            let page = CompressedPage {
                data: stored,
                class: SizeClass::C4K,
                original_len: record.len as usize,
                is_compressed: false,
                checksum: record.checksum,
            };
            self.compress_memo
                .lock()
                .get_or_decompress(&self.codec, &page)
        }
    }

    fn drop_location(&self, entry: EntryId, record: &EntryRecord) {
        if let Some(engine) = self.qos.get() {
            engine.note_dropped(engine.tenant_of(entry.owner()), entry);
        }
        match &record.location {
            EntryLocation::NodeShared { .. } => {
                if let Some(m) = self.managers.get(&entry.owner().node()) {
                    let _ = m.delete(entry);
                }
            }
            EntryLocation::Remote { replicas } => {
                let set = dmem_cluster::ReplicaSet {
                    nodes: replicas.clone(),
                };
                self.replicator
                    .delete_replicated(entry.owner().node(), entry, &set);
            }
            EntryLocation::Nvm => {
                let node = entry.owner().node();
                if let Ok(freed) = self.nvm.delete(node, entry) {
                    let mut used = self.nvm_used.lock();
                    if let Some(u) = used.get_mut(&node) {
                        *u = u.saturating_sub(freed as u64);
                    }
                }
            }
            EntryLocation::Cxl { addr } => {
                if let Some(pool) = &self.cxl {
                    let _ = pool.free(CxlAddr::from_raw(*addr));
                }
                // The write-behind shadow goes with it.
                let _ = self.disk.delete(entry.owner().node(), entry);
            }
            EntryLocation::Disk => {
                let _ = self.disk.delete(entry.owner().node(), entry);
            }
        }
    }

    /// Stores `data` under `(server, key)`, tiering automatically.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ServerUnavailable`] if the owner is down, and
    /// any error of the last tier tried.
    pub fn put(&self, server: ServerId, key: u64, data: Vec<u8>) -> DmemResult<()> {
        self.put_pref(server, key, data, TierPreference::Auto)
    }

    /// Stores `data` with an explicit tier preference (used by the swap
    /// backends to realize the Fig. 8 distribution-ratio sweep).
    ///
    /// # Errors
    ///
    /// See [`DisaggregatedMemory::put`]; non-`Auto` preferences fail
    /// without falling through to another tier, except `NodeShared`/
    /// `Remote` which spill to disk as the paper's last resort.
    pub fn put_pref(
        &self,
        server: ServerId,
        key: u64,
        data: Vec<u8>,
        pref: TierPreference,
    ) -> DmemResult<()> {
        if !self.failures.is_server_up(server) {
            return Err(DmemError::ServerUnavailable(server));
        }
        let span = self.clock.tracer().span("core", "put");
        let t0 = self.clock.now();
        let entry = EntryId::new(server, key);
        // Replace semantics: release the previous incarnation.
        if let Some(old) = self.maps.lock().get_mut(&server).and_then(|m| m.remove(key)) {
            self.drop_location(entry, &old);
        }
        let (stored, mut record) = self.prepare(entry, &data);
        let node = server.node();
        let stored_len = stored.len() as u64;
        let qos = self.qos.get();
        let tenant = qos.map_or(TenantId::SYSTEM, |q| q.tenant_of(server));
        // QoS admission: over-quota and shed tenants degrade to disk
        // instead of taking fast-tier space (graceful degradation, never
        // a hard failure). Disk-preference puts skip the check — the disk
        // tier is unmetered.
        let admitted = match qos {
            Some(engine) if pref != TierPreference::Disk => {
                matches!(engine.admit_fast(tenant, stored_len), AdmitDecision::Admit)
            }
            _ => true,
        };

        let location = match pref {
            _ if !admitted => None,
            TierPreference::NodeShared | TierPreference::Auto => {
                match self.try_shared_qos(qos, tenant, node, entry, &stored, &record) {
                    Ok(loc) => Some(loc),
                    Err(_) if pref == TierPreference::Auto => None,
                    Err(e) => {
                        // NodeShared preference spills to disk (paper: swap
                        // to hard drive when no disaggregated memory). Both
                        // a full pool and an entry too large for the pool's
                        // page-sized blocks take that path.
                        if matches!(
                            e,
                            DmemError::CapacityExhausted { .. } | DmemError::Unsupported { .. }
                        ) {
                            self.disk.store(node, entry, stored.clone());
                            self.metrics.counter("core.put.disk").inc();
                            Some(EntryLocation::Disk)
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            _ => None,
        };
        let location = match location {
            Some(loc) => loc,
            None if !admitted => {
                self.disk.store(node, entry, stored.clone());
                self.metrics.counter("core.put.disk").inc();
                EntryLocation::Disk
            }
            None => match pref {
                TierPreference::Disk => {
                    self.disk.store(node, entry, stored.clone());
                    self.metrics.counter("core.put.disk").inc();
                    EntryLocation::Disk
                }
                TierPreference::Nvm => match self.try_nvm(node, entry, &stored) {
                    Ok(loc) => loc,
                    Err(_) => {
                        self.disk.store(node, entry, stored.clone());
                        self.metrics.counter("core.put.disk").inc();
                        EntryLocation::Disk
                    }
                },
                TierPreference::Cxl => {
                    match self.try_cxl(qos, tenant, node, entry, &stored) {
                        Ok(loc) => loc,
                        Err(_) => {
                            self.disk.store(node, entry, stored.clone());
                            self.metrics.counter("core.put.disk").inc();
                            EntryLocation::Disk
                        }
                    }
                }
                _ => {
                    // Auto continues down the hierarchy: the CXL pool
                    // (when configured) is the first stop past the node —
                    // cacheline far memory one switch hop away — then
                    // local NVM absorbs overflow before the network, then
                    // remote memory in the owner's group, then disk.
                    let nvm = if pref == TierPreference::Auto {
                        self.try_cxl(qos, tenant, node, entry, &stored)
                            .or_else(|_| self.try_nvm(node, entry, &stored))
                            .ok()
                    } else {
                        None
                    };
                    match nvm {
                        Some(loc) => loc,
                        None => match self.metered(qos, tenant, stored_len, || {
                            self.try_remote(node, entry, &stored)
                        }) {
                            Ok(loc) => loc,
                            Err(_) => {
                                self.disk.store(node, entry, stored.clone());
                                self.metrics.counter("core.put.disk").inc();
                                EntryLocation::Disk
                            }
                        },
                    }
                }
            },
        };
        span.tag("tier", Self::tier_name(&location));
        self.metrics
            .histogram("core.put.ns")
            .record((self.clock.now() - t0).as_nanos());
        self.note_landed(qos, tenant, entry, stored_len, &location);
        record.location = location;
        self.maps
            .lock()
            .get_mut(&server)
            .expect("server registered at construction")
            .upsert(key, record);
        Ok(())
    }

    fn try_shared(
        &self,
        node: NodeId,
        entry: EntryId,
        stored: &[u8],
        record: &EntryRecord,
    ) -> DmemResult<EntryLocation> {
        if stored.len() > PAGE_SIZE {
            return Err(DmemError::Unsupported {
                op: "multi-page entries in the node shared pool".into(),
            });
        }
        let class = record
            .class
            .or_else(|| dmem_types::SizeClass::fitting(stored.len()))
            .ok_or(DmemError::Unsupported {
                op: "oversized page".into(),
            })?;
        let manager = self
            .managers
            .get(&node)
            .ok_or(DmemError::NodeUnavailable(node))?;
        let block = manager.put(entry, stored.to_vec(), class)?;
        self.metrics.counter("core.put.shared").inc();
        Ok(EntryLocation::NodeShared {
            slab: block.slab,
            offset: block.offset,
        })
    }

    fn try_nvm(&self, node: NodeId, entry: EntryId, stored: &[u8]) -> DmemResult<EntryLocation> {
        let capacity = self.config.node.nvm_pool.as_u64();
        if capacity == 0 {
            return Err(DmemError::Unsupported {
                op: "nvm tier not configured".into(),
            });
        }
        {
            let mut used = self.nvm_used.lock();
            let u = used.entry(node).or_insert(0);
            if *u + stored.len() as u64 > capacity {
                return Err(DmemError::CapacityExhausted {
                    pool: format!("nvm on {node}"),
                });
            }
            *u += stored.len() as u64;
        }
        self.nvm.store(node, entry, stored.to_vec());
        self.metrics.counter("core.put.nvm").inc();
        Ok(EntryLocation::Nvm)
    }

    /// Deterministic placement key of `entry` on the CXL ring: mixes the
    /// owning server into the entry key so tenants spread across pool
    /// nodes instead of clustering by key range.
    fn cxl_key(entry: EntryId) -> u64 {
        let (server_key, key) = Self::memo_key(entry);
        server_key
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key)
    }

    /// Places `entry` in the CXL pool: ring placement, allocation, one
    /// cacheline-granular store, and a write-behind shadow copy on the
    /// owner's disk so pool-node loss degrades to disk instead of losing
    /// the entry. Fabric bytes are metered against the tenant's QoS
    /// token bucket, same as remote traffic.
    fn try_cxl(
        &self,
        qos: Option<&Arc<QosEngine>>,
        tenant: TenantId,
        node: NodeId,
        entry: EntryId,
        stored: &[u8],
    ) -> DmemResult<EntryLocation> {
        let Some(pool) = &self.cxl else {
            return Err(DmemError::Unsupported {
                op: "cxl tier not configured".into(),
            });
        };
        let addr = self.metered(qos, tenant, stored.len() as u64, || {
            let addr = pool.alloc(Self::cxl_key(entry), stored.len())?;
            if let Err(e) = pool.store(addr, stored) {
                let _ = pool.free(addr);
                return Err(e);
            }
            Ok(addr)
        })?;
        self.disk.store_behind(node, entry, stored.to_vec());
        self.metrics.counter("core.put.cxl").inc();
        Ok(EntryLocation::Cxl { addr: addr.raw() })
    }

    fn try_remote(&self, node: NodeId, entry: EntryId, stored: &[u8]) -> DmemResult<EntryLocation> {
        let peers = self.group_peers(node)?;
        if let Some(m) = self.managers.get(&node) {
            m.record_remote_escalation();
        }
        let set = self
            .replicator
            .store_replicated(node, entry, stored, Some(&peers))?;
        self.metrics.counter("core.put.remote").inc();
        Ok(EntryLocation::Remote {
            replicas: set.nodes,
        })
    }

    /// Reads the entry back, wherever it lives, verifying integrity.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] for unknown keys,
    /// [`DmemError::Corrupt`] on checksum mismatch, and path errors when
    /// every replica of a remote entry is unreachable.
    pub fn get(&self, server: ServerId, key: u64) -> DmemResult<Vec<u8>> {
        let entry = EntryId::new(server, key);
        let record = self
            .maps
            .lock()
            .get(&server)
            .and_then(|m| m.get(key).cloned())
            .ok_or(DmemError::EntryNotFound(entry))?;
        let span = self.clock.tracer().span("core", "get");
        span.tag("tier", Self::tier_name(&record.location));
        let t0 = self.clock.now();
        let qos = self.qos.get();
        let tenant = qos.map_or(TenantId::SYSTEM, |q| q.tenant_of(server));
        let stored = match &record.location {
            EntryLocation::NodeShared { .. } => {
                let manager = self
                    .managers
                    .get(&server.node())
                    .ok_or(DmemError::NodeUnavailable(server.node()))?;
                manager.get(entry)?
            }
            EntryLocation::Remote { replicas } => {
                let set = dmem_cluster::ReplicaSet {
                    nodes: replicas.clone(),
                };
                self.metered(qos, tenant, record.stored_len, || {
                    self.replicator.load_replicated(server.node(), entry, &set)
                })?
            }
            EntryLocation::Nvm => self.nvm.load(server.node(), entry)?,
            EntryLocation::Cxl { addr } => {
                let pool = self.cxl.as_ref().ok_or(DmemError::Unsupported {
                    op: "cxl tier not configured".into(),
                })?;
                let loaded = self.metered(qos, tenant, record.stored_len, || {
                    pool.load(CxlAddr::from_raw(*addr))
                });
                match loaded {
                    Ok(bytes) => bytes,
                    Err(DmemError::CxlPoolNodeDown { .. }) => {
                        // Pool-node outage: degrade to the write-behind
                        // shadow on the owner's disk, paying the full
                        // device cost. `recover` still checksums the
                        // payload, so the failover path can never serve
                        // wrong or stale bytes.
                        self.metrics.counter("cxl.failover.reads").inc();
                        self.disk.load(server.node(), entry)?
                    }
                    Err(e) => return Err(e),
                }
            }
            EntryLocation::Disk => self.disk.load(server.node(), entry)?,
        };
        let out = self.recover(&record, stored);
        let elapsed = (self.clock.now() - t0).as_nanos();
        self.metrics.histogram("core.get.ns").record(elapsed);
        if let Some(engine) = qos {
            self.metrics
                .histogram(&format!("qos.{}.get.ns", engine.tenant_name(tenant)))
                .record(elapsed);
        }
        out
    }

    /// Reads several entries, batching remote and disk fetches per
    /// location (this is the data path behind proactive batch swap-in).
    ///
    /// Results are returned in `keys` order.
    ///
    /// # Errors
    ///
    /// Fails on the first unreadable entry, with no partial results.
    pub fn get_batch(&self, server: ServerId, keys: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        let span = self.clock.tracer().span("core", "get_batch");
        span.tag("entries", keys.len());
        // Group keys by (tier, primary host) while remembering positions.
        let mut records = Vec::with_capacity(keys.len());
        {
            let maps = self.maps.lock();
            let map = maps
                .get(&server)
                .ok_or(DmemError::ServerUnavailable(server))?;
            for &key in keys {
                let record = map
                    .get(key)
                    .cloned()
                    .ok_or(DmemError::EntryNotFound(EntryId::new(server, key)))?;
                records.push(record);
            }
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];

        // Remote batches by primary replica. BTreeMap so hosts are read
        // in node order: virtual totals are order-independent, but span
        // boundaries (and thus trace exports) must not vary run-to-run.
        let mut by_primary: std::collections::BTreeMap<NodeId, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut disk_idx: Vec<usize> = Vec::new();
        for (i, record) in records.iter().enumerate() {
            match &record.location {
                EntryLocation::Remote { replicas } if !replicas.is_empty() => {
                    by_primary.entry(replicas[0]).or_default().push(i);
                }
                EntryLocation::Disk => disk_idx.push(i),
                _ => {
                    let data = self.get(server, keys[i])?;
                    out[i] = Some(data);
                }
            }
        }
        let qos = self.qos.get();
        let tenant = qos.map_or(TenantId::SYSTEM, |q| q.tenant_of(server));
        for (primary, indices) in by_primary {
            let ids: Vec<EntryId> = indices
                .iter()
                .map(|&i| EntryId::new(server, keys[i]))
                .collect();
            let batch_bytes: u64 = indices.iter().map(|&i| records[i].stored_len).sum();
            match self.metered(qos, tenant, batch_bytes, || {
                self.remote.load_batch(server.node(), primary, &ids)
            }) {
                Ok(blobs) => {
                    for (slot, blob) in indices.iter().zip(blobs) {
                        out[*slot] = Some(self.recover(&records[*slot], blob)?);
                    }
                }
                Err(_) => {
                    // Primary unreachable: fall back to per-entry failover.
                    for &i in &indices {
                        out[i] = Some(self.get(server, keys[i])?);
                    }
                }
            }
        }
        if !disk_idx.is_empty() {
            let ids: Vec<EntryId> = disk_idx
                .iter()
                .map(|&i| EntryId::new(server, keys[i]))
                .collect();
            let blobs = self.disk.load_batch(server.node(), &ids)?;
            for (slot, blob) in disk_idx.iter().zip(blobs) {
                out[*slot] = Some(self.recover(&records[*slot], blob)?);
            }
        }
        Ok(out.into_iter().map(|o| o.expect("all slots filled")).collect())
    }

    /// Stores a batch of entries with one remote replica-set per batch and
    /// windowed transfers (FastSwap's batched swap-out, §IV-H). Entries
    /// that fit the shared pool go there first under `Auto`.
    ///
    /// # Errors
    ///
    /// Fails if the final disk fallback fails (it does not), or propagates
    /// server-unavailability.
    pub fn put_batch(
        &self,
        server: ServerId,
        batch: Vec<(u64, Vec<u8>)>,
        pref: TierPreference,
    ) -> DmemResult<()> {
        if !self.failures.is_server_up(server) {
            return Err(DmemError::ServerUnavailable(server));
        }
        let span = self.clock.tracer().span("core", "put_batch");
        span.tag("entries", batch.len());
        let node = server.node();
        let qos = self.qos.get();
        let tenant = qos.map_or(TenantId::SYSTEM, |q| q.tenant_of(server));
        let mut remote_items: Vec<(u64, Vec<u8>, EntryRecord)> = Vec::new();
        for (key, data) in batch {
            let entry = EntryId::new(server, key);
            if let Some(old) = self.maps.lock().get_mut(&server).and_then(|m| m.remove(key)) {
                self.drop_location(entry, &old);
            }
            let (stored, mut record) = self.prepare(entry, &data);
            let admitted = match qos {
                Some(engine) if pref != TierPreference::Disk => matches!(
                    engine.admit_fast(tenant, stored.len() as u64),
                    AdmitDecision::Admit
                ),
                _ => true,
            };
            if !admitted {
                // QoS denial: degrade this entry to disk, same terminal
                // tier as the batch's own last-resort path.
                record.location = EntryLocation::Disk;
                self.disk.store(node, entry, stored);
                self.maps
                    .lock()
                    .get_mut(&server)
                    .expect("registered")
                    .upsert(key, record);
                continue;
            }
            match pref {
                TierPreference::Auto | TierPreference::NodeShared => {
                    match self.try_shared_qos(qos, tenant, node, entry, &stored, &record) {
                        Ok(loc) => {
                            record.location = loc;
                            self.note_landed(
                                qos,
                                tenant,
                                entry,
                                record.stored_len,
                                &record.location,
                            );
                            self.maps
                                .lock()
                                .get_mut(&server)
                                .expect("registered")
                                .upsert(key, record);
                        }
                        Err(_) if pref == TierPreference::Auto => {
                            // The CXL pool, then local NVM, absorb Auto
                            // overflow before the network (no batching
                            // needed: neither pays a per-verb base).
                            if let Ok(loc) = self
                                .try_cxl(qos, tenant, node, entry, &stored)
                                .or_else(|_| self.try_nvm(node, entry, &stored))
                            {
                                record.location = loc;
                                self.note_landed(
                                    qos,
                                    tenant,
                                    entry,
                                    record.stored_len,
                                    &record.location,
                                );
                                self.maps
                                    .lock()
                                    .get_mut(&server)
                                    .expect("registered")
                                    .upsert(key, record);
                            } else {
                                // Reserve residency now: later entries in
                                // this batch are admitted against a quota
                                // that already includes this one.
                                if let Some(engine) = qos {
                                    engine.note_fast_resident(
                                        tenant,
                                        entry,
                                        record.stored_len,
                                        ResidentTier::Remote,
                                    );
                                }
                                remote_items.push((key, stored, record));
                            }
                        }
                        Err(_) => {
                            record.location = EntryLocation::Disk;
                            self.disk.store(node, entry, stored);
                            self.maps
                                .lock()
                                .get_mut(&server)
                                .expect("registered")
                                .upsert(key, record);
                        }
                    }
                }
                TierPreference::Remote => {
                    if let Some(engine) = qos {
                        engine.note_fast_resident(
                            tenant,
                            entry,
                            record.stored_len,
                            ResidentTier::Remote,
                        );
                    }
                    remote_items.push((key, stored, record));
                }
                TierPreference::Nvm | TierPreference::Cxl => {
                    let placed = if pref == TierPreference::Nvm {
                        self.try_nvm(node, entry, &stored)
                    } else {
                        self.try_cxl(qos, tenant, node, entry, &stored)
                    };
                    record.location = match placed {
                        Ok(loc) => loc,
                        Err(_) => {
                            self.disk.store(node, entry, stored.clone());
                            EntryLocation::Disk
                        }
                    };
                    self.note_landed(qos, tenant, entry, record.stored_len, &record.location);
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
                TierPreference::Disk => {
                    record.location = EntryLocation::Disk;
                    self.disk.store(node, entry, stored);
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
            }
        }
        if remote_items.is_empty() {
            return Ok(());
        }
        // One replica set for the whole window; one batched RDMA write per
        // replica. Falls back to disk when the group cannot host it.
        let peers = self.group_peers(node)?;
        if let Some(m) = self.managers.get(&node) {
            m.record_remote_escalation();
        }
        let id_batch: Vec<(EntryId, Vec<u8>)> = remote_items
            .iter()
            .map(|(k, d, _)| (EntryId::new(server, *k), d.clone()))
            .collect();
        let batch_bytes: u64 = remote_items.iter().map(|(_, d, _)| d.len() as u64).sum();
        let picked = self
            .metered(qos, tenant, batch_bytes, || {
                self.replicator.store_batch_replicated(node, &id_batch, &peers)
            })
            .ok();
        match picked {
            Some(set) => {
                for (key, _, mut record) in remote_items {
                    record.location = EntryLocation::Remote {
                        replicas: set.nodes.clone(),
                    };
                    let entry = EntryId::new(server, key);
                    self.note_landed(qos, tenant, entry, record.stored_len, &record.location);
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
                self.metrics
                    .counter("core.put.remote_batched")
                    .add(set.nodes.len() as u64);
            }
            None => {
                let items: Vec<(EntryId, Vec<u8>)> = remote_items
                    .iter()
                    .map(|(k, d, _)| (EntryId::new(server, *k), d.clone()))
                    .collect();
                self.disk.store_batch(node, items);
                for (key, _, mut record) in remote_items {
                    // Credit the residency reserved at admission: the
                    // window fell through to disk, an unmetered tier.
                    if let Some(engine) = qos {
                        engine.note_dropped(tenant, EntryId::new(server, key));
                    }
                    record.location = EntryLocation::Disk;
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
            }
        }
        Ok(())
    }

    /// Deletes `(server, key)` from its current tier and the memory map.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] for unknown keys.
    pub fn delete(&self, server: ServerId, key: u64) -> DmemResult<()> {
        let entry = EntryId::new(server, key);
        let record = self
            .maps
            .lock()
            .get_mut(&server)
            .and_then(|m| m.remove(key))
            .ok_or(DmemError::EntryNotFound(entry))?;
        self.drop_location(entry, &record);
        Ok(())
    }

    /// The memory-map record of `(server, key)`, if tracked.
    pub fn record(&self, server: ServerId, key: u64) -> Option<EntryRecord> {
        self.maps.lock().get(&server).and_then(|m| m.get(key).cloned())
    }

    /// The replication manager, exposed so invariant checkers can probe
    /// live replica degree without re-deriving cluster state.
    pub fn replicator(&self) -> &Replicator {
        &self.replicator
    }

    /// A point-in-time copy of every tracked entry across all memory
    /// maps, as `(owner, key, record)` triples sorted by owner and key.
    ///
    /// This is the invariant-probe API: external checkers (the chaos
    /// harness, debugging tools) sweep the whole map without holding the
    /// map lock across their own per-entry work.
    pub fn entries_snapshot(&self) -> Vec<(ServerId, u64, EntryRecord)> {
        let maps = self.maps.lock();
        let mut out: Vec<(ServerId, u64, EntryRecord)> = maps
            .iter()
            .flat_map(|(server, map)| {
                map.iter().map(move |(key, record)| (*server, key, record.clone()))
            })
            .collect();
        out.sort_by_key(|(server, key, _)| (*server, *key));
        out
    }

    /// Runs one eviction scan (§IV-F) and applies the resulting moves to
    /// every affected memory map.
    ///
    /// # Errors
    ///
    /// Propagates evictor-level failures.
    pub fn run_eviction(&self, evictor: &RemoteSlabEvictor, placer: &Placer) -> DmemResult<EvictionOutcome> {
        let span = self.clock.tracer().span("cluster", "evict_scan");
        let outcome = evictor.scan(&self.remote, placer)?;
        span.tag("moves", outcome.moves.len());
        let mut maps = self.maps.lock();
        for (entry, from, to) in &outcome.moves {
            if let Some(map) = maps.get_mut(&entry.owner()) {
                map.relocate_replica(entry.key(), *from, *to);
            }
        }
        Ok(outcome)
    }

    /// Repairs every degraded remote replica set (after node failures),
    /// returning how many entries were re-replicated.
    pub fn repair_replicas(&self) -> usize {
        let span = self.clock.tracer().span("cluster", "repair");
        let mut snapshot: Vec<(ServerId, u64, Vec<NodeId>)> = {
            let maps = self.maps.lock();
            maps.iter()
                .flat_map(|(server, map)| {
                    map.iter().filter_map(move |(key, record)| {
                        match &record.location {
                            EntryLocation::Remote { replicas } => {
                                Some((*server, key, replicas.clone()))
                            }
                            _ => None,
                        }
                    })
                })
                .collect()
        };
        // Repair in (server, key) order: the snapshot above walks two
        // `HashMap`s, and repair order feeds the placement RNG and every
        // host's allocator, so map order would make all downstream
        // placement — and the per-seed metrics digest — vary run-to-run.
        snapshot.sort_unstable_by_key(|(server, key, _)| (*server, *key));
        let mut repaired = 0;
        for (server, key, replicas) in snapshot {
            let entry = EntryId::new(server, key);
            let set = dmem_cluster::ReplicaSet { nodes: replicas };
            if self.replicator.live_degree(entry, &set) < self.replicator.factor().get() {
                if let Ok(new_set) = self.replicator.re_replicate(server.node(), entry, &set) {
                    let mut maps = self.maps.lock();
                    if let Some(map) = maps.get_mut(&server) {
                        if let Some(record) = map.get(key).cloned() {
                            let mut record = record;
                            record.location = EntryLocation::Remote {
                                replicas: new_set.nodes,
                            };
                            map.upsert(key, record);
                            repaired += 1;
                        }
                    }
                }
            }
        }
        span.tag("repaired", repaired);
        self.resolve_suspects();
        repaired
    }

    /// Resolves read-failover suspicions at the end of a repair scan:
    /// an alive suspect reachable from every alive peer is probed
    /// healthy and cleared; a dead suspect no longer referenced by any
    /// replica set has been fully repaired around and is evicted from
    /// the suspect list. Anything else stays suspect for the next scan.
    ///
    /// Suspects exist only under fault injection ([`Fabric::faults_installed`]),
    /// so fault-free runs take the empty early-return and create no
    /// metric keys.
    pub(crate) fn resolve_suspects(&self) {
        let suspects = self.membership.suspects();
        if suspects.is_empty() {
            return;
        }
        let referenced: HashSet<NodeId> = self
            .entries_snapshot()
            .into_iter()
            .filter_map(|(_, _, record)| match record.location {
                EntryLocation::Remote { replicas } => Some(replicas),
                _ => None,
            })
            .flatten()
            .collect();
        let alive = self.membership.alive_nodes();
        for node in suspects {
            if self.membership.is_alive(node) {
                let reachable = alive
                    .iter()
                    .all(|&peer| peer == node || self.fabric.is_path_up(peer, node));
                if reachable && self.membership.clear_suspect(node) {
                    self.metrics.counter("cluster.suspect.cleared").inc();
                }
            } else if !referenced.contains(&node) && self.membership.clear_suspect(node) {
                self.metrics.counter("cluster.suspect.evicted").inc();
            }
        }
    }

    /// Handles a crashed-and-restarted node: hosted remote entries are
    /// lost, the receive pool is re-registered, local servers' maps and
    /// shared-pool contents are purged (same failure semantics as losing
    /// OS swap, §IV-D). Returns `(lost_remote_entries, purged_local_entries)`.
    ///
    /// # Errors
    ///
    /// Propagates region re-registration failures if the node is still down.
    pub fn handle_node_restart(&self, node: NodeId) -> DmemResult<(usize, usize)> {
        let lost_remote = self.remote.reset_node(node)?;
        let mut purged = 0;
        let mut maps = self.maps.lock();
        for (&server, map) in maps.iter_mut() {
            if server.node() == node {
                purged += map.len();
                // Release the restarted servers' CXL blocks (and their
                // disk shadows): the maps are cleared wholesale below,
                // bypassing `drop_location`, and leaked blocks would eat
                // pool capacity forever.
                if let Some(pool) = &self.cxl {
                    for (key, record) in map.iter() {
                        if let EntryLocation::Cxl { addr } = record.location {
                            let _ = pool.free(CxlAddr::from_raw(addr));
                            let _ = self.disk.delete(node, EntryId::new(server, key));
                        }
                    }
                }
                if let Some(engine) = self.qos.get() {
                    // The maps are cleared wholesale below, bypassing
                    // `drop_location`; credit residency entry by entry so
                    // quota accounting survives the crash.
                    let tenant = engine.tenant_of(server);
                    for (key, _) in map.iter() {
                        engine.note_dropped(tenant, EntryId::new(server, key));
                    }
                }
                *map = MemoryMap::new();
                if let Some(m) = self.managers.get(&node) {
                    m.deregister_server(server);
                    m.register_server(server, self.config.server.memory, self.config.server.donation);
                }
            }
        }
        Ok((lost_remote, purged))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DmStats {
        let maps = self.maps.lock();
        let mut stats = DmStats::default();
        for map in maps.values() {
            let (s, n, r, c, d) = map.tier_census();
            stats.entries += map.len();
            stats.shared += s;
            stats.nvm += n;
            stats.remote += r;
            stats.cxl += c;
            stats.disk += d;
        }
        for manager in self.managers.values() {
            stats.shared_capacity += manager.capacity();
        }
        for &node in self.membership.nodes() {
            stats.remote_free += self.membership.free_of(node);
        }
        stats
    }
}

impl fmt::Debug for DisaggregatedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DisaggregatedMemory")
            .field("nodes", &self.config.nodes)
            .field("servers", &self.servers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::FailureEvent;
    use dmem_types::{CompressionMode, PlacementStrategy};

    fn system() -> DisaggregatedMemory {
        DisaggregatedMemory::new(ClusterConfig::small()).unwrap()
    }

    #[test]
    fn config_is_validated() {
        let mut bad = ClusterConfig::small();
        bad.nodes = 0;
        assert!(DisaggregatedMemory::new(bad).is_err());
    }

    #[test]
    fn put_lands_in_shared_pool_first() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![7u8; 4096]).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(record.location.is_node_local());
        assert_eq!(dm.get(server, 1).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn compression_is_transparent() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![0u8; 4096]).unwrap(); // highly compressible
        let record = dm.record(server, 1).unwrap();
        assert!(record.class.is_some());
        assert!(record.stored_len < 4096);
        assert!(record.compression_ratio() > 2.0);
        assert_eq!(dm.get(server, 1).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn overflow_tiers_to_remote_then_disk() {
        let mut config = ClusterConfig::small();
        // Tiny donations so the shared pool fills immediately, and no
        // compression so each page really occupies 4 KiB remotely.
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        config.node.recv_pool = ByteSize::from_kib(64);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        // Shared pool has zero capacity: entries go remote.
        dm.put(server, 1, vec![1u8; 4096]).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(record.location.is_remote(), "got {:?}", record.location);
        assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 4096]);

        // Exhaust remote pools too: spills to disk. Incompressible pages
        // of 4 KiB × enough keys to overrun 3 × 64 KiB of replicas.
        for k in 2..60 {
            dm.put(server, k, vec![k as u8; 4096]).unwrap();
        }
        let stats = dm.stats();
        assert!(stats.disk > 0, "disk tier must absorb the overflow");
        // Everything still readable.
        for k in 2..60 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 4096]);
        }
    }

    #[test]
    fn explicit_tier_preferences() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 512], TierPreference::Disk)
            .unwrap();
        assert!(dm.record(server, 1).unwrap().location.is_disk());
        dm.put_pref(server, 2, vec![2u8; 512], TierPreference::Remote)
            .unwrap();
        assert!(dm.record(server, 2).unwrap().location.is_remote());
        dm.put_pref(server, 3, vec![3u8; 512], TierPreference::NodeShared)
            .unwrap();
        assert!(dm.record(server, 3).unwrap().location.is_node_local());
        for k in 1..=3 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 512]);
        }
    }

    #[test]
    fn replace_updates_version_and_frees_old_tier() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 256], TierPreference::Disk)
            .unwrap();
        dm.put_pref(server, 1, vec![2u8; 256], TierPreference::Remote)
            .unwrap();
        let record = dm.record(server, 1).unwrap();
        assert_eq!(record.version, 1, "fresh key after remove: version restarts");
        assert!(record.location.is_remote());
        assert!(!dm.disk_tier().contains(server.node(), EntryId::new(server, 1)));
        assert_eq!(dm.get(server, 1).unwrap(), vec![2u8; 256]);
    }

    #[test]
    fn delete_removes_everywhere() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![1u8; 128]).unwrap();
        dm.delete(server, 1).unwrap();
        assert!(dm.record(server, 1).is_none());
        assert!(matches!(
            dm.get(server, 1),
            Err(DmemError::EntryNotFound(_))
        ));
        assert!(matches!(dm.delete(server, 1), Err(DmemError::EntryNotFound(_))));
    }

    #[test]
    fn remote_read_survives_replica_failures() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![9u8; 2048]).unwrap();
        let record = dm.record(server, 1).unwrap();
        let replicas = match &record.location {
            EntryLocation::Remote { replicas } => replicas.clone(),
            other => panic!("expected remote, got {other:?}"),
        };
        assert_eq!(replicas.len(), 3);
        // Two of three replicas die; read still succeeds.
        dm.failures()
            .inject_now(FailureEvent::NodeDown(replicas[0]));
        dm.failures()
            .inject_now(FailureEvent::NodeDown(replicas[1]));
        assert_eq!(dm.get(server, 1).unwrap(), vec![9u8; 2048]);
    }

    #[test]
    fn repair_restores_replication_degree() {
        let mut config = ClusterConfig::small();
        config.nodes = 6;
        config.group_size = 6;
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![3u8; 1024]).unwrap();
        let replicas = match dm.record(server, 1).unwrap().location {
            EntryLocation::Remote { replicas } => replicas,
            other => panic!("expected remote, got {other:?}"),
        };
        let victim = replicas[0];
        dm.failures().inject_now(FailureEvent::NodeDown(victim));
        dm.failures().inject_now(FailureEvent::NodeUp(victim));
        dm.handle_node_restart(victim).unwrap();

        let repaired = dm.repair_replicas();
        assert_eq!(repaired, 1);
        let new_replicas = match dm.record(server, 1).unwrap().location {
            EntryLocation::Remote { replicas } => replicas,
            other => panic!("expected remote, got {other:?}"),
        };
        assert_eq!(new_replicas.len(), 3);
        assert_eq!(dm.get(server, 1).unwrap(), vec![3u8; 1024]);
    }

    #[test]
    fn node_restart_loses_local_maps() {
        let dm = system();
        let server = dm.servers()[0]; // on node 0
        dm.put(server, 1, vec![1u8; 64]).unwrap();
        let (_, purged) = dm.handle_node_restart(server.node()).unwrap();
        assert_eq!(purged, 1);
        assert!(dm.record(server, 1).is_none(), "map gone with the node");
    }

    #[test]
    fn batch_roundtrip_and_batching_speedup() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        let batch: Vec<(u64, Vec<u8>)> =
            (0..16).map(|k| (k, vec![k as u8; 4096])).collect();
        let t0 = dm.clock().now();
        dm.put_batch(server, batch, TierPreference::Remote).unwrap();
        let batched_cost = dm.clock().now() - t0;

        let keys: Vec<u64> = (0..16).collect();
        let loaded = dm.get_batch(server, &keys).unwrap();
        for (k, data) in loaded.iter().enumerate() {
            assert_eq!(data, &vec![k as u8; 4096]);
        }

        // Singleton puts of the same volume cost strictly more.
        let t1 = dm.clock().now();
        for k in 16..32u64 {
            dm.put_pref(server, k, vec![k as u8; 4096], TierPreference::Remote)
                .unwrap();
        }
        let single_cost = dm.clock().now() - t1;
        assert!(
            batched_cost < single_cost,
            "batched {batched_cost} >= single {single_cost}"
        );
    }

    #[test]
    fn large_entries_bypass_shared_pool() {
        let dm = system();
        let server = dm.servers()[0];
        let big = vec![5u8; 64 * 1024];
        dm.put(server, 1, big.clone()).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(!record.location.is_node_local());
        assert_eq!(dm.get(server, 1).unwrap(), big);
    }

    #[test]
    fn group_leadership_is_exposed() {
        let dm = system();
        let leader = dm.group_leader(NodeId::new(0)).unwrap();
        assert!(dm.membership().is_alive(leader));
        let peers = dm.group_peers(NodeId::new(0)).unwrap();
        assert!(!peers.contains(&NodeId::new(0)));
    }

    #[test]
    fn dead_server_cannot_put() {
        let dm = system();
        let server = dm.servers()[0];
        dm.failures().inject_now(FailureEvent::ServerDown(server));
        assert!(matches!(
            dm.put(server, 1, vec![1]),
            Err(DmemError::ServerUnavailable(_))
        ));
    }

    #[test]
    fn stats_track_census() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 64], TierPreference::NodeShared)
            .unwrap();
        dm.put_pref(server, 2, vec![2u8; 64], TierPreference::Remote)
            .unwrap();
        dm.put_pref(server, 3, vec![3u8; 64], TierPreference::Disk)
            .unwrap();
        let stats = dm.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!((stats.shared, stats.remote, stats.disk), (1, 1, 1));
        assert!(stats.shared_capacity > ByteSize::ZERO);
        assert_eq!(dm.metrics().counter("core.put.shared").get(), 1);
    }

    #[test]
    fn placement_strategies_all_construct() {
        for placement in [
            PlacementStrategy::Random,
            PlacementStrategy::RoundRobin,
            PlacementStrategy::WeightedRoundRobin,
            PlacementStrategy::PowerOfTwoChoices,
        ] {
            let mut config = ClusterConfig::small();
            config.placement = placement;
            let dm = DisaggregatedMemory::new(config).unwrap();
            let server = dm.servers()[0];
            dm.put_pref(server, 1, vec![1u8; 64], TierPreference::Remote)
                .unwrap();
            assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 64]);
        }
    }

    #[test]
    fn nvm_tier_disabled_by_default() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 512], TierPreference::Nvm)
            .unwrap();
        // Without an NVM pool the preference spills to disk.
        assert!(dm.record(server, 1).unwrap().location.is_disk());
    }

    #[test]
    fn nvm_tier_roundtrip_and_capacity() {
        let mut config = ClusterConfig::small();
        config.node.nvm_pool = ByteSize::from_kib(8);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 4096], TierPreference::Nvm)
            .unwrap();
        dm.put_pref(server, 2, vec![2u8; 4096], TierPreference::Nvm)
            .unwrap();
        assert!(dm.record(server, 1).unwrap().location.is_nvm());
        assert_eq!(dm.nvm_used(server.node()), ByteSize::from_kib(8));
        // Pool full: the third entry spills to disk.
        dm.put_pref(server, 3, vec![3u8; 4096], TierPreference::Nvm)
            .unwrap();
        assert!(dm.record(server, 3).unwrap().location.is_disk());
        // Reads are tier-transparent; deleting releases capacity.
        assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 4096]);
        dm.delete(server, 1).unwrap();
        assert_eq!(dm.nvm_used(server.node()), ByteSize::from_kib(4));
        let stats = dm.stats();
        assert_eq!(stats.nvm, 1);
        assert_eq!(stats.disk, 1);
    }

    fn cxl_system(pool_nodes: usize, cap: ByteSize) -> DisaggregatedMemory {
        let mut config = ClusterConfig::small();
        config.cxl = dmem_types::CxlPoolConfig::new(pool_nodes, cap);
        config.compression = CompressionMode::Off;
        DisaggregatedMemory::new(config).unwrap()
    }

    #[test]
    fn cxl_tier_roundtrip_capacity_and_stats() {
        // One pool node so capacity arithmetic is placement-independent.
        let dm = cxl_system(1, ByteSize::from_kib(16));
        let server = dm.servers()[0];
        for k in 1..=4u64 {
            dm.put_pref(server, k, vec![k as u8; 4096], TierPreference::Cxl)
                .unwrap();
            assert!(dm.record(server, k).unwrap().location.is_cxl());
        }
        let pool = dm.cxl_pool().expect("configured");
        assert_eq!(pool.used_total(), ByteSize::from_kib(16));
        // Pool full (16 KiB): the fifth entry spills to disk.
        dm.put_pref(server, 5, vec![5u8; 4096], TierPreference::Cxl)
            .unwrap();
        assert!(dm.record(server, 5).unwrap().location.is_disk());
        // Reads are tier-transparent; deleting releases pool capacity
        // and drops the write-behind shadow.
        for k in 1..=5u64 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 4096]);
        }
        dm.delete(server, 1).unwrap();
        assert_eq!(pool.used_total(), ByteSize::from_kib(12));
        assert!(!dm.disk_tier().contains(server.node(), EntryId::new(server, 1)));
        let stats = dm.stats();
        assert_eq!(stats.cxl, 3, "stats {stats:?}");
        assert_eq!(stats.disk, 1);
        assert!(dm.metrics().counter("cxl.store.ops").get() >= 4);
    }

    #[test]
    fn cxl_outage_fails_over_to_the_disk_shadow() {
        let dm = cxl_system(1, ByteSize::from_kib(64));
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![6u8; 4096], TierPreference::Cxl)
            .unwrap();
        assert!(dm.record(server, 1).unwrap().location.is_cxl());
        let pool = Arc::clone(dm.cxl_pool().unwrap());
        pool.set_pool_node_down(0);
        // The pool is unreachable, but the read degrades to the shadow
        // copy — correct bytes, checksum-verified, at disk cost.
        let t0 = dm.clock().now();
        assert_eq!(dm.get(server, 1).unwrap(), vec![6u8; 4096]);
        assert!((dm.clock().now() - t0).as_millis_f64() > 3.0, "paid disk");
        assert_eq!(dm.metrics().counter("cxl.failover.reads").get(), 1);
        pool.set_pool_node_up(0);
        let t1 = dm.clock().now();
        assert_eq!(dm.get(server, 1).unwrap(), vec![6u8; 4096]);
        assert!(
            (dm.clock().now() - t1).as_micros_f64() < 100.0,
            "recovered reads go back to the pool"
        );
        // New puts during an outage of the only pool node spill to disk.
        pool.set_pool_node_down(0);
        dm.put_pref(server, 2, vec![7u8; 4096], TierPreference::Cxl)
            .unwrap();
        assert!(dm.record(server, 2).unwrap().location.is_disk());
    }

    #[test]
    fn auto_prefers_cxl_before_nvm_and_remote() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0); // no shared pool
        config.node.nvm_pool = ByteSize::from_mib(1);
        config.cxl = dmem_types::CxlPoolConfig::new(2, ByteSize::from_kib(64));
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        let t0 = dm.clock().now();
        dm.put(server, 1, vec![7u8; 4096]).unwrap();
        let put_cost = dm.clock().now() - t0;
        assert!(
            dm.record(server, 1).unwrap().location.is_cxl(),
            "cxl outranks nvm and remote in the Auto hierarchy"
        );
        assert!(put_cost.as_micros_f64() < 10.0, "cxl put cost {put_cost}");
        assert_eq!(dm.get(server, 1).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn cxl_remote_atomics_through_the_pool_handle() {
        let dm = cxl_system(2, ByteSize::from_kib(8));
        let pool = dm.cxl_pool().unwrap();
        let cell = pool.alloc_counter(42).unwrap();
        assert_eq!(pool.fetch_add(cell, 5).unwrap(), 0);
        assert_eq!(pool.cas(cell, 5, 11).unwrap(), 5);
        assert_eq!(pool.counter_value(cell).unwrap(), 11);
        assert_eq!(pool.counter_ops(cell), 2);
        assert!(dm.metrics().counter("cxl.atomic.ops").get() == 2);
    }

    #[test]
    fn no_cxl_metrics_without_a_pool() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![1u8; 4096]).unwrap();
        dm.put_pref(server, 2, vec![2u8; 4096], TierPreference::Remote)
            .unwrap();
        dm.get(server, 1).unwrap();
        assert!(dm.cxl_pool().is_none());
        // An explicit Cxl preference without a pool degrades to disk.
        dm.put_pref(server, 3, vec![3u8; 512], TierPreference::Cxl)
            .unwrap();
        assert!(dm.record(server, 3).unwrap().location.is_disk());
        let dump = dm.metrics().to_string();
        assert!(!dump.contains("cxl."), "cxl keys leaked: {dump}");
    }

    #[test]
    fn auto_prefers_nvm_over_remote_when_configured() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0); // no shared pool
        config.node.nvm_pool = ByteSize::from_mib(1);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        let t0 = dm.clock().now();
        dm.put(server, 1, vec![7u8; 4096]).unwrap();
        let put_cost = dm.clock().now() - t0;
        assert!(dm.record(server, 1).unwrap().location.is_nvm());
        // NVM absorbs the overflow more cheaply than a triple-replicated
        // remote write would.
        assert!(put_cost.as_micros_f64() < 15.0, "nvm put cost {put_cost}");
        assert_eq!(dm.get(server, 1).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn no_qos_metrics_without_engine() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![1u8; 4096]).unwrap();
        dm.put_pref(server, 2, vec![2u8; 4096], TierPreference::Remote)
            .unwrap();
        dm.get(server, 1).unwrap();
        dm.get(server, 2).unwrap();
        assert_eq!(dm.qos_tick(), 0);
        assert!(dm.qos().is_none());
        assert!(dm.qos_priority_resolver().is_none());
        let dump = dm.metrics().to_string();
        assert!(!dump.contains("qos."), "qos keys leaked: {dump}");
        assert!(!dump.contains("net.tenant-"), "tenant keys leaked: {dump}");
    }

    #[test]
    fn qos_quota_denial_degrades_to_disk() {
        use dmem_qos::{QosConfig, QosEngine, TenantSpec};
        let mut config = ClusterConfig::small();
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let engine = Arc::new(QosEngine::new(QosConfig::default()));
        dm.install_qos(Arc::clone(&engine));
        let server = dm.servers()[0];
        let capped = engine.register_tenant(TenantSpec::new(
            "capped",
            50,
            ByteSize::from_kib(4),
        ));
        engine.assign_server(server, capped);
        for k in 0..4u64 {
            dm.put(server, k, vec![k as u8; 4096]).unwrap();
        }
        // One page fits the 4 KiB quota; the rest degrade to disk — no
        // hard failure, every entry still readable.
        let stats = dm.stats();
        assert_eq!(stats.disk, 3, "stats {stats:?}");
        for k in 0..4u64 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 4096]);
        }
        assert!(dm.metrics().counter("qos.capped.rejected.bytes").get() > 0);
        assert!(dm.metrics().counter("qos.capped.admitted.bytes").get() > 0);
        // Deleting the resident entry frees the quota again.
        dm.delete(server, 0).unwrap();
        dm.put(server, 9, vec![9u8; 4096]).unwrap();
        assert!(!dm.record(server, 9).unwrap().location.is_disk());
    }

    #[test]
    fn qos_priority_eviction_reclaims_low_priority_pages() {
        use dmem_qos::{QosConfig, QosEngine, TenantSpec};
        let mut config = ClusterConfig::small();
        // One 8 KiB slab of donation per node: room for exactly two pages.
        config.node.slab_size = ByteSize::from_kib(8);
        config.server.donation = dmem_types::DonationPolicy::fixed(0.000244140625);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let engine = Arc::new(QosEngine::new(QosConfig::default()));
        dm.install_qos(Arc::clone(&engine));
        let low_server = dm.servers()[0];
        let high_server = dm.servers()[1]; // same node
        assert_eq!(low_server.node(), high_server.node());
        let low = engine.register_tenant(TenantSpec::new("batch", 10, ByteSize::from_mib(4)));
        let high = engine.register_tenant(TenantSpec::new("kv", 200, ByteSize::from_mib(4)));
        engine.assign_server(low_server, low);
        engine.assign_server(high_server, high);
        // The low-priority tenant fills the node's two-page shared pool.
        for k in 1..=2u64 {
            dm.put_pref(low_server, k, vec![k as u8; 4096], TierPreference::NodeShared)
                .unwrap();
            assert!(dm.record(low_server, k).unwrap().location.is_node_local());
        }
        // A high-priority put reclaims one of those pages instead of
        // spilling to a slower tier.
        dm.put_pref(high_server, 7, vec![7u8; 4096], TierPreference::NodeShared)
            .unwrap();
        assert!(dm.record(high_server, 7).unwrap().location.is_node_local());
        let evictions = engine.evictions();
        assert_eq!(evictions.len(), 1);
        assert!(evictions[0].victim_priority <= evictions[0].beneficiary_priority);
        // Exactly one victim was demoted to disk — and not lost.
        let demoted = (1..=2u64)
            .filter(|&k| dm.record(low_server, k).unwrap().location.is_disk())
            .count();
        assert_eq!(demoted, 1);
        for k in 1..=2u64 {
            assert_eq!(dm.get(low_server, k).unwrap(), vec![k as u8; 4096]);
        }
        // The reverse direction must not hold: the low-priority tenant
        // cannot evict the high-priority page.
        dm.put_pref(low_server, 3, vec![3u8; 4096], TierPreference::NodeShared)
            .unwrap();
        assert!(dm.record(high_server, 7).unwrap().location.is_node_local());
    }

    #[test]
    fn qos_fabric_rate_limit_throttles_remote_traffic() {
        use dmem_qos::{QosConfig, QosEngine, TenantSpec};
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        config.compression = CompressionMode::Off;

        let baseline = DisaggregatedMemory::new(config.clone()).unwrap();
        let s = baseline.servers()[0];
        let t0 = baseline.clock().now();
        for k in 0..8u64 {
            baseline
                .put_pref(s, k, vec![k as u8; 4096], TierPreference::Remote)
                .unwrap();
        }
        let base_cost = baseline.clock().now() - t0;

        let dm = DisaggregatedMemory::new(config).unwrap();
        let engine = Arc::new(QosEngine::new(QosConfig {
            burst: ByteSize::from_kib(4),
            ..QosConfig::default()
        }));
        dm.install_qos(Arc::clone(&engine));
        let server = dm.servers()[0];
        let slow = engine.register_tenant(
            TenantSpec::new("slow", 10, ByteSize::from_mib(16)).with_fabric_rate(1_000_000),
        );
        engine.assign_server(server, slow);
        let t1 = dm.clock().now();
        for k in 0..8u64 {
            dm.put_pref(server, k, vec![k as u8; 4096], TierPreference::Remote)
                .unwrap();
        }
        let limited_cost = dm.clock().now() - t1;
        assert!(
            limited_cost > base_cost,
            "rate limit must slow the tenant: {limited_cost} <= {base_cost}"
        );
        assert!(
            dm.metrics().counter("qos.slow.tokens_waited.ns").get() > 0,
            "waits must be accounted"
        );
        let raw = slow.index();
        let net = dm.fabric().metrics();
        assert!(net.counter(&format!("net.tenant-{raw}.ops")).get() > 0);
        assert!(net.counter(&format!("net.tenant-{raw}.bytes")).get() > 0);
        // Scope never leaks past the metered section.
        assert!(dm.fabric().tenant_scope().is_none());
    }

    #[test]
    fn qos_node_restart_credits_residency() {
        use dmem_qos::{QosConfig, QosEngine, TenantSpec};
        let dm = system();
        let engine = Arc::new(QosEngine::new(QosConfig::default()));
        dm.install_qos(Arc::clone(&engine));
        let server = dm.servers()[0];
        let tenant = engine.register_tenant(TenantSpec::new("t", 50, ByteSize::from_mib(1)));
        engine.assign_server(server, tenant);
        dm.put(server, 1, vec![1u8; 4096]).unwrap();
        let resident_before = engine
            .tenants_snapshot()
            .iter()
            .find(|t| t.id == tenant)
            .unwrap()
            .resident;
        assert!(resident_before > 0);
        dm.handle_node_restart(server.node()).unwrap();
        let resident_after = engine
            .tenants_snapshot()
            .iter()
            .find(|t| t.id == tenant)
            .unwrap()
            .resident;
        assert_eq!(resident_after, 0, "crash must credit the quota");
    }

    #[test]
    fn corruption_is_detected() {
        // White-box: store raw (uncompressed) on disk, then flip bytes by
        // re-storing via the disk tier directly.
        let mut config = ClusterConfig::small();
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 64], TierPreference::Disk)
            .unwrap();
        dm.disk_tier()
            .store(server.node(), EntryId::new(server, 1), vec![2u8; 64]);
        assert!(matches!(dm.get(server, 1), Err(DmemError::Corrupt(_))));
    }
}
