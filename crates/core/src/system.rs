//! The assembled disaggregated memory system.

use crate::disk::DiskTier;
use crate::memmap::MemoryMap;
use dmem_cluster::{
    ClusterMembership, EvictionOutcome, GroupTable, LeaderElection, Placer, RemoteSlabEvictor,
    RemoteStore, Replicator,
};
use dmem_compress::{CompressMemo, CompressedPage, PageCodec};
use dmem_net::Fabric;
use dmem_node::NodeManager;
use dmem_sim::{
    CostModel, DetRng, FailureInjector, MetricsRegistry, SimClock, SimDuration,
};
use dmem_types::{
    checksum, ByteSize, ClusterConfig, DmemError, DmemResult, EntryId, EntryLocation, EntryRecord,
    NodeId, ServerId, SizeClass, PAGE_SIZE,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Where a `put` is allowed to land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierPreference {
    /// Tier through shared memory → remote → disk (the paper's design).
    Auto,
    /// Node shared memory only; error when the pool is full.
    NodeShared,
    /// Local byte-addressable NVM (the §VI extension tier); spills to
    /// disk when the NVM pool is full or absent.
    Nvm,
    /// Remote cluster memory only (the FS-RDMA configuration of Fig. 8).
    Remote,
    /// Local disk only (the Linux-baseline path).
    Disk,
}

/// Aggregate system statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DmStats {
    /// Entries tracked across all memory maps.
    pub entries: usize,
    /// Entries resident in node shared pools.
    pub shared: usize,
    /// Entries in local NVM.
    pub nvm: usize,
    /// Entries in remote cluster memory.
    pub remote: usize,
    /// Entries spilled to disk.
    pub disk: usize,
    /// Total shared-pool capacity across nodes.
    pub shared_capacity: ByteSize,
    /// Total advertised free remote pool capacity.
    pub remote_free: ByteSize,
}

/// The paper's two-level disaggregated memory system over one simulated
/// cluster. See the crate docs for an overview and example.
pub struct DisaggregatedMemory {
    config: ClusterConfig,
    clock: SimClock,
    cost: CostModel,
    failures: FailureInjector,
    fabric: Fabric,
    membership: ClusterMembership,
    groups: Mutex<GroupTable>,
    election: LeaderElection,
    managers: HashMap<NodeId, Arc<NodeManager>>,
    remote: Arc<RemoteStore>,
    replicator: Replicator,
    disk: DiskTier,
    nvm: DiskTier,
    nvm_used: Mutex<HashMap<NodeId, u64>>,
    codec: PageCodec,
    /// Byte-guarded compressed-page memo keyed by `(server, key)`. Hits
    /// skip the LZ matcher; the simulated compression cost is charged
    /// either way, so virtual-time results are unchanged.
    compress_memo: Mutex<CompressMemo>,
    maps: Mutex<HashMap<ServerId, MemoryMap>>,
    servers: Vec<ServerId>,
    metrics: MetricsRegistry,
}

impl DisaggregatedMemory {
    /// Builds the full system from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::InvalidConfig`] for invalid configurations and
    /// propagates substrate construction failures.
    pub fn new(config: ClusterConfig) -> DmemResult<Self> {
        config.validate()?;
        let clock = SimClock::new();
        let cost = CostModel::paper_default();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), cost, failures.clone());
        let nodes: Vec<NodeId> = (0..config.nodes as u32).map(NodeId::new).collect();
        let membership = ClusterMembership::new(nodes.clone(), failures.clone());
        let groups = GroupTable::partition(&nodes, config.group_size)?;
        let election = LeaderElection::new(
            membership.clone(),
            clock.clone(),
            SimDuration::from_millis(50),
        );
        let rng = DetRng::new(config.seed);

        let mut managers = HashMap::new();
        let mut servers = Vec::new();
        for &node in &nodes {
            let manager = Arc::new(NodeManager::new(node, config.node.slab_size, clock.clone(), cost));
            for local in 0..config.servers_per_node as u32 {
                let server = ServerId::new(node, local);
                manager.register_server(server, config.server.memory, config.server.donation);
                servers.push(server);
            }
            managers.insert(node, manager);
        }

        let remote = Arc::new(RemoteStore::new(
            fabric.clone(),
            membership.clone(),
            config.node.recv_pool,
        )?);
        let placer = Placer::new(config.placement, membership.clone(), rng.fork("placement"));
        let replicator = Replicator::new(Arc::clone(&remote), placer, config.replication);
        let disk = DiskTier::new(clock.clone(), cost);
        let nvm = DiskTier::with_device_labeled(clock.clone(), cost.nvm, "nvm");
        let codec = PageCodec::new(config.compression);

        let maps = servers
            .iter()
            .map(|&s| (s, MemoryMap::new()))
            .collect();

        Ok(DisaggregatedMemory {
            config,
            clock,
            cost,
            failures,
            fabric,
            membership,
            groups: Mutex::new(groups),
            election,
            managers,
            remote,
            replicator,
            disk,
            nvm,
            nvm_used: Mutex::new(HashMap::new()),
            codec,
            compress_memo: Mutex::new(CompressMemo::with_default_capacity()),
            maps: Mutex::new(maps),
            servers,
            metrics: MetricsRegistry::new(),
        })
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The failure injector (schedule crashes and link failures here).
    pub fn failures(&self) -> &FailureInjector {
        &self.failures
    }

    /// All virtual servers, in configuration order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The cluster membership view.
    pub fn membership(&self) -> &ClusterMembership {
        &self.membership
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The underlying RDMA fabric (for advanced wiring, e.g. batch senders).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The node manager of `node`.
    ///
    /// # Panics
    ///
    /// Panics for nodes outside the configured cluster.
    pub fn node_manager(&self, node: NodeId) -> &Arc<NodeManager> {
        self.managers
            .get(&node)
            .expect("node is part of the configured cluster")
    }

    /// The remote memory store.
    pub fn remote_store(&self) -> &Arc<RemoteStore> {
        &self.remote
    }

    /// The disk tier.
    pub fn disk_tier(&self) -> &DiskTier {
        &self.disk
    }

    /// The NVM tier (empty unless `NodeConfig::nvm_pool` is nonzero).
    pub fn nvm_tier(&self) -> &DiskTier {
        &self.nvm
    }

    /// NVM bytes in use on `node`.
    pub fn nvm_used(&self, node: NodeId) -> ByteSize {
        ByteSize::new(self.nvm_used.lock().get(&node).copied().unwrap_or(0))
    }

    /// The leader of `node`'s sharing group (§IV-C election).
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::NoLeader`] when the whole group is down.
    pub fn group_leader(&self, node: NodeId) -> DmemResult<NodeId> {
        let groups = self.groups.lock();
        let gid = groups.group_of(node)?;
        self.election.leader(&groups, gid)
    }

    /// The alive group peers of `node` — the candidate hosts for its
    /// remote entries (group-based sharing, §IV-C).
    pub fn group_peers(&self, node: NodeId) -> DmemResult<Vec<NodeId>> {
        let groups = self.groups.lock();
        Ok(groups
            .peers(node)?
            .into_iter()
            .filter(|&n| self.membership.is_alive(n))
            .collect())
    }

    fn tier_name(location: &EntryLocation) -> &'static str {
        match location {
            EntryLocation::NodeShared { .. } => "shared",
            EntryLocation::Remote { .. } => "remote",
            EntryLocation::Nvm => "nvm",
            EntryLocation::Disk => "disk",
        }
    }

    fn memo_key(entry: EntryId) -> (u64, u64) {
        let server = entry.owner();
        let server_key =
            (u64::from(server.node().index()) << 32) | u64::from(server.local_index());
        (server_key, entry.key())
    }

    fn prepare(&self, entry: EntryId, data: &[u8]) -> (Vec<u8>, EntryRecord) {
        if data.len() <= PAGE_SIZE {
            let page = self
                .compress_memo
                .lock()
                .get_or_compress(Self::memo_key(entry), &self.codec, data);
            if page.is_compressed {
                let span = self.clock.tracer().span("compress", "compress");
                span.tag("bytes", page.original_len);
                self.clock.advance(self.cost.compress_page);
            }
            let record = EntryRecord {
                location: EntryLocation::Disk, // placeholder, set by caller
                len: page.original_len as u64,
                stored_len: page.data.len() as u64,
                class: if page.is_compressed {
                    Some(page.class)
                } else {
                    None
                },
                version: 0,
                checksum: page.checksum,
            };
            (page.data, record)
        } else {
            let record = EntryRecord {
                location: EntryLocation::Disk,
                len: data.len() as u64,
                stored_len: data.len() as u64,
                class: None,
                version: 0,
                checksum: checksum(data),
            };
            (data.to_vec(), record)
        }
    }

    fn recover(&self, record: &EntryRecord, stored: Vec<u8>) -> DmemResult<Vec<u8>> {
        if let Some(class) = record.class {
            let span = self.clock.tracer().span("compress", "decompress");
            span.tag("bytes", record.len);
            self.clock.advance(self.cost.decompress_page);
            drop(span);
            let page = CompressedPage {
                data: stored,
                class,
                original_len: record.len as usize,
                is_compressed: true,
                checksum: record.checksum,
            };
            self.compress_memo
                .lock()
                .get_or_decompress(&self.codec, &page)
        } else {
            // Raw entries verify the same way via the memo: a previously
            // verified identical blob is confirmed with a vectorized
            // `memcmp` instead of re-walking the byte-serial FNV — this
            // is the hot path for incompressible pages (random payloads
            // of the RDD and chaos workloads).
            let page = CompressedPage {
                data: stored,
                class: SizeClass::C4K,
                original_len: record.len as usize,
                is_compressed: false,
                checksum: record.checksum,
            };
            self.compress_memo
                .lock()
                .get_or_decompress(&self.codec, &page)
        }
    }

    fn drop_location(&self, entry: EntryId, record: &EntryRecord) {
        match &record.location {
            EntryLocation::NodeShared { .. } => {
                if let Some(m) = self.managers.get(&entry.owner().node()) {
                    let _ = m.delete(entry);
                }
            }
            EntryLocation::Remote { replicas } => {
                let set = dmem_cluster::ReplicaSet {
                    nodes: replicas.clone(),
                };
                self.replicator
                    .delete_replicated(entry.owner().node(), entry, &set);
            }
            EntryLocation::Nvm => {
                let node = entry.owner().node();
                if let Ok(freed) = self.nvm.delete(node, entry) {
                    let mut used = self.nvm_used.lock();
                    if let Some(u) = used.get_mut(&node) {
                        *u = u.saturating_sub(freed as u64);
                    }
                }
            }
            EntryLocation::Disk => {
                let _ = self.disk.delete(entry.owner().node(), entry);
            }
        }
    }

    /// Stores `data` under `(server, key)`, tiering automatically.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::ServerUnavailable`] if the owner is down, and
    /// any error of the last tier tried.
    pub fn put(&self, server: ServerId, key: u64, data: Vec<u8>) -> DmemResult<()> {
        self.put_pref(server, key, data, TierPreference::Auto)
    }

    /// Stores `data` with an explicit tier preference (used by the swap
    /// backends to realize the Fig. 8 distribution-ratio sweep).
    ///
    /// # Errors
    ///
    /// See [`DisaggregatedMemory::put`]; non-`Auto` preferences fail
    /// without falling through to another tier, except `NodeShared`/
    /// `Remote` which spill to disk as the paper's last resort.
    pub fn put_pref(
        &self,
        server: ServerId,
        key: u64,
        data: Vec<u8>,
        pref: TierPreference,
    ) -> DmemResult<()> {
        if !self.failures.is_server_up(server) {
            return Err(DmemError::ServerUnavailable(server));
        }
        let span = self.clock.tracer().span("core", "put");
        let t0 = self.clock.now();
        let entry = EntryId::new(server, key);
        // Replace semantics: release the previous incarnation.
        if let Some(old) = self.maps.lock().get_mut(&server).and_then(|m| m.remove(key)) {
            self.drop_location(entry, &old);
        }
        let (stored, mut record) = self.prepare(entry, &data);
        let node = server.node();

        let location = match pref {
            TierPreference::NodeShared | TierPreference::Auto => {
                match self.try_shared(node, entry, &stored, &record) {
                    Ok(loc) => Some(loc),
                    Err(_) if pref == TierPreference::Auto => None,
                    Err(e) => {
                        // NodeShared preference spills to disk (paper: swap
                        // to hard drive when no disaggregated memory). Both
                        // a full pool and an entry too large for the pool's
                        // page-sized blocks take that path.
                        if matches!(
                            e,
                            DmemError::CapacityExhausted { .. } | DmemError::Unsupported { .. }
                        ) {
                            self.disk.store(node, entry, stored.clone());
                            self.metrics.counter("core.put.disk").inc();
                            Some(EntryLocation::Disk)
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
            _ => None,
        };
        let location = match location {
            Some(loc) => loc,
            None => match pref {
                TierPreference::Disk => {
                    self.disk.store(node, entry, stored.clone());
                    self.metrics.counter("core.put.disk").inc();
                    EntryLocation::Disk
                }
                TierPreference::Nvm => match self.try_nvm(node, entry, &stored) {
                    Ok(loc) => loc,
                    Err(_) => {
                        self.disk.store(node, entry, stored.clone());
                        self.metrics.counter("core.put.disk").inc();
                        EntryLocation::Disk
                    }
                },
                _ => {
                    // Auto continues down the hierarchy: local NVM (when
                    // configured) absorbs the overflow before the network,
                    // then remote memory in the owner's group, then disk.
                    let nvm = if pref == TierPreference::Auto {
                        self.try_nvm(node, entry, &stored).ok()
                    } else {
                        None
                    };
                    match nvm {
                        Some(loc) => loc,
                        None => match self.try_remote(node, entry, &stored) {
                            Ok(loc) => loc,
                            Err(_) => {
                                self.disk.store(node, entry, stored.clone());
                                self.metrics.counter("core.put.disk").inc();
                                EntryLocation::Disk
                            }
                        },
                    }
                }
            },
        };
        span.tag("tier", Self::tier_name(&location));
        self.metrics
            .histogram("core.put.ns")
            .record((self.clock.now() - t0).as_nanos());
        record.location = location;
        self.maps
            .lock()
            .get_mut(&server)
            .expect("server registered at construction")
            .upsert(key, record);
        Ok(())
    }

    fn try_shared(
        &self,
        node: NodeId,
        entry: EntryId,
        stored: &[u8],
        record: &EntryRecord,
    ) -> DmemResult<EntryLocation> {
        if stored.len() > PAGE_SIZE {
            return Err(DmemError::Unsupported {
                op: "multi-page entries in the node shared pool".into(),
            });
        }
        let class = record
            .class
            .or_else(|| dmem_types::SizeClass::fitting(stored.len()))
            .ok_or(DmemError::Unsupported {
                op: "oversized page".into(),
            })?;
        let manager = self
            .managers
            .get(&node)
            .ok_or(DmemError::NodeUnavailable(node))?;
        let block = manager.put(entry, stored.to_vec(), class)?;
        self.metrics.counter("core.put.shared").inc();
        Ok(EntryLocation::NodeShared {
            slab: block.slab,
            offset: block.offset,
        })
    }

    fn try_nvm(&self, node: NodeId, entry: EntryId, stored: &[u8]) -> DmemResult<EntryLocation> {
        let capacity = self.config.node.nvm_pool.as_u64();
        if capacity == 0 {
            return Err(DmemError::Unsupported {
                op: "nvm tier not configured".into(),
            });
        }
        {
            let mut used = self.nvm_used.lock();
            let u = used.entry(node).or_insert(0);
            if *u + stored.len() as u64 > capacity {
                return Err(DmemError::CapacityExhausted {
                    pool: format!("nvm on {node}"),
                });
            }
            *u += stored.len() as u64;
        }
        self.nvm.store(node, entry, stored.to_vec());
        self.metrics.counter("core.put.nvm").inc();
        Ok(EntryLocation::Nvm)
    }

    fn try_remote(&self, node: NodeId, entry: EntryId, stored: &[u8]) -> DmemResult<EntryLocation> {
        let peers = self.group_peers(node)?;
        if let Some(m) = self.managers.get(&node) {
            m.record_remote_escalation();
        }
        let set = self
            .replicator
            .store_replicated(node, entry, stored, Some(&peers))?;
        self.metrics.counter("core.put.remote").inc();
        Ok(EntryLocation::Remote {
            replicas: set.nodes,
        })
    }

    /// Reads the entry back, wherever it lives, verifying integrity.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] for unknown keys,
    /// [`DmemError::Corrupt`] on checksum mismatch, and path errors when
    /// every replica of a remote entry is unreachable.
    pub fn get(&self, server: ServerId, key: u64) -> DmemResult<Vec<u8>> {
        let entry = EntryId::new(server, key);
        let record = self
            .maps
            .lock()
            .get(&server)
            .and_then(|m| m.get(key).cloned())
            .ok_or(DmemError::EntryNotFound(entry))?;
        let span = self.clock.tracer().span("core", "get");
        span.tag("tier", Self::tier_name(&record.location));
        let t0 = self.clock.now();
        let stored = match &record.location {
            EntryLocation::NodeShared { .. } => {
                let manager = self
                    .managers
                    .get(&server.node())
                    .ok_or(DmemError::NodeUnavailable(server.node()))?;
                manager.get(entry)?
            }
            EntryLocation::Remote { replicas } => {
                let set = dmem_cluster::ReplicaSet {
                    nodes: replicas.clone(),
                };
                self.replicator
                    .load_replicated(server.node(), entry, &set)?
            }
            EntryLocation::Nvm => self.nvm.load(server.node(), entry)?,
            EntryLocation::Disk => self.disk.load(server.node(), entry)?,
        };
        let out = self.recover(&record, stored);
        self.metrics
            .histogram("core.get.ns")
            .record((self.clock.now() - t0).as_nanos());
        out
    }

    /// Reads several entries, batching remote and disk fetches per
    /// location (this is the data path behind proactive batch swap-in).
    ///
    /// Results are returned in `keys` order.
    ///
    /// # Errors
    ///
    /// Fails on the first unreadable entry, with no partial results.
    pub fn get_batch(&self, server: ServerId, keys: &[u64]) -> DmemResult<Vec<Vec<u8>>> {
        let span = self.clock.tracer().span("core", "get_batch");
        span.tag("entries", keys.len());
        // Group keys by (tier, primary host) while remembering positions.
        let mut records = Vec::with_capacity(keys.len());
        {
            let maps = self.maps.lock();
            let map = maps
                .get(&server)
                .ok_or(DmemError::ServerUnavailable(server))?;
            for &key in keys {
                let record = map
                    .get(key)
                    .cloned()
                    .ok_or(DmemError::EntryNotFound(EntryId::new(server, key)))?;
                records.push(record);
            }
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; keys.len()];

        // Remote batches by primary replica. BTreeMap so hosts are read
        // in node order: virtual totals are order-independent, but span
        // boundaries (and thus trace exports) must not vary run-to-run.
        let mut by_primary: std::collections::BTreeMap<NodeId, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut disk_idx: Vec<usize> = Vec::new();
        for (i, record) in records.iter().enumerate() {
            match &record.location {
                EntryLocation::Remote { replicas } if !replicas.is_empty() => {
                    by_primary.entry(replicas[0]).or_default().push(i);
                }
                EntryLocation::Disk => disk_idx.push(i),
                _ => {
                    let data = self.get(server, keys[i])?;
                    out[i] = Some(data);
                }
            }
        }
        for (primary, indices) in by_primary {
            let ids: Vec<EntryId> = indices
                .iter()
                .map(|&i| EntryId::new(server, keys[i]))
                .collect();
            match self.remote.load_batch(server.node(), primary, &ids) {
                Ok(blobs) => {
                    for (slot, blob) in indices.iter().zip(blobs) {
                        out[*slot] = Some(self.recover(&records[*slot], blob)?);
                    }
                }
                Err(_) => {
                    // Primary unreachable: fall back to per-entry failover.
                    for &i in &indices {
                        out[i] = Some(self.get(server, keys[i])?);
                    }
                }
            }
        }
        if !disk_idx.is_empty() {
            let ids: Vec<EntryId> = disk_idx
                .iter()
                .map(|&i| EntryId::new(server, keys[i]))
                .collect();
            let blobs = self.disk.load_batch(server.node(), &ids)?;
            for (slot, blob) in disk_idx.iter().zip(blobs) {
                out[*slot] = Some(self.recover(&records[*slot], blob)?);
            }
        }
        Ok(out.into_iter().map(|o| o.expect("all slots filled")).collect())
    }

    /// Stores a batch of entries with one remote replica-set per batch and
    /// windowed transfers (FastSwap's batched swap-out, §IV-H). Entries
    /// that fit the shared pool go there first under `Auto`.
    ///
    /// # Errors
    ///
    /// Fails if the final disk fallback fails (it does not), or propagates
    /// server-unavailability.
    pub fn put_batch(
        &self,
        server: ServerId,
        batch: Vec<(u64, Vec<u8>)>,
        pref: TierPreference,
    ) -> DmemResult<()> {
        if !self.failures.is_server_up(server) {
            return Err(DmemError::ServerUnavailable(server));
        }
        let span = self.clock.tracer().span("core", "put_batch");
        span.tag("entries", batch.len());
        let node = server.node();
        let mut remote_items: Vec<(u64, Vec<u8>, EntryRecord)> = Vec::new();
        for (key, data) in batch {
            let entry = EntryId::new(server, key);
            if let Some(old) = self.maps.lock().get_mut(&server).and_then(|m| m.remove(key)) {
                self.drop_location(entry, &old);
            }
            let (stored, mut record) = self.prepare(entry, &data);
            match pref {
                TierPreference::Auto | TierPreference::NodeShared => {
                    match self.try_shared(node, entry, &stored, &record) {
                        Ok(loc) => {
                            record.location = loc;
                            self.maps
                                .lock()
                                .get_mut(&server)
                                .expect("registered")
                                .upsert(key, record);
                        }
                        Err(_) if pref == TierPreference::Auto => {
                            // Local NVM absorbs Auto overflow before the
                            // network (no batching needed: it is local).
                            if let Ok(loc) = self.try_nvm(node, entry, &stored) {
                                record.location = loc;
                                self.maps
                                    .lock()
                                    .get_mut(&server)
                                    .expect("registered")
                                    .upsert(key, record);
                            } else {
                                remote_items.push((key, stored, record));
                            }
                        }
                        Err(_) => {
                            record.location = EntryLocation::Disk;
                            self.disk.store(node, entry, stored);
                            self.maps
                                .lock()
                                .get_mut(&server)
                                .expect("registered")
                                .upsert(key, record);
                        }
                    }
                }
                TierPreference::Remote => remote_items.push((key, stored, record)),
                TierPreference::Nvm => {
                    record.location = match self.try_nvm(node, entry, &stored) {
                        Ok(loc) => loc,
                        Err(_) => {
                            self.disk.store(node, entry, stored.clone());
                            EntryLocation::Disk
                        }
                    };
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
                TierPreference::Disk => {
                    record.location = EntryLocation::Disk;
                    self.disk.store(node, entry, stored);
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
            }
        }
        if remote_items.is_empty() {
            return Ok(());
        }
        // One replica set for the whole window; one batched RDMA write per
        // replica. Falls back to disk when the group cannot host it.
        let peers = self.group_peers(node)?;
        if let Some(m) = self.managers.get(&node) {
            m.record_remote_escalation();
        }
        let id_batch: Vec<(EntryId, Vec<u8>)> = remote_items
            .iter()
            .map(|(k, d, _)| (EntryId::new(server, *k), d.clone()))
            .collect();
        let picked = self
            .replicator
            .store_batch_replicated(node, &id_batch, &peers)
            .ok();
        match picked {
            Some(set) => {
                for (key, _, mut record) in remote_items {
                    record.location = EntryLocation::Remote {
                        replicas: set.nodes.clone(),
                    };
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
                self.metrics
                    .counter("core.put.remote_batched")
                    .add(set.nodes.len() as u64);
            }
            None => {
                let items: Vec<(EntryId, Vec<u8>)> = remote_items
                    .iter()
                    .map(|(k, d, _)| (EntryId::new(server, *k), d.clone()))
                    .collect();
                self.disk.store_batch(node, items);
                for (key, _, mut record) in remote_items {
                    record.location = EntryLocation::Disk;
                    self.maps
                        .lock()
                        .get_mut(&server)
                        .expect("registered")
                        .upsert(key, record);
                }
            }
        }
        Ok(())
    }

    /// Deletes `(server, key)` from its current tier and the memory map.
    ///
    /// # Errors
    ///
    /// Returns [`DmemError::EntryNotFound`] for unknown keys.
    pub fn delete(&self, server: ServerId, key: u64) -> DmemResult<()> {
        let entry = EntryId::new(server, key);
        let record = self
            .maps
            .lock()
            .get_mut(&server)
            .and_then(|m| m.remove(key))
            .ok_or(DmemError::EntryNotFound(entry))?;
        self.drop_location(entry, &record);
        Ok(())
    }

    /// The memory-map record of `(server, key)`, if tracked.
    pub fn record(&self, server: ServerId, key: u64) -> Option<EntryRecord> {
        self.maps.lock().get(&server).and_then(|m| m.get(key).cloned())
    }

    /// The replication manager, exposed so invariant checkers can probe
    /// live replica degree without re-deriving cluster state.
    pub fn replicator(&self) -> &Replicator {
        &self.replicator
    }

    /// A point-in-time copy of every tracked entry across all memory
    /// maps, as `(owner, key, record)` triples sorted by owner and key.
    ///
    /// This is the invariant-probe API: external checkers (the chaos
    /// harness, debugging tools) sweep the whole map without holding the
    /// map lock across their own per-entry work.
    pub fn entries_snapshot(&self) -> Vec<(ServerId, u64, EntryRecord)> {
        let maps = self.maps.lock();
        let mut out: Vec<(ServerId, u64, EntryRecord)> = maps
            .iter()
            .flat_map(|(server, map)| {
                map.iter().map(move |(key, record)| (*server, key, record.clone()))
            })
            .collect();
        out.sort_by_key(|(server, key, _)| (*server, *key));
        out
    }

    /// Runs one eviction scan (§IV-F) and applies the resulting moves to
    /// every affected memory map.
    ///
    /// # Errors
    ///
    /// Propagates evictor-level failures.
    pub fn run_eviction(&self, evictor: &RemoteSlabEvictor, placer: &Placer) -> DmemResult<EvictionOutcome> {
        let span = self.clock.tracer().span("cluster", "evict_scan");
        let outcome = evictor.scan(&self.remote, placer)?;
        span.tag("moves", outcome.moves.len());
        let mut maps = self.maps.lock();
        for (entry, from, to) in &outcome.moves {
            if let Some(map) = maps.get_mut(&entry.owner()) {
                map.relocate_replica(entry.key(), *from, *to);
            }
        }
        Ok(outcome)
    }

    /// Repairs every degraded remote replica set (after node failures),
    /// returning how many entries were re-replicated.
    pub fn repair_replicas(&self) -> usize {
        let span = self.clock.tracer().span("cluster", "repair");
        let mut snapshot: Vec<(ServerId, u64, Vec<NodeId>)> = {
            let maps = self.maps.lock();
            maps.iter()
                .flat_map(|(server, map)| {
                    map.iter().filter_map(move |(key, record)| {
                        match &record.location {
                            EntryLocation::Remote { replicas } => {
                                Some((*server, key, replicas.clone()))
                            }
                            _ => None,
                        }
                    })
                })
                .collect()
        };
        // Repair in (server, key) order: the snapshot above walks two
        // `HashMap`s, and repair order feeds the placement RNG and every
        // host's allocator, so map order would make all downstream
        // placement — and the per-seed metrics digest — vary run-to-run.
        snapshot.sort_unstable_by_key(|(server, key, _)| (*server, *key));
        let mut repaired = 0;
        for (server, key, replicas) in snapshot {
            let entry = EntryId::new(server, key);
            let set = dmem_cluster::ReplicaSet { nodes: replicas };
            if self.replicator.live_degree(entry, &set) < self.replicator.factor().get() {
                if let Ok(new_set) = self.replicator.re_replicate(server.node(), entry, &set) {
                    let mut maps = self.maps.lock();
                    if let Some(map) = maps.get_mut(&server) {
                        if let Some(record) = map.get(key).cloned() {
                            let mut record = record;
                            record.location = EntryLocation::Remote {
                                replicas: new_set.nodes,
                            };
                            map.upsert(key, record);
                            repaired += 1;
                        }
                    }
                }
            }
        }
        span.tag("repaired", repaired);
        repaired
    }

    /// Handles a crashed-and-restarted node: hosted remote entries are
    /// lost, the receive pool is re-registered, local servers' maps and
    /// shared-pool contents are purged (same failure semantics as losing
    /// OS swap, §IV-D). Returns `(lost_remote_entries, purged_local_entries)`.
    ///
    /// # Errors
    ///
    /// Propagates region re-registration failures if the node is still down.
    pub fn handle_node_restart(&self, node: NodeId) -> DmemResult<(usize, usize)> {
        let lost_remote = self.remote.reset_node(node)?;
        let mut purged = 0;
        let mut maps = self.maps.lock();
        for (&server, map) in maps.iter_mut() {
            if server.node() == node {
                purged += map.len();
                *map = MemoryMap::new();
                if let Some(m) = self.managers.get(&node) {
                    m.deregister_server(server);
                    m.register_server(server, self.config.server.memory, self.config.server.donation);
                }
            }
        }
        Ok((lost_remote, purged))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DmStats {
        let maps = self.maps.lock();
        let mut stats = DmStats::default();
        for map in maps.values() {
            let (s, n, r, d) = map.tier_census();
            stats.entries += map.len();
            stats.shared += s;
            stats.nvm += n;
            stats.remote += r;
            stats.disk += d;
        }
        for manager in self.managers.values() {
            stats.shared_capacity += manager.capacity();
        }
        for &node in self.membership.nodes() {
            stats.remote_free += self.membership.free_of(node);
        }
        stats
    }
}

impl fmt::Debug for DisaggregatedMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DisaggregatedMemory")
            .field("nodes", &self.config.nodes)
            .field("servers", &self.servers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::FailureEvent;
    use dmem_types::{CompressionMode, PlacementStrategy};

    fn system() -> DisaggregatedMemory {
        DisaggregatedMemory::new(ClusterConfig::small()).unwrap()
    }

    #[test]
    fn config_is_validated() {
        let mut bad = ClusterConfig::small();
        bad.nodes = 0;
        assert!(DisaggregatedMemory::new(bad).is_err());
    }

    #[test]
    fn put_lands_in_shared_pool_first() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![7u8; 4096]).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(record.location.is_node_local());
        assert_eq!(dm.get(server, 1).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn compression_is_transparent() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![0u8; 4096]).unwrap(); // highly compressible
        let record = dm.record(server, 1).unwrap();
        assert!(record.class.is_some());
        assert!(record.stored_len < 4096);
        assert!(record.compression_ratio() > 2.0);
        assert_eq!(dm.get(server, 1).unwrap(), vec![0u8; 4096]);
    }

    #[test]
    fn overflow_tiers_to_remote_then_disk() {
        let mut config = ClusterConfig::small();
        // Tiny donations so the shared pool fills immediately, and no
        // compression so each page really occupies 4 KiB remotely.
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        config.node.recv_pool = ByteSize::from_kib(64);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        // Shared pool has zero capacity: entries go remote.
        dm.put(server, 1, vec![1u8; 4096]).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(record.location.is_remote(), "got {:?}", record.location);
        assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 4096]);

        // Exhaust remote pools too: spills to disk. Incompressible pages
        // of 4 KiB × enough keys to overrun 3 × 64 KiB of replicas.
        for k in 2..60 {
            dm.put(server, k, vec![k as u8; 4096]).unwrap();
        }
        let stats = dm.stats();
        assert!(stats.disk > 0, "disk tier must absorb the overflow");
        // Everything still readable.
        for k in 2..60 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 4096]);
        }
    }

    #[test]
    fn explicit_tier_preferences() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 512], TierPreference::Disk)
            .unwrap();
        assert!(dm.record(server, 1).unwrap().location.is_disk());
        dm.put_pref(server, 2, vec![2u8; 512], TierPreference::Remote)
            .unwrap();
        assert!(dm.record(server, 2).unwrap().location.is_remote());
        dm.put_pref(server, 3, vec![3u8; 512], TierPreference::NodeShared)
            .unwrap();
        assert!(dm.record(server, 3).unwrap().location.is_node_local());
        for k in 1..=3 {
            assert_eq!(dm.get(server, k).unwrap(), vec![k as u8; 512]);
        }
    }

    #[test]
    fn replace_updates_version_and_frees_old_tier() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 256], TierPreference::Disk)
            .unwrap();
        dm.put_pref(server, 1, vec![2u8; 256], TierPreference::Remote)
            .unwrap();
        let record = dm.record(server, 1).unwrap();
        assert_eq!(record.version, 1, "fresh key after remove: version restarts");
        assert!(record.location.is_remote());
        assert!(!dm.disk_tier().contains(server.node(), EntryId::new(server, 1)));
        assert_eq!(dm.get(server, 1).unwrap(), vec![2u8; 256]);
    }

    #[test]
    fn delete_removes_everywhere() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![1u8; 128]).unwrap();
        dm.delete(server, 1).unwrap();
        assert!(dm.record(server, 1).is_none());
        assert!(matches!(
            dm.get(server, 1),
            Err(DmemError::EntryNotFound(_))
        ));
        assert!(matches!(dm.delete(server, 1), Err(DmemError::EntryNotFound(_))));
    }

    #[test]
    fn remote_read_survives_replica_failures() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![9u8; 2048]).unwrap();
        let record = dm.record(server, 1).unwrap();
        let replicas = match &record.location {
            EntryLocation::Remote { replicas } => replicas.clone(),
            other => panic!("expected remote, got {other:?}"),
        };
        assert_eq!(replicas.len(), 3);
        // Two of three replicas die; read still succeeds.
        dm.failures()
            .inject_now(FailureEvent::NodeDown(replicas[0]));
        dm.failures()
            .inject_now(FailureEvent::NodeDown(replicas[1]));
        assert_eq!(dm.get(server, 1).unwrap(), vec![9u8; 2048]);
    }

    #[test]
    fn repair_restores_replication_degree() {
        let mut config = ClusterConfig::small();
        config.nodes = 6;
        config.group_size = 6;
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put(server, 1, vec![3u8; 1024]).unwrap();
        let replicas = match dm.record(server, 1).unwrap().location {
            EntryLocation::Remote { replicas } => replicas,
            other => panic!("expected remote, got {other:?}"),
        };
        let victim = replicas[0];
        dm.failures().inject_now(FailureEvent::NodeDown(victim));
        dm.failures().inject_now(FailureEvent::NodeUp(victim));
        dm.handle_node_restart(victim).unwrap();

        let repaired = dm.repair_replicas();
        assert_eq!(repaired, 1);
        let new_replicas = match dm.record(server, 1).unwrap().location {
            EntryLocation::Remote { replicas } => replicas,
            other => panic!("expected remote, got {other:?}"),
        };
        assert_eq!(new_replicas.len(), 3);
        assert_eq!(dm.get(server, 1).unwrap(), vec![3u8; 1024]);
    }

    #[test]
    fn node_restart_loses_local_maps() {
        let dm = system();
        let server = dm.servers()[0]; // on node 0
        dm.put(server, 1, vec![1u8; 64]).unwrap();
        let (_, purged) = dm.handle_node_restart(server.node()).unwrap();
        assert_eq!(purged, 1);
        assert!(dm.record(server, 1).is_none(), "map gone with the node");
    }

    #[test]
    fn batch_roundtrip_and_batching_speedup() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        let batch: Vec<(u64, Vec<u8>)> =
            (0..16).map(|k| (k, vec![k as u8; 4096])).collect();
        let t0 = dm.clock().now();
        dm.put_batch(server, batch, TierPreference::Remote).unwrap();
        let batched_cost = dm.clock().now() - t0;

        let keys: Vec<u64> = (0..16).collect();
        let loaded = dm.get_batch(server, &keys).unwrap();
        for (k, data) in loaded.iter().enumerate() {
            assert_eq!(data, &vec![k as u8; 4096]);
        }

        // Singleton puts of the same volume cost strictly more.
        let t1 = dm.clock().now();
        for k in 16..32u64 {
            dm.put_pref(server, k, vec![k as u8; 4096], TierPreference::Remote)
                .unwrap();
        }
        let single_cost = dm.clock().now() - t1;
        assert!(
            batched_cost < single_cost,
            "batched {batched_cost} >= single {single_cost}"
        );
    }

    #[test]
    fn large_entries_bypass_shared_pool() {
        let dm = system();
        let server = dm.servers()[0];
        let big = vec![5u8; 64 * 1024];
        dm.put(server, 1, big.clone()).unwrap();
        let record = dm.record(server, 1).unwrap();
        assert!(!record.location.is_node_local());
        assert_eq!(dm.get(server, 1).unwrap(), big);
    }

    #[test]
    fn group_leadership_is_exposed() {
        let dm = system();
        let leader = dm.group_leader(NodeId::new(0)).unwrap();
        assert!(dm.membership().is_alive(leader));
        let peers = dm.group_peers(NodeId::new(0)).unwrap();
        assert!(!peers.contains(&NodeId::new(0)));
    }

    #[test]
    fn dead_server_cannot_put() {
        let dm = system();
        let server = dm.servers()[0];
        dm.failures().inject_now(FailureEvent::ServerDown(server));
        assert!(matches!(
            dm.put(server, 1, vec![1]),
            Err(DmemError::ServerUnavailable(_))
        ));
    }

    #[test]
    fn stats_track_census() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 64], TierPreference::NodeShared)
            .unwrap();
        dm.put_pref(server, 2, vec![2u8; 64], TierPreference::Remote)
            .unwrap();
        dm.put_pref(server, 3, vec![3u8; 64], TierPreference::Disk)
            .unwrap();
        let stats = dm.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!((stats.shared, stats.remote, stats.disk), (1, 1, 1));
        assert!(stats.shared_capacity > ByteSize::ZERO);
        assert_eq!(dm.metrics().counter("core.put.shared").get(), 1);
    }

    #[test]
    fn placement_strategies_all_construct() {
        for placement in [
            PlacementStrategy::Random,
            PlacementStrategy::RoundRobin,
            PlacementStrategy::WeightedRoundRobin,
            PlacementStrategy::PowerOfTwoChoices,
        ] {
            let mut config = ClusterConfig::small();
            config.placement = placement;
            let dm = DisaggregatedMemory::new(config).unwrap();
            let server = dm.servers()[0];
            dm.put_pref(server, 1, vec![1u8; 64], TierPreference::Remote)
                .unwrap();
            assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 64]);
        }
    }

    #[test]
    fn nvm_tier_disabled_by_default() {
        let dm = system();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 512], TierPreference::Nvm)
            .unwrap();
        // Without an NVM pool the preference spills to disk.
        assert!(dm.record(server, 1).unwrap().location.is_disk());
    }

    #[test]
    fn nvm_tier_roundtrip_and_capacity() {
        let mut config = ClusterConfig::small();
        config.node.nvm_pool = ByteSize::from_kib(8);
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 4096], TierPreference::Nvm)
            .unwrap();
        dm.put_pref(server, 2, vec![2u8; 4096], TierPreference::Nvm)
            .unwrap();
        assert!(dm.record(server, 1).unwrap().location.is_nvm());
        assert_eq!(dm.nvm_used(server.node()), ByteSize::from_kib(8));
        // Pool full: the third entry spills to disk.
        dm.put_pref(server, 3, vec![3u8; 4096], TierPreference::Nvm)
            .unwrap();
        assert!(dm.record(server, 3).unwrap().location.is_disk());
        // Reads are tier-transparent; deleting releases capacity.
        assert_eq!(dm.get(server, 1).unwrap(), vec![1u8; 4096]);
        dm.delete(server, 1).unwrap();
        assert_eq!(dm.nvm_used(server.node()), ByteSize::from_kib(4));
        let stats = dm.stats();
        assert_eq!(stats.nvm, 1);
        assert_eq!(stats.disk, 1);
    }

    #[test]
    fn auto_prefers_nvm_over_remote_when_configured() {
        let mut config = ClusterConfig::small();
        config.server.donation = dmem_types::DonationPolicy::fixed(0.0); // no shared pool
        config.node.nvm_pool = ByteSize::from_mib(1);
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        let t0 = dm.clock().now();
        dm.put(server, 1, vec![7u8; 4096]).unwrap();
        let put_cost = dm.clock().now() - t0;
        assert!(dm.record(server, 1).unwrap().location.is_nvm());
        // NVM absorbs the overflow more cheaply than a triple-replicated
        // remote write would.
        assert!(put_cost.as_micros_f64() < 15.0, "nvm put cost {put_cost}");
        assert_eq!(dm.get(server, 1).unwrap(), vec![7u8; 4096]);
    }

    #[test]
    fn corruption_is_detected() {
        // White-box: store raw (uncompressed) on disk, then flip bytes by
        // re-storing via the disk tier directly.
        let mut config = ClusterConfig::small();
        config.compression = CompressionMode::Off;
        let dm = DisaggregatedMemory::new(config).unwrap();
        let server = dm.servers()[0];
        dm.put_pref(server, 1, vec![1u8; 64], TierPreference::Disk)
            .unwrap();
        dm.disk_tier()
            .store(server.node(), EntryId::new(server, 1), vec![2u8; 64]);
        assert!(matches!(dm.get(server, 1), Err(DmemError::Corrupt(_))));
    }
}
