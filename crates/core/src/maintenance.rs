//! Background maintenance: the periodic coordination work the paper's
//! architecture assumes is "monitored" and handled "preemptively"
//! (§IV-F) — run here as discrete events on the virtual clock.
//!
//! A [`Maintenance`] driver owns a schedule of recurring tasks:
//!
//! * **repair scans** re-replicate degraded remote entries (§IV-D's
//!   triple modularity is an invariant, not a one-shot property);
//! * **eviction scans** run the remote slab eviction handler so hosts
//!   whose pools run hot get their DRAM back (§IV-F);
//! * **advertisement refreshes** re-publish free-memory gauges so
//!   placement and election act on fresh data.
//!
//! Drive it with [`Maintenance::run_until`]: the driver advances the
//! shared clock to each due task, performs it, and reschedules — exactly
//! like a timer wheel in the real system's node agent.

use crate::system::DisaggregatedMemory;
use dmem_cluster::{Placer, RemoteSlabEvictor};
use dmem_sim::{EventQueue, SimDuration, SimInstant};
use dmem_types::{ByteSize, DmemResult};
use std::sync::Arc;

/// Intervals for the recurring tasks. Zero disables a task.
#[derive(Debug, Clone, Copy)]
pub struct MaintenanceConfig {
    /// How often degraded replica sets are repaired.
    pub repair_interval: SimDuration,
    /// How often the eviction handler scans for pressured hosts.
    pub eviction_interval: SimDuration,
    /// How often free-memory advertisements are refreshed.
    pub advertise_interval: SimDuration,
    /// How often balloon advice (§IV-F policies) is applied.
    pub balloon_interval: SimDuration,
    /// Donation-fraction step applied per balloon adjustment.
    pub balloon_step: f64,
    /// How often the QoS controller ticks. Only scheduled when a QoS
    /// engine is installed on the cluster, so QoS-disabled runs execute
    /// an identical event sequence to pre-QoS builds.
    pub qos_interval: SimDuration,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            repair_interval: SimDuration::from_millis(100),
            eviction_interval: SimDuration::from_millis(50),
            advertise_interval: SimDuration::from_millis(10),
            balloon_interval: SimDuration::from_millis(200),
            balloon_step: 0.05,
            qos_interval: SimDuration::from_millis(200),
        }
    }
}

/// What a maintenance window accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Repair scans run.
    pub repair_scans: u64,
    /// Entries re-replicated.
    pub repaired_entries: u64,
    /// Eviction scans run.
    pub eviction_scans: u64,
    /// Entries migrated by eviction.
    pub evicted_entries: u64,
    /// Capacity handed back to pressured hosts.
    pub reclaimed: ByteSize,
    /// Advertisement refreshes run.
    pub advertise_refreshes: u64,
    /// Balloon adjustments applied (donations shrunk for pressured
    /// servers, §IV-F policy (2)).
    pub balloon_adjustments: u64,
    /// QoS controller ticks run (zero unless a QoS engine is installed).
    pub qos_ticks: u64,
    /// Control actions (donation rebalances) the QoS controller applied.
    pub qos_actions: u64,
    /// Telemetry sampling passes that captured a metric window.
    pub telemetry_windows: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Repair,
    Eviction,
    Advertise,
    Balloon,
    QosTick,
    Telemetry,
}

/// The periodic-maintenance driver. See the module docs.
pub struct Maintenance {
    dm: Arc<DisaggregatedMemory>,
    config: MaintenanceConfig,
    evictor: RemoteSlabEvictor,
    placer: Placer,
    queue: EventQueue<Task>,
}

impl Maintenance {
    /// Creates a driver and schedules the first round of tasks.
    pub fn new(
        dm: Arc<DisaggregatedMemory>,
        config: MaintenanceConfig,
        evictor: RemoteSlabEvictor,
        placer: Placer,
    ) -> Self {
        let mut queue = EventQueue::new();
        let now = dm.clock().now();
        if !config.repair_interval.is_zero() {
            queue.schedule(now + config.repair_interval, Task::Repair);
        }
        if !config.eviction_interval.is_zero() {
            queue.schedule(now + config.eviction_interval, Task::Eviction);
        }
        if !config.advertise_interval.is_zero() {
            queue.schedule(now + config.advertise_interval, Task::Advertise);
        }
        if !config.balloon_interval.is_zero() {
            queue.schedule(now + config.balloon_interval, Task::Balloon);
        }
        if !config.qos_interval.is_zero() && dm.qos().is_some() {
            queue.schedule(now + config.qos_interval, Task::QosTick);
        }
        // The telemetry sampler ticks on the hub's own window width, so
        // every capture lands exactly on a grid boundary. Like QosTick,
        // the task exists only when a hub is installed: unobserved runs
        // schedule nothing and execute identical event sequences.
        if let Some(hub) = dm.telemetry() {
            queue.schedule(now + hub.window(), Task::Telemetry);
        }
        Maintenance {
            dm,
            config,
            evictor,
            placer,
            queue,
        }
    }

    /// Virtual time of the next pending task, if any.
    pub fn next_task_at(&self) -> Option<SimInstant> {
        self.queue.next_at()
    }

    /// Runs every task due up to `until`, advancing the clock to each
    /// task's scheduled time (like an idle node agent waking on timers).
    ///
    /// Every window closes with one extra repair scan (when repair is
    /// enabled): eviction migrations late in the window can lower an
    /// entry's replica degree after the last interval-scheduled repair
    /// ran, and the closing scan guarantees no window ever ends with a
    /// repairable entry still degraded. The chaos harness checks exactly
    /// this bound.
    ///
    /// # Errors
    ///
    /// Propagates eviction-scan failures; repair failures are per-entry
    /// and absorbed (they retry at the next scan).
    pub fn run_until(&mut self, until: SimInstant) -> DmemResult<MaintenanceReport> {
        let mut report = MaintenanceReport::default();
        while let Some(at) = self.queue.next_at() {
            if at > until {
                break;
            }
            self.dm.clock().advance_to(at);
            for (_, task) in self.queue.pop_due(at) {
                match task {
                    Task::Repair => {
                        report.repair_scans += 1;
                        report.repaired_entries += self.dm.repair_replicas() as u64;
                        self.queue
                            .schedule(self.dm.clock().now() + self.config.repair_interval, Task::Repair);
                    }
                    Task::Eviction => {
                        report.eviction_scans += 1;
                        let outcome = match self.dm.run_eviction(&self.evictor, &self.placer) {
                            Ok(outcome) => outcome,
                            Err(e) => {
                                // An aborted window must still resolve
                                // read-failover suspicions — the closing
                                // repair scan below won't run. No-op (and
                                // metric-free) without fault injection.
                                self.dm.resolve_suspects();
                                return Err(e);
                            }
                        };
                        report.evicted_entries += outcome.moves.len() as u64;
                        report.reclaimed += outcome.reclaimed;
                        self.queue.schedule(
                            self.dm.clock().now() + self.config.eviction_interval,
                            Task::Eviction,
                        );
                    }
                    Task::Advertise => {
                        report.advertise_refreshes += 1;
                        for &node in self.dm.membership().nodes() {
                            if let Some(stats) = self.dm.remote_store().stats(node) {
                                self.dm.membership().advertise_free(node, stats.free);
                            }
                        }
                        self.queue.schedule(
                            self.dm.clock().now() + self.config.advertise_interval,
                            Task::Advertise,
                        );
                    }
                    Task::Balloon => {
                        // §IV-F policy (2): a server that overflows the
                        // shared pool repeatedly gets DRAM ballooned back
                        // by shrinking its donation.
                        for &server in self.dm.servers() {
                            let manager = self.dm.node_manager(server.node());
                            if manager
                                .apply_recommendation(server, self.config.balloon_step)
                                .applied
                            {
                                report.balloon_adjustments += 1;
                            }
                        }
                        self.queue.schedule(
                            self.dm.clock().now() + self.config.balloon_interval,
                            Task::Balloon,
                        );
                    }
                    Task::QosTick => {
                        report.qos_ticks += 1;
                        report.qos_actions += self.dm.qos_tick() as u64;
                        self.queue.schedule(
                            self.dm.clock().now() + self.config.qos_interval,
                            Task::QosTick,
                        );
                    }
                    Task::Telemetry => {
                        report.telemetry_windows += self.dm.telemetry_tick() as u64;
                        let window = self
                            .dm
                            .telemetry()
                            .map(|hub| hub.window())
                            .unwrap_or_default();
                        if !window.is_zero() {
                            self.queue
                                .schedule(self.dm.clock().now() + window, Task::Telemetry);
                        }
                    }
                }
            }
        }
        if !self.config.repair_interval.is_zero() {
            report.repair_scans += 1;
            report.repaired_entries += self.dm.repair_replicas() as u64;
        }
        Ok(report)
    }
}

impl std::fmt::Debug for Maintenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Maintenance")
            .field("config", &self.config)
            .field("pending", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_sim::{DetRng, FailureEvent};
    use dmem_types::{ClusterConfig, DonationPolicy, EntryLocation, PlacementStrategy};

    fn remote_cluster() -> Arc<DisaggregatedMemory> {
        let mut config = ClusterConfig::small();
        config.nodes = 6;
        config.group_size = 6;
        config.server.donation = DonationPolicy::fixed(0.0);
        Arc::new(DisaggregatedMemory::new(config).unwrap())
    }

    fn driver(dm: &Arc<DisaggregatedMemory>, threshold_kib: u64) -> Maintenance {
        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(threshold_kib), 16);
        let placer = Placer::new(
            PlacementStrategy::WeightedRoundRobin,
            dm.membership().clone(),
            DetRng::new(11),
        );
        Maintenance::new(Arc::clone(dm), MaintenanceConfig::default(), evictor, placer)
    }

    #[test]
    fn schedules_initial_tasks() {
        let dm = remote_cluster();
        let m = driver(&dm, 1);
        assert!(m.next_task_at().is_some());
    }

    #[test]
    fn repairs_degraded_replicas_automatically() {
        let dm = remote_cluster();
        let server = dm.servers()[0];
        for key in 0..4 {
            dm.put(server, key, vec![key as u8; 1024]).unwrap();
        }
        // Crash and restart one replica host: its copies are lost.
        let victim = match &dm.record(server, 0).unwrap().location {
            EntryLocation::Remote { replicas } => replicas[0],
            other => panic!("expected remote, got {other:?}"),
        };
        dm.failures().inject_now(FailureEvent::NodeDown(victim));
        dm.failures().inject_now(FailureEvent::NodeUp(victim));
        dm.handle_node_restart(victim).unwrap();

        let mut m = driver(&dm, 1);
        let horizon = dm.clock().now() + SimDuration::from_secs(1);
        let report = m.run_until(horizon).unwrap();
        assert!(report.repair_scans >= 1);
        assert!(report.repaired_entries >= 1, "{report:?}");
        // Every entry is back at full degree.
        for key in 0..4 {
            if let EntryLocation::Remote { replicas } = &dm.record(server, key).unwrap().location {
                assert_eq!(replicas.len(), 3, "key {key}");
            }
        }
    }

    #[test]
    fn eviction_scans_relieve_pressure() {
        let mut config = ClusterConfig::small();
        config.nodes = 6;
        config.group_size = 6;
        config.server.donation = DonationPolicy::fixed(0.0);
        config.node.recv_pool = ByteSize::from_kib(64);
        config.compression = dmem_types::CompressionMode::Off;
        let dm = Arc::new(DisaggregatedMemory::new(config).unwrap());
        let server = dm.servers()[0];
        for key in 0..12 {
            dm.put(server, key, vec![key as u8; 4096]).unwrap();
        }
        let mut m = driver(&dm, 40);
        let report = m
            .run_until(dm.clock().now() + SimDuration::from_secs(1))
            .unwrap();
        assert!(report.eviction_scans >= 1);
        assert!(report.evicted_entries >= 1, "{report:?}");
        // Everything stays readable after background migration.
        for key in 0..12 {
            assert_eq!(dm.get(server, key).unwrap(), vec![key as u8; 4096]);
        }
    }

    #[test]
    fn repair_picks_live_non_duplicate_hosts_after_permanent_loss() {
        // A replica host dies and never comes back. The repair scan must
        // restore full degree using a fresh host: alive, not the corpse,
        // and not a duplicate of a surviving replica.
        let dm = remote_cluster();
        let server = dm.servers()[0];
        for key in 0..4 {
            dm.put(server, key, vec![key as u8; 1024]).unwrap();
        }
        let victim = match &dm.record(server, 0).unwrap().location {
            EntryLocation::Remote { replicas } => replicas[0],
            other => panic!("expected remote, got {other:?}"),
        };
        dm.failures().inject_now(FailureEvent::NodeDown(victim));

        let mut m = driver(&dm, 1);
        m.run_until(dm.clock().now() + SimDuration::from_secs(1))
            .unwrap();
        for key in 0..4 {
            if let EntryLocation::Remote { replicas } = &dm.record(server, key).unwrap().location {
                assert_eq!(replicas.len(), 3, "key {key}: {replicas:?}");
                let distinct: std::collections::HashSet<_> = replicas.iter().collect();
                assert_eq!(distinct.len(), 3, "key {key} duplicates: {replicas:?}");
                assert!(
                    !replicas.contains(&victim),
                    "key {key} still references dead {victim}: {replicas:?}"
                );
                for &n in replicas {
                    assert!(dm.membership().is_alive(n), "key {key}: {n} not alive");
                }
            }
            // Fail-over reads keep working with the victim gone.
            assert_eq!(dm.get(server, key).unwrap(), vec![key as u8; 1024]);
        }
    }

    #[test]
    fn advertisements_refresh() {
        let dm = remote_cluster();
        let mut m = driver(&dm, 1);
        let report = m
            .run_until(dm.clock().now() + SimDuration::from_millis(100))
            .unwrap();
        assert!(report.advertise_refreshes >= 9, "{report:?}");
    }

    #[test]
    fn run_until_respects_horizon() {
        let dm = remote_cluster();
        let mut m = driver(&dm, 1);
        let start = dm.clock().now();
        let horizon = start + SimDuration::from_millis(25);
        m.run_until(horizon).unwrap();
        assert!(dm.clock().now() <= horizon + SimDuration::from_millis(1));
        let next = m.next_task_at().expect("tasks rescheduled");
        assert!(next + SimDuration::from_millis(10) > horizon);
    }

    #[test]
    fn balloon_task_returns_dram_to_pressured_servers() {
        use crate::system::TierPreference;
        let mut config = ClusterConfig::small();
        // Ballooning room: the paper's default policy (10% initial,
        // shrinkable to 0%).
        config.server.donation = DonationPolicy::paper_default();
        config.server.memory = ByteSize::from_kib(512);
        config.node.dram = ByteSize::from_mib(16);
        let dm = Arc::new(DisaggregatedMemory::new(config).unwrap());
        let server = dm.servers()[0];
        let manager = dm.node_manager(server.node());
        // Overflows spread across disk-speed fallbacks; widen the advice
        // window so the pressure signal accumulates.
        manager.set_advice_policy(SimDuration::from_secs(10), 16);
        let before = manager.capacity();

        // Hammer the shared pool until it overflows repeatedly.
        for key in 0..128 {
            let _ = dm.put_pref(server, key, vec![1u8; 4096], TierPreference::NodeShared);
        }
        let mut m = driver(&dm, 1);
        let report = m
            .run_until(dm.clock().now() + SimDuration::from_secs(1))
            .unwrap();
        assert!(report.balloon_adjustments >= 1, "{report:?}");
        assert!(
            manager.capacity() < before,
            "donation should shrink: {} !< {}",
            manager.capacity(),
            before
        );
    }

    #[test]
    fn disabled_tasks_never_fire() {
        let dm = remote_cluster();
        let evictor = RemoteSlabEvictor::new(ByteSize::from_kib(1), 4);
        let placer = Placer::new(
            PlacementStrategy::Random,
            dm.membership().clone(),
            DetRng::new(1),
        );
        let config = MaintenanceConfig {
            repair_interval: SimDuration::ZERO,
            eviction_interval: SimDuration::ZERO,
            balloon_interval: SimDuration::ZERO,
            advertise_interval: SimDuration::from_millis(10),
            ..MaintenanceConfig::default()
        };
        let mut m = Maintenance::new(Arc::clone(&dm), config, evictor, placer);
        let report = m
            .run_until(dm.clock().now() + SimDuration::from_millis(100))
            .unwrap();
        assert_eq!(report.repair_scans, 0);
        assert_eq!(report.eviction_scans, 0);
        assert!(report.advertise_refreshes > 0);
    }
}
