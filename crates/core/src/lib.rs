//! The disaggregated memory system (paper §IV).
//!
//! [`DisaggregatedMemory`] is the paper's full per-cluster architecture
//! assembled from the substrate crates: every node runs a node manager
//! with a donation-funded shared memory pool ([`dmem_node`]), donates an
//! RDMA receive buffer pool to the cluster ([`dmem_cluster`]), and keeps a
//! per-virtual-server *disaggregated memory map* tracking where every data
//! entry lives. A `put` tiers through
//!
//! 1. the **node shared memory pool** (DRAM speed),
//! 2. the **CXL memory pool** when configured — cacheline load/store far
//!    memory one switch hop away, with a write-behind disk shadow for
//!    pool-node loss,
//! 3. local **NVM** when configured (the §VI extension tier),
//! 4. **remote memory** in the owner's group, triple-replicated over the
//!    simulated RDMA fabric,
//! 5. local **disk**, the last resort,
//!
//! and a `get` follows the map back, failing over across replicas and
//! verifying integrity end to end. Pages are transparently compressed into
//! size classes on the way out (§IV-H).
//!
//! # Examples
//!
//! ```
//! use dmem_core::DisaggregatedMemory;
//! use dmem_types::ClusterConfig;
//!
//! let dm = DisaggregatedMemory::new(ClusterConfig::small())?;
//! let server = dm.servers()[0];
//! dm.put(server, 1, vec![42u8; 4096])?;
//! assert_eq!(dm.get(server, 1)?, vec![42u8; 4096]);
//! let record = dm.record(server, 1).expect("tracked in the memory map");
//! assert!(record.location.is_node_local(), "first stop is the shared pool");
//! # Ok::<(), dmem_types::DmemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunked;
pub mod disk;
pub mod maintenance;
pub mod memmap;
pub mod system;

pub use disk::DiskTier;
pub use maintenance::{Maintenance, MaintenanceConfig, MaintenanceReport};
pub use memmap::MemoryMap;
pub use system::{DisaggregatedMemory, DmStats, TierPreference};
