//! Chunked storage of large values.
//!
//! The node shared pool stores page-sized blocks (its slab classes top out
//! at 4 KiB), so values larger than a page are split into page chunks and
//! stored under derived keys. Client systems (the KV cache, DAHI) use this
//! helper so a multi-megabyte value still enjoys the full tiering path —
//! chunks that fit the shared pool stay at DRAM speed, the rest overflow
//! in one batched remote write.
//!
//! Key derivation reserves the low [`CHUNK_BITS`] bits of the key space
//! for the chunk index: callers must allocate base keys at multiples of
//! [`MAX_CHUNKS`].

use crate::system::{DisaggregatedMemory, TierPreference};
use dmem_types::{DmemError, DmemResult, ServerId, PAGE_SIZE};

/// Bits of the key reserved for the chunk index.
pub const CHUNK_BITS: u32 = 12;
/// Maximum chunks (and therefore `4 KiB × 4096 = 16 MiB` max value size).
pub const MAX_CHUNKS: u64 = 1 << CHUNK_BITS;

fn chunk_key(base: u64, index: u64) -> u64 {
    (base << CHUNK_BITS) | index
}

/// Stores `data` under `base` as page-sized chunks plus a length chunk.
///
/// The value's byte length is encoded in chunk 0 ahead of the payload so
/// loads need no out-of-band metadata.
///
/// # Errors
///
/// Returns [`DmemError::InvalidConfig`] when the value exceeds the
/// chunked capacity, and propagates tier errors.
pub fn store_chunked(
    dm: &DisaggregatedMemory,
    server: ServerId,
    base: u64,
    data: &[u8],
    pref: TierPreference,
) -> DmemResult<()> {
    let header = (data.len() as u64).to_le_bytes();
    let framed_len = header.len() + data.len();
    let chunks = framed_len.div_ceil(PAGE_SIZE) as u64;
    if chunks >= MAX_CHUNKS {
        return Err(DmemError::InvalidConfig {
            reason: format!(
                "value of {} bytes exceeds chunked capacity ({} chunks max)",
                data.len(),
                MAX_CHUNKS
            ),
        });
    }
    let mut framed = Vec::with_capacity(framed_len);
    framed.extend_from_slice(&header);
    framed.extend_from_slice(data);
    let batch: Vec<(u64, Vec<u8>)> = framed
        .chunks(PAGE_SIZE)
        .enumerate()
        .map(|(i, c)| (chunk_key(base, i as u64), c.to_vec()))
        .collect();
    dm.put_batch(server, batch, pref)?;
    // Overwriting with a shorter value: drop the stale tail chunks.
    for index in chunks..MAX_CHUNKS {
        if dm.delete(server, chunk_key(base, index)).is_err() {
            break;
        }
    }
    Ok(())
}

/// Loads a value stored by [`store_chunked`].
///
/// # Errors
///
/// Returns [`DmemError::EntryNotFound`] for unknown keys and
/// [`DmemError::Corrupt`] when the stored length frame is inconsistent.
pub fn load_chunked(
    dm: &DisaggregatedMemory,
    server: ServerId,
    base: u64,
) -> DmemResult<Vec<u8>> {
    let first = dm.get(server, chunk_key(base, 0))?;
    if first.len() < 8 {
        return Err(DmemError::Corrupt(dmem_types::EntryId::new(
            server,
            chunk_key(base, 0),
        )));
    }
    let len = u64::from_le_bytes(first[..8].try_into().expect("8 bytes")) as usize;
    let framed_len = len + 8;
    let chunks = framed_len.div_ceil(PAGE_SIZE) as u64;
    let mut framed = first;
    if chunks > 1 {
        let keys: Vec<u64> = (1..chunks).map(|i| chunk_key(base, i)).collect();
        for part in dm.get_batch(server, &keys)? {
            framed.extend_from_slice(&part);
        }
    }
    if framed.len() < framed_len {
        return Err(DmemError::Corrupt(dmem_types::EntryId::new(
            server,
            chunk_key(base, 0),
        )));
    }
    framed.drain(..8);
    framed.truncate(len);
    Ok(framed)
}

/// Deletes a chunked value. Returns the number of chunks removed (0 when
/// the key was absent).
pub fn delete_chunked(dm: &DisaggregatedMemory, server: ServerId, base: u64) -> usize {
    let mut removed = 0;
    for index in 0..MAX_CHUNKS {
        if dm.delete(server, chunk_key(base, index)).is_ok() {
            removed += 1;
        } else {
            break;
        }
    }
    removed
}

/// `true` if a chunked value exists under `base`.
pub fn contains_chunked(dm: &DisaggregatedMemory, server: ServerId, base: u64) -> bool {
    dm.record(server, chunk_key(base, 0)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ClusterConfig;

    fn system() -> (DisaggregatedMemory, ServerId) {
        let dm = DisaggregatedMemory::new(ClusterConfig::small()).unwrap();
        let server = dm.servers()[0];
        (dm, server)
    }

    #[test]
    fn small_value_roundtrip() {
        let (dm, server) = system();
        store_chunked(&dm, server, 1, b"hello", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 1).unwrap(), b"hello");
        assert!(contains_chunked(&dm, server, 1));
    }

    #[test]
    fn empty_value_roundtrip() {
        let (dm, server) = system();
        store_chunked(&dm, server, 2, b"", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multi_chunk_roundtrip() {
        let (dm, server) = system();
        let value: Vec<u8> = (0..20_000u32).map(|i| i as u8).collect();
        store_chunked(&dm, server, 3, &value, TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 3).unwrap(), value);
        // 20008 framed bytes → 5 chunks.
        assert_eq!(dm.stats().entries, 5);
    }

    #[test]
    fn exact_page_boundaries() {
        let (dm, server) = system();
        for (base, len) in [(4u64, PAGE_SIZE - 8), (5, PAGE_SIZE), (6, 2 * PAGE_SIZE - 8)] {
            let value = vec![0xAB; len];
            store_chunked(&dm, server, base, &value, TierPreference::Auto).unwrap();
            assert_eq!(load_chunked(&dm, server, base).unwrap(), value, "len {len}");
        }
    }

    #[test]
    fn delete_removes_all_chunks() {
        let (dm, server) = system();
        let value = vec![1u8; 10_000];
        store_chunked(&dm, server, 7, &value, TierPreference::Auto).unwrap();
        let removed = delete_chunked(&dm, server, 7);
        assert_eq!(removed, 3);
        assert!(!contains_chunked(&dm, server, 7));
        assert!(load_chunked(&dm, server, 7).is_err());
        assert_eq!(dm.stats().entries, 0);
    }

    #[test]
    fn distinct_bases_do_not_collide() {
        let (dm, server) = system();
        store_chunked(&dm, server, 10, &vec![1u8; 9000], TierPreference::Auto).unwrap();
        store_chunked(&dm, server, 11, &vec![2u8; 9000], TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 10).unwrap(), vec![1u8; 9000]);
        assert_eq!(load_chunked(&dm, server, 11).unwrap(), vec![2u8; 9000]);
    }

    #[test]
    fn oversized_value_rejected() {
        let (dm, server) = system();
        let too_big = vec![0u8; (MAX_CHUNKS as usize) * PAGE_SIZE];
        assert!(matches!(
            store_chunked(&dm, server, 1, &too_big, TierPreference::Auto),
            Err(DmemError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn overwrite_replaces_value() {
        let (dm, server) = system();
        store_chunked(&dm, server, 9, &vec![1u8; 9000], TierPreference::Auto).unwrap();
        store_chunked(&dm, server, 9, b"short", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 9).unwrap(), b"short");
    }
}
