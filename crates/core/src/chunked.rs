//! Chunked storage of large values.
//!
//! The node shared pool stores page-sized blocks (its slab classes top out
//! at 4 KiB), so values larger than a page are split into page chunks and
//! stored under derived keys. Client systems (the KV cache, DAHI) use this
//! helper so a multi-megabyte value still enjoys the full tiering path —
//! chunks that fit the shared pool stay at DRAM speed, the rest overflow
//! in one batched remote write.
//!
//! Key derivation reserves the low [`CHUNK_BITS`] bits of the key space
//! for the chunk index: callers must allocate base keys at multiples of
//! [`MAX_CHUNKS`].

use crate::system::{DisaggregatedMemory, TierPreference};
use dmem_types::{DmemError, DmemResult, ServerId, PAGE_SIZE};

/// Bits of the key reserved for the chunk index.
pub const CHUNK_BITS: u32 = 12;
/// Maximum chunks (and therefore `4 KiB × 4096 = 16 MiB` max value size).
pub const MAX_CHUNKS: u64 = 1 << CHUNK_BITS;

fn chunk_key(base: u64, index: u64) -> u64 {
    (base << CHUNK_BITS) | index
}

/// Stores `data` under `base` as page-sized chunks plus a length chunk.
///
/// The value's byte length is encoded in chunk 0 ahead of the payload so
/// loads need no out-of-band metadata.
///
/// # Errors
///
/// Returns [`DmemError::InvalidConfig`] when the value exceeds the
/// chunked capacity, and propagates tier errors.
pub fn store_chunked(
    dm: &DisaggregatedMemory,
    server: ServerId,
    base: u64,
    data: &[u8],
    pref: TierPreference,
) -> DmemResult<()> {
    let header = (data.len() as u64).to_le_bytes();
    let framed_len = header.len() + data.len();
    let chunks = framed_len.div_ceil(PAGE_SIZE) as u64;
    if chunks >= MAX_CHUNKS {
        return Err(DmemError::InvalidConfig {
            reason: format!(
                "value of {} bytes exceeds chunked capacity ({} chunks max)",
                data.len(),
                MAX_CHUNKS
            ),
        });
    }
    let mut framed = Vec::with_capacity(framed_len);
    framed.extend_from_slice(&header);
    framed.extend_from_slice(data);
    let batch: Vec<(u64, Vec<u8>)> = framed
        .chunks(PAGE_SIZE)
        .enumerate()
        .map(|(i, c)| (chunk_key(base, i as u64), c.to_vec()))
        .collect();
    dm.put_batch(server, batch, pref)?;
    // Overwriting with a shorter value: drop the stale tail chunks.
    for index in chunks..MAX_CHUNKS {
        if dm.delete(server, chunk_key(base, index)).is_err() {
            break;
        }
    }
    Ok(())
}

/// Loads a value stored by [`store_chunked`].
///
/// # Errors
///
/// Returns [`DmemError::EntryNotFound`] for unknown keys and
/// [`DmemError::Corrupt`] when the stored length frame is inconsistent.
pub fn load_chunked(
    dm: &DisaggregatedMemory,
    server: ServerId,
    base: u64,
) -> DmemResult<Vec<u8>> {
    let first = dm.get(server, chunk_key(base, 0))?;
    if first.len() < 8 {
        return Err(DmemError::Corrupt(dmem_types::EntryId::new(
            server,
            chunk_key(base, 0),
        )));
    }
    let len = u64::from_le_bytes(first[..8].try_into().expect("8 bytes")) as usize;
    let framed_len = len + 8;
    let chunks = framed_len.div_ceil(PAGE_SIZE) as u64;
    let mut framed = first;
    if chunks > 1 {
        let keys: Vec<u64> = (1..chunks).map(|i| chunk_key(base, i)).collect();
        for part in dm.get_batch(server, &keys)? {
            framed.extend_from_slice(&part);
        }
    }
    if framed.len() < framed_len {
        return Err(DmemError::Corrupt(dmem_types::EntryId::new(
            server,
            chunk_key(base, 0),
        )));
    }
    framed.drain(..8);
    framed.truncate(len);
    Ok(framed)
}

/// Upper bound on chunks per [`store_chunked_many`] window.
///
/// A batched put stores the whole window under one replica set, so a
/// window must stay small enough for a single replica group to host it;
/// oversized windows would trip the wholesale disk fallback and defeat
/// the point of coalescing.
pub const STORE_WINDOW_CHUNKS: usize = 32;

/// Stores several values in coalesced batches: all chunks of all values
/// are gathered into windows of at most [`STORE_WINDOW_CHUNKS`] pages and
/// each window moves in **one** `put_batch` — one replica handshake and
/// one batched fabric write per window instead of one per value. This is
/// the chunked-storage analogue of core `get_batch`'s per-host verb
/// coalescing, and the data path behind [`KvCache`] demotion bursts and
/// the tiered KV engine's conversation spills.
///
/// Bases must be distinct; values follow [`store_chunked`] framing, so
/// the two stores are interchangeable per key.
///
/// # Errors
///
/// Returns [`DmemError::InvalidConfig`] when any value exceeds the
/// chunked capacity, and propagates tier errors.
///
/// [`KvCache`]: https://docs.rs/dmem-kv
pub fn store_chunked_many(
    dm: &DisaggregatedMemory,
    server: ServerId,
    items: &[(u64, &[u8])],
    pref: TierPreference,
) -> DmemResult<()> {
    // Validate sizes up front so no window lands before the error.
    for (_, data) in items {
        let chunks = (data.len() + 8).div_ceil(PAGE_SIZE) as u64;
        if chunks >= MAX_CHUNKS {
            return Err(DmemError::InvalidConfig {
                reason: format!(
                    "value of {} bytes exceeds chunked capacity ({} chunks max)",
                    data.len(),
                    MAX_CHUNKS
                ),
            });
        }
    }
    let mut window: Vec<(u64, Vec<u8>)> = Vec::with_capacity(STORE_WINDOW_CHUNKS);
    for (base, data) in items {
        let mut framed = Vec::with_capacity(8 + data.len());
        framed.extend_from_slice(&(data.len() as u64).to_le_bytes());
        framed.extend_from_slice(data);
        let chunks = framed.len().div_ceil(PAGE_SIZE) as u64;
        for (i, c) in framed.chunks(PAGE_SIZE).enumerate() {
            window.push((chunk_key(*base, i as u64), c.to_vec()));
            if window.len() >= STORE_WINDOW_CHUNKS {
                dm.put_batch(server, std::mem::take(&mut window), pref)?;
            }
        }
        // Overwriting with a shorter value: drop the stale tail chunks.
        for index in chunks..MAX_CHUNKS {
            if dm.delete(server, chunk_key(*base, index)).is_err() {
                break;
            }
        }
    }
    if !window.is_empty() {
        dm.put_batch(server, window, pref)?;
    }
    Ok(())
}

/// Loads several chunked values with coalesced fetches: one `get_batch`
/// for every value's length chunk, then one `get_batch` for all remaining
/// chunks of all values — two batched rounds (each grouped per host by
/// the core) instead of `2 × n` point lookups.
///
/// Results are returned in `bases` order.
///
/// # Errors
///
/// Fails on the first unknown or corrupt value, with no partial results
/// (the [`get_batch`](DisaggregatedMemory::get_batch) contract).
pub fn load_chunked_many(
    dm: &DisaggregatedMemory,
    server: ServerId,
    bases: &[u64],
) -> DmemResult<Vec<Vec<u8>>> {
    if bases.is_empty() {
        return Ok(Vec::new());
    }
    let first_keys: Vec<u64> = bases.iter().map(|&b| chunk_key(b, 0)).collect();
    let firsts = dm.get_batch(server, &first_keys)?;
    let mut framed_parts: Vec<Vec<u8>> = Vec::with_capacity(bases.len());
    let mut lens: Vec<usize> = Vec::with_capacity(bases.len());
    let mut tail_keys: Vec<u64> = Vec::new();
    let mut tail_owner: Vec<usize> = Vec::new();
    for (i, (&base, first)) in bases.iter().zip(firsts).enumerate() {
        if first.len() < 8 {
            return Err(DmemError::Corrupt(dmem_types::EntryId::new(
                server,
                chunk_key(base, 0),
            )));
        }
        let len = u64::from_le_bytes(first[..8].try_into().expect("8 bytes")) as usize;
        let chunks = (len + 8).div_ceil(PAGE_SIZE) as u64;
        for c in 1..chunks {
            tail_keys.push(chunk_key(base, c));
            tail_owner.push(i);
        }
        lens.push(len);
        framed_parts.push(first);
    }
    if !tail_keys.is_empty() {
        let tails = dm.get_batch(server, &tail_keys)?;
        for (owner, part) in tail_owner.into_iter().zip(tails) {
            framed_parts[owner].extend_from_slice(&part);
        }
    }
    let mut out = Vec::with_capacity(bases.len());
    for ((mut framed, len), &base) in framed_parts.into_iter().zip(lens).zip(bases) {
        if framed.len() < len + 8 {
            return Err(DmemError::Corrupt(dmem_types::EntryId::new(
                server,
                chunk_key(base, 0),
            )));
        }
        framed.drain(..8);
        framed.truncate(len);
        out.push(framed);
    }
    Ok(out)
}

/// The storage tier currently holding a chunked value's length chunk, or
/// `None` when the value is absent. Clients that track per-tier byte
/// budgets (the tiered KV engine) use this to learn where a batched store
/// actually landed — QoS admission may have degraded it to disk.
pub fn tier_of(
    dm: &DisaggregatedMemory,
    server: ServerId,
    base: u64,
) -> Option<dmem_types::EntryLocation> {
    dm.record(server, chunk_key(base, 0)).map(|r| r.location)
}

/// Deletes a chunked value. Returns the number of chunks removed (0 when
/// the key was absent).
pub fn delete_chunked(dm: &DisaggregatedMemory, server: ServerId, base: u64) -> usize {
    let mut removed = 0;
    for index in 0..MAX_CHUNKS {
        if dm.delete(server, chunk_key(base, index)).is_ok() {
            removed += 1;
        } else {
            break;
        }
    }
    removed
}

/// `true` if a chunked value exists under `base`.
pub fn contains_chunked(dm: &DisaggregatedMemory, server: ServerId, base: u64) -> bool {
    dm.record(server, chunk_key(base, 0)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmem_types::ClusterConfig;

    fn system() -> (DisaggregatedMemory, ServerId) {
        let dm = DisaggregatedMemory::new(ClusterConfig::small()).unwrap();
        let server = dm.servers()[0];
        (dm, server)
    }

    #[test]
    fn small_value_roundtrip() {
        let (dm, server) = system();
        store_chunked(&dm, server, 1, b"hello", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 1).unwrap(), b"hello");
        assert!(contains_chunked(&dm, server, 1));
    }

    #[test]
    fn empty_value_roundtrip() {
        let (dm, server) = system();
        store_chunked(&dm, server, 2, b"", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 2).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn multi_chunk_roundtrip() {
        let (dm, server) = system();
        let value: Vec<u8> = (0..20_000u32).map(|i| i as u8).collect();
        store_chunked(&dm, server, 3, &value, TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 3).unwrap(), value);
        // 20008 framed bytes → 5 chunks.
        assert_eq!(dm.stats().entries, 5);
    }

    #[test]
    fn exact_page_boundaries() {
        let (dm, server) = system();
        for (base, len) in [(4u64, PAGE_SIZE - 8), (5, PAGE_SIZE), (6, 2 * PAGE_SIZE - 8)] {
            let value = vec![0xAB; len];
            store_chunked(&dm, server, base, &value, TierPreference::Auto).unwrap();
            assert_eq!(load_chunked(&dm, server, base).unwrap(), value, "len {len}");
        }
    }

    #[test]
    fn delete_removes_all_chunks() {
        let (dm, server) = system();
        let value = vec![1u8; 10_000];
        store_chunked(&dm, server, 7, &value, TierPreference::Auto).unwrap();
        let removed = delete_chunked(&dm, server, 7);
        assert_eq!(removed, 3);
        assert!(!contains_chunked(&dm, server, 7));
        assert!(load_chunked(&dm, server, 7).is_err());
        assert_eq!(dm.stats().entries, 0);
    }

    #[test]
    fn distinct_bases_do_not_collide() {
        let (dm, server) = system();
        store_chunked(&dm, server, 10, &vec![1u8; 9000], TierPreference::Auto).unwrap();
        store_chunked(&dm, server, 11, &vec![2u8; 9000], TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 10).unwrap(), vec![1u8; 9000]);
        assert_eq!(load_chunked(&dm, server, 11).unwrap(), vec![2u8; 9000]);
    }

    #[test]
    fn oversized_value_rejected() {
        let (dm, server) = system();
        let too_big = vec![0u8; (MAX_CHUNKS as usize) * PAGE_SIZE];
        assert!(matches!(
            store_chunked(&dm, server, 1, &too_big, TierPreference::Auto),
            Err(DmemError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn many_roundtrip_matches_singles() {
        let (dm, server) = system();
        let values: Vec<Vec<u8>> = (0..12u8)
            .map(|i| vec![i; 300 * (i as usize + 1)])
            .collect();
        let items: Vec<(u64, &[u8])> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (100 + i as u64, v.as_slice()))
            .collect();
        store_chunked_many(&dm, server, &items, TierPreference::Auto).unwrap();
        // Batched loads agree with the point loads, in bases order.
        let bases: Vec<u64> = items.iter().map(|(b, _)| *b).collect();
        let loaded = load_chunked_many(&dm, server, &bases).unwrap();
        assert_eq!(loaded, values);
        for (base, value) in bases.iter().zip(&values) {
            assert_eq!(&load_chunked(&dm, server, *base).unwrap(), value);
        }
    }

    #[test]
    fn many_spans_multiple_windows() {
        let (dm, server) = system();
        // 24 two-chunk values = 48 chunks > one 32-chunk window.
        let value = vec![0x5Au8; PAGE_SIZE + 100];
        let items: Vec<(u64, &[u8])> = (0..24u64).map(|i| (200 + i, value.as_slice())).collect();
        store_chunked_many(&dm, server, &items, TierPreference::Auto).unwrap();
        let bases: Vec<u64> = items.iter().map(|(b, _)| *b).collect();
        for got in load_chunked_many(&dm, server, &bases).unwrap() {
            assert_eq!(got, value);
        }
    }

    #[test]
    fn many_overwrite_drops_stale_tails() {
        let (dm, server) = system();
        store_chunked(&dm, server, 300, &vec![1u8; 3 * PAGE_SIZE], TierPreference::Auto).unwrap();
        let short: &[u8] = b"short";
        store_chunked_many(&dm, server, &[(300, short)], TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 300).unwrap(), b"short");
        assert_eq!(dm.stats().entries, 1, "stale tail chunks must be gone");
    }

    #[test]
    fn many_empty_and_missing() {
        let (dm, server) = system();
        assert!(load_chunked_many(&dm, server, &[]).unwrap().is_empty());
        store_chunked_many(&dm, server, &[], TierPreference::Auto).unwrap();
        assert!(matches!(
            load_chunked_many(&dm, server, &[9999]),
            Err(DmemError::EntryNotFound(_))
        ));
    }

    #[test]
    fn many_oversized_value_rejected_before_any_store() {
        let (dm, server) = system();
        let ok = vec![1u8; 64];
        let too_big = vec![0u8; (MAX_CHUNKS as usize) * PAGE_SIZE];
        assert!(matches!(
            store_chunked_many(
                &dm,
                server,
                &[(1, ok.as_slice()), (2, too_big.as_slice())],
                TierPreference::Auto
            ),
            Err(DmemError::InvalidConfig { .. })
        ));
        assert_eq!(dm.stats().entries, 0, "nothing may land when the batch is invalid");
    }

    #[test]
    fn tier_of_reports_location() {
        let (dm, server) = system();
        assert!(tier_of(&dm, server, 40).is_none());
        store_chunked(&dm, server, 40, b"x", TierPreference::Disk).unwrap();
        assert!(matches!(
            tier_of(&dm, server, 40),
            Some(dmem_types::EntryLocation::Disk)
        ));
    }

    #[test]
    fn overwrite_replaces_value() {
        let (dm, server) = system();
        store_chunked(&dm, server, 9, &vec![1u8; 9000], TierPreference::Auto).unwrap();
        store_chunked(&dm, server, 9, b"short", TierPreference::Auto).unwrap();
        assert_eq!(load_chunked(&dm, server, 9).unwrap(), b"short");
    }
}
