//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every `fig*` binary prints a human-readable table to stdout **and**
//! writes the same rows as CSV under `results/` so EXPERIMENTS.md can
//! reference machine-readable output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A rendered experiment table: header plus rows of equal arity.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column header.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title);
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>width$}  ", width = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.header);
        line(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<String>>(),
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Writes the table as `results/<name>.csv`, creating the directory.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — the bench binaries want loud failures.
    pub fn write_csv(&self, name: &str) {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut file = fs::File::create(&path).expect("create csv");
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        writeln!(
            file,
            "{}",
            self.header.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )
        .expect("write header");
        for row in &self.rows {
            writeln!(
                file,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            )
            .expect("write row");
        }
        println!("[written {}]", path.display());
    }

    /// Prints and writes in one call.
    pub fn emit(&self, name: &str) {
        self.print();
        self.write_csv(name);
    }
}

/// Telemetry destinations parsed from `--trace-out FILE` and
/// `--metrics-out FILE` (both also accept `--flag=FILE`).
///
/// When either flag is present the figure binary runs one extra traced
/// pass after its normal table: the regular CSV stays byte-identical
/// (tracing never advances the virtual clock, and the untraced runs never
/// even format a span), and the traced pass exports its spans/metrics to
/// the requested files.
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// Chrome-trace JSON destination; a compact `.jsonl` span log is
    /// written next to it.
    pub trace_out: Option<PathBuf>,
    /// Destination for the metrics digest (histograms + attribution).
    pub metrics_out: Option<PathBuf>,
}

impl TelemetryArgs {
    /// Parses the two flags out of an argument list, ignoring everything
    /// else (figure binaries have no other flags today).
    pub fn parse<I>(args: I) -> Self
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = TelemetryArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |slot: &mut Option<PathBuf>, flag: &str| {
                if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    *slot = Some(PathBuf::from(v));
                } else if arg == flag {
                    *slot = args.next().map(PathBuf::from);
                }
            };
            take(&mut out.trace_out, "--trace-out");
            take(&mut out.metrics_out, "--metrics-out");
        }
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        TelemetryArgs::parse(std::env::args().skip(1))
    }

    /// `true` when any telemetry output was requested.
    pub fn requested(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some()
    }

    /// Writes the Chrome-trace JSON (plus the `.jsonl` sibling) if
    /// `--trace-out` was given.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — the bench binaries want loud failures.
    pub fn write_trace(&self, trace: &dmem_sim::Trace) {
        if let Some(path) = &self.trace_out {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fs::create_dir_all(dir).expect("create trace dir");
            }
            fs::write(path, trace.to_chrome_json()).expect("write chrome trace");
            println!("[written {}]", path.display());
            let jsonl = path.with_extension("jsonl");
            fs::write(&jsonl, trace.to_jsonl()).expect("write span log");
            println!("[written {}]", jsonl.display());
        }
    }

    /// Writes the metrics digest if `--metrics-out` was given.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — the bench binaries want loud failures.
    pub fn write_metrics(&self, body: &str) {
        if let Some(path) = &self.metrics_out {
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                fs::create_dir_all(dir).expect("create metrics dir");
            }
            fs::write(path, body).expect("write metrics digest");
            println!("[written {}]", path.display());
        }
    }
}

/// Formats a speedup like the paper quotes them.
pub fn speedup(baseline_ns: u64, system_ns: u64) -> String {
    format!("{:.1}x", baseline_ns as f64 / system_ns.max(1) as f64)
}

/// Worker count for [`par_map`]: the `DMEM_BENCH_JOBS` environment
/// variable when set (0 or unparsable falls back), otherwise the
/// machine's available parallelism.
pub fn bench_jobs() -> usize {
    std::env::var("DMEM_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(scoped_pool::available_parallelism)
}

/// Fans independent deterministic sims across cores and returns results
/// in input order, so tables built from them are byte-identical to a
/// sequential run. Each sim owns its virtual clock and rng, so
/// interleaving cannot perturb results — only wall-clock time changes.
pub fn par_map<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(usize, I) -> R + Sync,
{
    scoped_pool::par_map(bench_jobs(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(["1", "2"]).row(["3", "4"]);
        t.print();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        Table::new("demo", &["a", "b"]).row(["only one"]);
    }

    #[test]
    fn telemetry_args_parse_both_forms() {
        let args = ["--trace-out", "a.json", "--metrics-out=b.txt", "ignored"]
            .iter()
            .map(|s| (*s).to_owned());
        let t = TelemetryArgs::parse(args);
        assert_eq!(t.trace_out.as_deref(), Some(std::path::Path::new("a.json")));
        assert_eq!(t.metrics_out.as_deref(), Some(std::path::Path::new("b.txt")));
        assert!(t.requested());
        assert!(!TelemetryArgs::parse(std::iter::empty()).requested());
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(1000, 100), "10.0x");
        assert_eq!(speedup(1000, 0), "1000.0x");
    }
}
