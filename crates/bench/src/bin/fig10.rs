//! Fig. 10: vanilla Spark vs DAHI-powered Spark — completion time for
//! LogisticRegression, SVM, KMeans and ConnectedComponents across small,
//! medium and large datasets.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig10`

use dmem_bench::{par_map, speedup, Table};
use dmem_rdd::job::{run_iterative_job, DatasetSize, JobSpec, SpillTier};

fn main() {
    let mut table = Table::new(
        "Fig. 10 — vanilla Spark vs DAHI-powered Spark",
        &["workload", "dataset", "vanilla", "DAHI", "speedup", "DAHI spills/spill-reads"],
    );
    let grid: Vec<(JobSpec, DatasetSize)> = JobSpec::fig10_suite()
        .into_iter()
        .flat_map(|spec| DatasetSize::ALL.into_iter().map(move |size| (spec.clone(), size)))
        .collect();
    let results = par_map(grid.clone(), |_, (spec, size)| {
        let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk).unwrap();
        let dahi = run_iterative_job(&spec, size, SpillTier::Dahi).unwrap();
        (vanilla, dahi)
    });
    for ((spec, size), (vanilla, dahi)) in grid.into_iter().zip(results) {
        {
            table.row([
                spec.name.to_owned(),
                size.to_string(),
                vanilla.completion.to_string(),
                dahi.completion.to_string(),
                speedup(vanilla.completion.as_nanos(), dahi.completion.as_nanos()),
                format!("{}/{}", dahi.cache.spills, dahi.cache.spill_hits),
            ]);
        }
    }
    table.emit("fig10");
    println!("\nPaper reference points (medium/large speedups): LR 1.7x/4.3x,");
    println!("SVM 3.3x/5.8x, KMeans 2.5x/3.1x, CC 1.3x/1.9x.");
    println!("Shape check: small ties (fully cached); speedups grow with dataset size;");
    println!("SVM > KMeans > LR > CC ordering.");
}
