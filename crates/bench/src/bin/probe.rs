use dmem_swap::*;
use dmem_types::*;
use dmem_workloads::{catalog, TraceConfig};
fn main() {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    scale.shared_donation = 0.10;
    scale.remote_pool = ByteSize::from_mib(1);
    for ratio in [1.3, 2.0, 3.0] {
        let kind = SystemKind::FastSwap { ratio: DistributionRatio::FS_SM, compression: CompressionMode::FourGranularity, pbs: true };
        let mut engine = build_system_with_pages(kind, &scale, ratio, 0.4).unwrap();
        let profile = catalog::by_name("LogisticRegression").unwrap();
        let trace = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
        let (stats, completion) = engine.run(trace).unwrap();
        println!("ratio {ratio}: completion={completion} {stats:?}");
    }
}
