use dmem_swap::*;
use dmem_types::*;
use dmem_workloads::{catalog, TraceConfig};
fn main() {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    scale.shared_donation = 0.10;
    scale.remote_pool = ByteSize::from_mib(1);
    let ratios = [1.3, 2.0, 3.0];
    let results = dmem_bench::par_map(ratios.to_vec(), |_, ratio| {
        let kind = SystemKind::FastSwap { ratio: DistributionRatio::FS_SM, compression: CompressionMode::FourGranularity, pbs: true };
        let mut engine = build_system_with_pages(kind, &scale, ratio, 0.4).unwrap();
        let profile = catalog::by_name("LogisticRegression").unwrap();
        let trace = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
        engine.run(trace).unwrap()
    });
    for (ratio, (stats, completion)) in ratios.into_iter().zip(results) {
        println!("ratio {ratio}: completion={completion} {stats:?}");
    }
}
