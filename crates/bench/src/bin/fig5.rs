//! Fig. 5: impact of disaggregated-memory compression on application
//! performance — FastSwap with compression on vs off, across the ML
//! workloads at the 50% configuration.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig5`

use dmem_bench::{par_map, speedup, Table};
use dmem_swap::{run_ml_workload, SwapScale, SystemKind};
use dmem_types::{ByteSize, CompressionMode, DistributionRatio};

fn main() {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    // Pools sized so the uncompressed overflow strains them: compression
    // keeps the working set in the fast tiers.
    scale.remote_pool = ByteSize::from_mib(2);
    scale.shared_donation = 0.20;

    let kind = |compression| SystemKind::FastSwap {
        ratio: DistributionRatio::FS_SM,
        compression,
        pbs: true,
    };

    let mut table = Table::new(
        "Fig. 5 — disaggregated memory compression on application performance (@50%)",
        &["workload", "no compression", "4-granularity", "improvement"],
    );
    let workloads = ["PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"];
    let results = par_map(workloads.to_vec(), |_, workload| {
        let off = run_ml_workload(kind(CompressionMode::Off), workload, &scale).unwrap();
        let on =
            run_ml_workload(kind(CompressionMode::FourGranularity), workload, &scale).unwrap();
        (off, on)
    });
    for (workload, (off, on)) in workloads.into_iter().zip(results) {
        table.row([
            workload.to_owned(),
            format!("{}", off.completion),
            format!("{}", on.completion),
            speedup(off.completion.as_nanos(), on.completion.as_nanos()),
        ]);
    }
    table.emit("fig5");
    println!("\nShape check (paper): compression improves completion time on every workload.");
}
