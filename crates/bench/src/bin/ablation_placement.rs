//! Ablation (§IV-E): memory imbalance under the four placement policies.
//!
//! Stores a stream of single-replica entries across a cluster under each
//! policy and reports the resulting load spread — the "minimize memory
//! imbalance" criterion the paper names.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ablation_placement`

use dmem_bench::{par_map, Table};
use dmem_cluster::{ClusterMembership, Placer, RemoteStore};
use dmem_net::Fabric;
use dmem_sim::{CostModel, DetRng, FailureInjector, SimClock};
use dmem_types::{ByteSize, EntryId, NodeId, PlacementStrategy, ServerId};

const NODES: u32 = 16;
const ENTRIES: u64 = 2_000;

fn imbalance(strategy: PlacementStrategy) -> (f64, f64) {
    let clock = SimClock::new();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock, CostModel::paper_default(), failures.clone());
    let nodes: Vec<NodeId> = (0..NODES).map(NodeId::new).collect();
    let membership = ClusterMembership::new(nodes.clone(), failures);
    let store = RemoteStore::new(fabric, membership.clone(), ByteSize::from_mib(16)).unwrap();
    let placer = Placer::new(strategy, membership.clone(), DetRng::new(7));
    let owner = ServerId::new(NodeId::new(0), 0);

    for key in 0..ENTRIES {
        let candidates = membership.candidates(NodeId::new(0));
        let target = placer.pick(&candidates, 1).unwrap()[0];
        store
            .store(NodeId::new(0), target, EntryId::new(owner, key), vec![0u8; 4096])
            .unwrap();
    }
    let loads: Vec<u64> = nodes
        .iter()
        .skip(1) // node 0 never hosts its own entries
        .map(|&n| store.stats(n).unwrap().capacity.as_u64() - store.stats(n).unwrap().free.as_u64())
        .collect();
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let max = *loads.iter().max().unwrap() as f64;
    let variance = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / loads.len() as f64;
    (max / mean, variance.sqrt() / mean)
}

fn main() {
    let mut table = Table::new(
        "Ablation — placement policy vs memory imbalance (16 nodes, 2000 single-replica writes)",
        &["policy", "max/mean load", "coefficient of variation"],
    );
    let strategies = [
        PlacementStrategy::Random,
        PlacementStrategy::RoundRobin,
        PlacementStrategy::WeightedRoundRobin,
        PlacementStrategy::PowerOfTwoChoices,
    ];
    let results = par_map(strategies.to_vec(), |_, strategy| imbalance(strategy));
    for (strategy, (peak, cv)) in strategies.into_iter().zip(results) {
        table.row([
            strategy.to_string(),
            format!("{peak:.3}"),
            format!("{cv:.3}"),
        ]);
    }
    table.emit("ablation_placement");
    println!("\nExpectation: round-robin is perfectly balanced on a uniform stream;");
    println!("power-of-two-choices nearly matches it while staying load-aware;");
    println!("random shows the largest spread.");
}
