//! Ablation (§IV-H): window-based batching — "it is worth to experiment
//! window based message batching with both different window size d and
//! different message size m." Exactly that sweep.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ablation_batching`

use dmem_bench::{par_map, Table};
use dmem_net::{BatchSender, Fabric};
use dmem_sim::{CostModel, FailureInjector, SimClock};
use dmem_types::{ByteSize, NodeId};

/// Total payload shipped per configuration.
const VOLUME: usize = 8 << 20; // 8 MiB

fn main() {
    let windows = [1usize, 2, 4, 8, 16, 32];
    let messages = [4096usize, 8192, 65536]; // NBDX page, Accelio default, large

    let header: Vec<String> = std::iter::once("message size".to_owned())
        .chain(windows.iter().map(|d| format!("d={d}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Ablation — window size d × message size m: time to ship 8 MiB over RDMA",
        &header_refs,
    );

    let grid: Vec<(usize, usize)> = messages
        .into_iter()
        .flat_map(|m| windows.into_iter().map(move |d| (m, d)))
        .collect();
    let elapsed = par_map(grid, |_, (m, d)| {
        let clock = SimClock::new();
        let failures = FailureInjector::new(clock.clone());
        let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures);
        let mr = fabric
            .register(NodeId::new(1), ByteSize::from(d * m))
            .unwrap();
        let qp = fabric.connect(NodeId::new(0), NodeId::new(1)).unwrap();
        let mut sender = BatchSender::new(qp, mr, d, m);
        sender.set_region_capacity((d * m) as u64);
        let t0 = clock.now();
        for _ in 0..VOLUME / m {
            sender.push(&fabric, vec![7u8; m]).unwrap();
        }
        sender.flush(&fabric).unwrap();
        clock.now() - t0
    });
    for (row_idx, m) in messages.into_iter().enumerate() {
        let mut cells = vec![ByteSize::from(m).to_string()];
        for col in 0..windows.len() {
            cells.push(format!("{}", elapsed[row_idx * windows.len() + col]));
        }
        table.row(cells);
    }
    table.emit("ablation_batching");
    println!("\nExpectation: cost falls with both d and m as the per-verb base latency");
    println!("amortizes; beyond the bandwidth-dominated point further batching is flat.");
}
