//! Fig. 4: effect of page compressibility on completion time for
//! LogisticRegression at the 50% configuration — swapping the overflow of
//! a full shared memory pool (a) to remote memory, (b) to disk.
//!
//! Paper §IV-H: "Figure 4(a) and 4(b) show the impact of compression when
//! swapping-out least recent pages to the remote memory v.s. to the disk
//! respectively when the shared memory pool is full on the local node."
//! Compression buys capacity in whichever tier absorbs the overflow:
//! better-compressing pages mean more of the working set stays in fast
//! memory before the next tier down is touched.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig4`
//!
//! Telemetry: `--trace-out FILE` exports a Chrome-trace JSON (plus a
//! `.jsonl` span log) from one extra traced pass run after the table;
//! `--metrics-out FILE` writes the matching latency-attribution and
//! histogram digest. The table and CSV are byte-identical with or
//! without these flags — spans never advance the virtual clock and the
//! untraced sweep never enables the tracer.

use dmem_bench::{par_map, speedup, Table, TelemetryArgs};
use dmem_swap::{build_system_with_pages, PagingEngine, SwapScale, SystemKind};
use dmem_types::{ByteSize, CompressionMode, DistributionRatio};
use dmem_workloads::{catalog, TraceConfig};

const RATIOS: [f64; 4] = [1.3, 2.0, 3.0, 4.5];

fn build(scale: &SwapScale, mean_ratio: f64) -> PagingEngine {
    let kind = SystemKind::FastSwap {
        ratio: DistributionRatio::FS_SM,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    };
    build_system_with_pages(kind, scale, mean_ratio, 0.4).unwrap()
}

fn workload(scale: &SwapScale) -> dmem_workloads::traces::Trace {
    let profile = catalog::by_name("LogisticRegression").unwrap();
    TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed)
}

fn run(scale: &SwapScale, mean_ratio: f64) -> u64 {
    let mut engine = build(scale, mean_ratio);
    let (_, completion) = engine.run(workload(scale)).unwrap();
    completion.as_nanos()
}

/// One extra pass with the tracer on, exporting spans and the metrics
/// digest. Runs the same deterministic sim as the table's 3.0x remote
/// cell; virtual time is identical to the untraced run.
fn traced_run(scale: &SwapScale, mean_ratio: f64, telemetry: &TelemetryArgs) {
    let mut engine = build(scale, mean_ratio);
    engine.clock().tracer().enable();
    let (_, completion) = engine.run(workload(scale)).unwrap();
    engine.clock().tracer().disable();
    let spans = engine.clock().tracer().finish();
    telemetry.write_trace(&spans);

    use std::fmt::Write as _;
    let mut digest = String::new();
    writeln!(
        digest,
        "fig4 traced pass: LogisticRegression @50%, overflow to remote, {mean_ratio:.1}x pages"
    )
    .unwrap();
    writeln!(digest, "completion: {} ns", completion.as_nanos()).unwrap();
    writeln!(digest, "\n{}", spans.attribution(completion)).unwrap();
    if let Some(dm) = engine.cluster() {
        writeln!(digest, "\n{}", dm.metrics()).unwrap();
    }
    telemetry.write_metrics(&digest);
}

fn main() {
    let telemetry = TelemetryArgs::from_env();
    // A small shared pool that fills immediately; the sweep varies how far
    // the compressed overflow reaches into the next tier.
    let mut remote_scale = SwapScale::bench();
    remote_scale.memory_fraction = 0.5;
    remote_scale.shared_donation = 0.25;
    remote_scale.remote_pool = ByteSize::from_mib(1); // tight cluster memory

    let mut disk_scale = remote_scale.clone();
    disk_scale.remote_pool = ByteSize::ZERO; // (b): no remote tier at all
    // (b) keeps a smaller pool so even highly compressible overflow still
    // exercises the disk, as a disk-backed deployment would.
    disk_scale.shared_donation = 0.10;

    let mut table = Table::new(
        "Fig. 4 — LogisticRegression @50%, shared pool full: completion vs compressibility",
        &["compressibility", "(a) overflow to remote", "(b) overflow to disk", "remote vs disk"],
    );
    // Each (ratio, tier) cell is an independent sim: fan them across
    // cores and render rows in input order afterwards.
    let results = par_map(RATIOS.to_vec(), |_, ratio| {
        (run(&remote_scale, ratio), run(&disk_scale, ratio))
    });
    let mut firsts = (0u64, 0u64);
    for (i, (ratio, (remote_ns, disk_ns))) in RATIOS.into_iter().zip(results).enumerate() {
        if i == 0 {
            firsts = (remote_ns, disk_ns);
        }
        table.row([
            format!("{ratio:.1}x"),
            format!(
                "{:.1} ms ({} vs 1.3x)",
                remote_ns as f64 / 1e6,
                speedup(firsts.0, remote_ns)
            ),
            format!(
                "{:.1} ms ({} vs 1.3x)",
                disk_ns as f64 / 1e6,
                speedup(firsts.1, disk_ns)
            ),
            speedup(disk_ns, remote_ns),
        ]);
    }
    table.emit("fig4");
    println!("\nShape check (paper): completion time falls with compressibility on both");
    println!("overflow devices, and the remote tier beats the disk tier throughout.");

    if telemetry.requested() {
        traced_run(&remote_scale, 3.0, &telemetry);
    }
}
