//! Fig. 6: completion time of FastSwap with proactive batch swap-in (PBS),
//! FastSwap without PBS, Infiniswap, and Linux disk swapping, for four
//! sizes of disaggregated-memory workloads.
//!
//! The workload is swap-in dominated, as in the paper's measurement: the
//! working set starts parked in disaggregated memory (or on the swap
//! device) and the application sweeps through it twice — the regime in
//! which batching swap-ins pays (or does not, for the systems that cannot
//! batch).
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig6`

use dmem_bench::{par_map, speedup, Table};
use dmem_swap::{build_system, SwapScale, SystemKind};
use dmem_types::{CompressionMode, DistributionRatio};

const SIZES: [u64; 4] = [512, 1024, 2048, 4096];
const SWEEPS: u64 = 2;

fn run(kind: SystemKind, scale: &SwapScale) -> u64 {
    let mut engine = build_system(kind, scale).unwrap();
    engine.preload_swapped(scale.working_set_pages).unwrap();
    let t0 = engine.clock().now();
    for _ in 0..SWEEPS {
        for pfn in 0..scale.working_set_pages {
            engine.access(pfn, pfn % 4 == 0).unwrap();
        }
    }
    (engine.clock().now() - t0).as_nanos()
}

fn main() {
    // A modest shared pool forces a meaningful share of traffic onto the
    // remote path, where batch swap-in matters.
    let mut base = SwapScale::bench();
    base.shared_donation = 0.10;

    let systems = [
        (
            "FastSwap (PBS)",
            SystemKind::FastSwap {
                ratio: DistributionRatio::FS_SM,
                compression: CompressionMode::FourGranularity,
                pbs: true,
            },
        ),
        (
            "FastSwap w/o PBS",
            SystemKind::FastSwap {
                ratio: DistributionRatio::FS_SM,
                compression: CompressionMode::FourGranularity,
                pbs: false,
            },
        ),
        ("Infiniswap", SystemKind::Infiniswap),
        ("Linux", SystemKind::Linux),
    ];

    let mut table = Table::new(
        "Fig. 6 — swap-in dominated completion time by system and workload size",
        &["working set", "FastSwap (PBS)", "FastSwap w/o PBS", "Infiniswap", "Linux", "PBS vs w/o", "PBS vs Linux"],
    );
    // One independent sim per (size, system) cell; fan the grid out and
    // reassemble rows in order.
    let cells_grid: Vec<(u64, SystemKind)> = SIZES
        .into_iter()
        .flat_map(|pages| systems.iter().map(move |&(_, kind)| (pages, kind)))
        .collect();
    let grid_times = par_map(cells_grid, |_, (pages, kind)| {
        let mut scale = base.clone();
        scale.working_set_pages = pages;
        run(kind, &scale)
    });
    for (row_idx, pages) in SIZES.into_iter().enumerate() {
        let mut cells = vec![format!("{pages} pages ({} MiB)", pages * 4096 / (1 << 20))];
        let mut times = Vec::new();
        for col in 0..systems.len() {
            let ns = grid_times[row_idx * systems.len() + col];
            times.push(ns);
            cells.push(format!("{:.1} ms", ns as f64 / 1e6));
        }
        cells.push(speedup(times[1], times[0]));
        cells.push(speedup(times[3], times[0]));
        table.row(cells);
    }
    table.emit("fig6");
    println!("\nShape check (paper): FastSwap+PBS fastest at every size, w/o PBS next,");
    println!("then Infiniswap, with Linux orders of magnitude behind.");
}
