//! Extension (§III): key-value caching as a killer application.
//!
//! A cache that drops cold entries must re-fetch them from the backing
//! database (milliseconds); one that demotes them into disaggregated
//! memory serves them in microseconds. This experiment serves the same
//! zipf-skewed read stream against both designs at several hot-set sizes.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_kv_cache`
//! (`--smoke` runs a reduced, CI-sized sweep and writes
//! `results/ext_kv_cache_smoke.csv` instead). Both modes self-assert the
//! acceptance bound — the disaggregated overflow tier must beat the
//! drop-cold design by >= 5x at the smallest hot set — and exit nonzero
//! on failure.

use dmem_bench::{par_map, Table};
use dmem_core::DisaggregatedMemory;
use dmem_kv::KvCache;
use dmem_sim::{CostModel, DetRng, SimDuration};
use dmem_types::{ByteSize, ClusterConfig};
use dmem_workloads::ZipfSampler;
use std::process::ExitCode;
use std::sync::Arc;

const VALUE: usize = 1024;

/// Sweep dimensions; `--smoke` shrinks them for the CI golden check.
struct Scale {
    keys: usize,
    ops: usize,
    hot_sizes: &'static [u64],
    csv_name: &'static str,
}

const FULL: Scale = Scale {
    keys: 2_000,
    ops: 10_000,
    hot_sizes: &[64, 128, 256, 512],
    csv_name: "ext_kv_cache",
};

const SMOKE: Scale = Scale {
    keys: 600,
    ops: 2_000,
    hot_sizes: &[64, 256],
    csv_name: "ext_kv_cache_smoke",
};

/// Runs the read stream; `drop_cold` models a conventional cache that
/// discards evicted entries — any read not served by the hot set pays a
/// backing-database fetch.
fn run(hot_kib: u64, drop_cold: bool, keys: usize, ops: usize) -> (f64, f64) {
    let dm = Arc::new(DisaggregatedMemory::new(ClusterConfig::small()).unwrap());
    let server = dm.servers()[0];
    let clock = dm.clock().clone();
    let mut cache = KvCache::new(Arc::clone(&dm), server, ByteSize::from_kib(hot_kib));
    for key in 0..keys {
        cache
            .set(&format!("object:{key}"), vec![key as u8; VALUE])
            .unwrap();
    }
    let zipf = ZipfSampler::new(keys, 0.99);
    let mut rng = DetRng::new(7);
    let backing_fetch = SimDuration::from_millis(1); // database round trip
    let mut misses = 0u64;
    let t0 = clock.now();
    for _ in 0..ops {
        let key = format!("object:{}", zipf.sample(&mut rng));
        if drop_cold {
            // Only hot-set hits count; anything else is a database fetch.
            let hot_hits_before = cache.stats().hot_hits;
            let value = cache.get(&key).unwrap();
            let was_hot = cache.stats().hot_hits > hot_hits_before;
            if value.is_none() || !was_hot {
                clock.advance(backing_fetch);
                misses += 1;
            }
        } else if cache.get(&key).unwrap().is_none() {
            clock.advance(backing_fetch);
            misses += 1;
        }
    }
    let elapsed = clock.now() - t0;
    (
        ops as f64 / elapsed.as_secs_f64(),
        misses as f64 / ops as f64,
    )
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let _ = CostModel::paper_default();
    let mut table = Table::new(
        "Extension — KV cache: drop-cold vs disaggregated-memory overflow (zipf reads)",
        &["hot set", "drop-cold ops/s", "drop-cold DB fetches", "disaggregated ops/s", "disaggregated DB fetches", "speedup"],
    );
    let results = par_map(scale.hot_sizes.to_vec(), |_, hot_kib| {
        (
            run(hot_kib, true, scale.keys, scale.ops),
            run(hot_kib, false, scale.keys, scale.ops),
        )
    });
    let mut speedups = Vec::new();
    for (hot_kib, ((drop_tput, drop_miss), (dm_tput, dm_miss))) in
        scale.hot_sizes.iter().zip(results)
    {
        speedups.push(dm_tput / drop_tput);
        table.row([
            ByteSize::from_kib(*hot_kib).to_string(),
            format!("{drop_tput:.0}"),
            format!("{:.1}%", drop_miss * 100.0),
            format!("{dm_tput:.0}"),
            format!("{:.1}%", dm_miss * 100.0),
            format!("{:.1}x", dm_tput / drop_tput),
        ]);
    }
    table.emit(scale.csv_name);
    println!("\nReading: the smaller the hot set, the more a conventional cache pays the");
    println!("backing database for cold keys; the disaggregated overflow tier turns those");
    println!("misses into microsecond fetches — the §III killer-app argument.");

    // Acceptance, enforced so CI fails loudly if the overflow tier stops
    // paying off: at the smallest (most overflow-bound) hot set the
    // disaggregated design must beat drop-cold by a wide margin.
    if speedups[0] >= 5.0 {
        println!("kv cache: PASS ({:.1}x at the smallest hot set)", speedups[0]);
        ExitCode::SUCCESS
    } else {
        println!(
            "kv cache: FAIL ({:.1}x at the smallest hot set, need >= 5x)",
            speedups[0]
        );
        ExitCode::FAILURE
    }
}
