//! Ablation (§IV-C): group size vs per-node memory-map overhead.
//!
//! Reproduces the paper's scalability arithmetic — a flat cluster-wide
//! map costs gigabytes per node (5 GB for 2 TB of cluster memory at 8 B
//! per 4 KiB entry); hierarchical groups bound the map to the group.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ablation_groups`

use dmem_bench::Table;
use dmem_cluster::{map_overhead_bytes, GroupTable};
use dmem_types::{ByteSize, NodeId};

fn main() {
    // The paper's arithmetic first.
    let mut headline = Table::new(
        "§IV-C arithmetic — flat memory-map overhead per node",
        &["cluster disaggregated memory", "entry", "metadata/entry", "map per node"],
    );
    for (total, label) in [
        (ByteSize::from_gib(2 * 1024), "2 TB"),
        (ByteSize::from_gib(10 * 1024), "10 TB"),
    ] {
        headline.row([
            label.to_owned(),
            "4 KiB".to_owned(),
            "8 B".to_owned(),
            map_overhead_bytes(total, 4096, 8).to_string(),
        ]);
    }
    headline.emit("ablation_groups_arithmetic");

    // Group-size sweep on a 256-node cluster of 64 GiB nodes.
    let nodes: Vec<NodeId> = (0..256).map(NodeId::new).collect();
    let per_node = ByteSize::from_gib(64);
    let mut table = Table::new(
        "Ablation — group size vs per-node map overhead (256 nodes × 64 GiB)",
        &["group size", "groups", "map per node", "sharable pool per group"],
    );
    for group_size in [4usize, 8, 16, 32, 64, 128, 256] {
        let groups = GroupTable::partition(&nodes, group_size).unwrap();
        table.row([
            group_size.to_string(),
            groups.group_count().to_string(),
            groups.per_node_map_overhead(per_node).to_string(),
            (per_node * group_size as u64).to_string(),
        ]);
    }
    table.emit("ablation_groups");
    println!("\nTrade-off: larger groups share a bigger idle-memory pool but every node");
    println!("pays linearly more map metadata; the paper's remedy is 2+ tier grouping.");
}
