//! Ablation: cost-model sensitivity — do the paper's orderings survive
//! when the simulated hardware changes?
//!
//! DESIGN.md commits every latency constant to one module precisely so
//! this sweep can vary them. We scale the RDMA base latency (faster and
//! slower fabrics) and re-run the Fig. 7 comparison; the claim under test
//! is the paper's own: disaggregation pays off exactly while the
//! DRAM ≪ network ≪ disk hierarchy holds.
//!
//! The engine layer reads its cost model through `CostModel::paper_default`
//! per system, so this ablation instead varies the *workload-visible*
//! proxy: per-access compute. Rising compute simulates a slower fabric
//! relative to the application (the ratios compress toward 1), falling
//! compute simulates a faster application (ratios widen).
//!
//! Run with: `cargo run --release -p dmem-bench --bin ablation_costmodel`

use dmem_bench::{par_map, speedup, Table};
use dmem_sim::SimDuration;
use dmem_swap::{run_ml_workload, SwapScale, SystemKind};

fn main() {
    let mut table = Table::new(
        "Ablation — compute intensity vs system orderings (KMeans @50%)",
        &["compute/access", "Linux", "Infiniswap", "FastSwap", "FS vs Linux", "FS vs Inf"],
    );
    let sweep = [1u64, 2, 6, 20, 60];
    let results = par_map(sweep.to_vec(), |_, micros| {
        let mut scale = SwapScale::bench();
        scale.compute_per_access = SimDuration::from_micros(micros);
        let linux = run_ml_workload(SystemKind::Linux, "KMeans", &scale).unwrap();
        let inf = run_ml_workload(SystemKind::Infiniswap, "KMeans", &scale).unwrap();
        let fast = run_ml_workload(SystemKind::fastswap_default(), "KMeans", &scale).unwrap();
        (linux, inf, fast)
    });
    for (micros, (linux, inf, fast)) in sweep.into_iter().zip(results) {
        assert!(
            fast.completion <= inf.completion && inf.completion <= linux.completion,
            "ordering must hold at {micros}us"
        );
        table.row([
            format!("{micros} us"),
            linux.completion.to_string(),
            inf.completion.to_string(),
            fast.completion.to_string(),
            speedup(linux.completion.as_nanos(), fast.completion.as_nanos()),
            speedup(inf.completion.as_nanos(), fast.completion.as_nanos()),
        ]);
    }
    table.emit("ablation_costmodel");
    println!("\nExpectation: the FastSwap < Infiniswap < Linux ordering holds at every");
    println!("compute intensity; the speedup *magnitudes* compress as the application");
    println!("itself dominates — which is why the paper's absolute factors are");
    println!("workload-dependent while the ordering is not.");
}
