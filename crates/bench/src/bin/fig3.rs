//! Fig. 3: compression ratio for 10 ML workloads — FastSwap with 2 and 4
//! compression granularities vs zswap.
//!
//! For each workload we synthesize a population of pages at the
//! workload's compressibility profile, then account storage exactly as
//! each system does: FastSwap rounds each compressed page up to its size
//! class; zswap packs exact compressed bytes into zbud frames (at most
//! two buddies per 4 KiB frame, so its effective ratio caps at 2).
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig3`

use dmem_bench::{par_map, Table};
use dmem_compress::{synth, PageCodec, ZswapCache};
use dmem_sim::DetRng;
use dmem_types::CompressionMode;
use dmem_workloads::catalog;

const PAGES_PER_WORKLOAD: usize = 512;

fn main() {
    let mut table = Table::new(
        "Fig. 3 — compression ratio of 10 ML workloads (higher is better)",
        &["workload", "profile", "FastSwap 2-gran", "FastSwap 4-gran", "zswap (zbud)"],
    );
    let two = PageCodec::new(CompressionMode::TwoGranularity);
    let four = PageCodec::new(CompressionMode::FourGranularity);

    let mut means = (0.0, 0.0, 0.0);
    let suite = catalog::fig3_ml_suite();
    // Per-workload page populations are independent (each forks its own
    // rng stream): compute the three ratios in parallel, render in order.
    let ratios = par_map(suite.clone(), |_, app| {
        let mut rng = DetRng::new(0xF163).fork(app.name);
        let pages: Vec<Vec<u8>> = (0..PAGES_PER_WORKLOAD)
            .map(|_| synth::page_mixture(app.compress_mean, app.compress_spread, synth::DEFAULT_ZERO_FRACTION, &mut rng))
            .collect();

        let r2 = two.aggregate_ratio(pages.iter().map(Vec::as_slice));
        let r4 = four.aggregate_ratio(pages.iter().map(Vec::as_slice));

        // zswap: insert everything, count frames + rejected pages (which
        // sit uncompressed on the swap device).
        let mut cache = ZswapCache::new(PAGES_PER_WORKLOAD); // never evicts
        for (i, page) in pages.iter().enumerate() {
            let _ = cache.insert(i as u64, four.compress(page));
        }
        let stats = cache.stats();
        let stored_frames = stats.frames as f64 + stats.rejected as f64; // rejected = 1 frame each
        let rz = PAGES_PER_WORKLOAD as f64 / stored_frames.max(1.0);
        (r2, r4, rz)
    });
    for (app, (r2, r4, rz)) in suite.iter().zip(ratios) {
        means.0 += r2;
        means.1 += r4;
        means.2 += rz;
        table.row([
            app.name.to_owned(),
            format!("{:.1}x ± {:.1}", app.compress_mean, app.compress_spread),
            format!("{r2:.2}"),
            format!("{r4:.2}"),
            format!("{rz:.2}"),
        ]);
    }
    let n = suite.len() as f64;
    table.row([
        "MEAN".to_owned(),
        String::new(),
        format!("{:.2}", means.0 / n),
        format!("{:.2}", means.1 / n),
        format!("{:.2}", means.2 / n),
    ]);
    table.emit("fig3");
    println!("\nShape check (paper): 4-granularity ≥ 2-granularity on every workload,");
    println!("and both beat zswap's zbud-capped ratio on compressible workloads.");
}
