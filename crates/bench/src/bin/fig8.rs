//! Fig. 8: throughput of Redis, Memcached and VoltDB at the 50%
//! configuration while varying the node-level/cluster-level distribution
//! ratio of disaggregated memory: FS-SM, FS-9:1, FS-7:3, FS-5:5, FS-RDMA,
//! against Linux, Infiniswap and NBDX.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig8`

use dmem_bench::{par_map, Table};
use dmem_swap::{run_kv_throughput, SwapScale, SystemKind};
use dmem_types::{CompressionMode, DistributionRatio};

const OPS: usize = 20_000;

fn fastswap(ratio: DistributionRatio) -> SystemKind {
    SystemKind::FastSwap {
        ratio,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    }
}

fn main() {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;

    let mut columns: Vec<(String, SystemKind)> = vec![
        ("Linux".into(), SystemKind::Linux),
        ("Infiniswap".into(), SystemKind::Infiniswap),
        ("NBDX".into(), SystemKind::Nbdx),
    ];
    for ratio in DistributionRatio::FIG8_SWEEP {
        columns.push((ratio.to_string(), fastswap(ratio)));
    }

    let header: Vec<String> = std::iter::once("workload".to_owned())
        .chain(columns.iter().map(|(label, _)| format!("{label} (ops/s)")))
        .chain(["FS-SM/Linux".to_owned(), "FS-SM/Infiniswap".to_owned()])
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Fig. 8 — KV throughput vs disaggregated memory distribution ratio (@50%)",
        &header_refs,
    );

    let workloads = ["Redis", "Memcached", "VoltDB"];
    // The full workload × system grid is independent sims.
    let grid: Vec<(&str, SystemKind)> = workloads
        .iter()
        .flat_map(|&w| columns.iter().map(move |(_, kind)| (w, *kind)))
        .collect();
    let throughputs = par_map(grid, |_, (workload, kind)| {
        run_kv_throughput(kind, workload, &scale, OPS).unwrap().0
    });
    for (row_idx, workload) in workloads.into_iter().enumerate() {
        let mut cells = vec![workload.to_owned()];
        let mut linux = 0.0f64;
        let mut inf = 0.0f64;
        let mut fs_sm = 0.0f64;
        for (col, (label, _)) in columns.iter().enumerate() {
            let throughput = throughputs[row_idx * columns.len() + col];
            match label.as_str() {
                "Linux" => linux = throughput,
                "Infiniswap" => inf = throughput,
                "FS-SM" => fs_sm = throughput,
                _ => {}
            }
            cells.push(format!("{throughput:.0}"));
        }
        cells.push(format!("{:.0}x", fs_sm / linux.max(1e-9)));
        cells.push(format!("{:.1}x", fs_sm / inf.max(1e-9)));
        table.row(cells);
    }
    table.emit("fig8");
    println!("\nShape check (paper): throughput decreases monotonically from FS-SM to");
    println!("FS-RDMA; FS-SM beats Linux by triple-digit factors (paper: up to 571x for");
    println!("Redis) and Infiniswap by large factors; even FS-RDMA beats Infiniswap/NBDX.");
}
