//! Extension (§VI): an NVM tier in the disaggregated memory hierarchy.
//!
//! The paper closes by asking which "combination of memory, networking,
//! and storage technologies" each workload wants. This experiment adds a
//! byte-addressable NVM (3D XPoint class) tier between the node shared
//! pool and remote memory, and asks the paper's own question: when does
//! **local NVM** beat **remote DRAM** as the overflow tier?
//!
//! Sweep 1 holds the fabric fixed and varies where overflow goes.
//! Sweep 2 re-prices the page: NVM wins on latency (no verbs, no
//! replication) while remote DRAM wins on bandwidth — so the crossover
//! moves with access granularity.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_nvm_tier`

use dmem_bench::{par_map, Table};
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_sim::CostModel;
use dmem_types::{ByteSize, ClusterConfig, CompressionMode, DonationPolicy};

fn cluster(nvm: ByteSize) -> DisaggregatedMemory {
    let mut config = ClusterConfig::small();
    config.nodes = 6;
    config.group_size = 6;
    config.server.donation = DonationPolicy::fixed(0.0); // no shared pool
    config.node.nvm_pool = nvm;
    config.compression = CompressionMode::Off;
    DisaggregatedMemory::new(config).unwrap()
}

fn main() {
    const PAGES: u64 = 256;

    // Sweep 1: overflow destination vs total cost for a write+read cycle
    // of 256 pages.
    let mut table = Table::new(
        "Extension — overflow tier cost: local NVM vs triple-replicated remote DRAM vs disk",
        &["tier", "store 256 pages", "load 256 pages", "total"],
    );
    let tiers = [
        ("local NVM", TierPreference::Nvm, ByteSize::from_mib(4)),
        ("remote DRAM (r=3)", TierPreference::Remote, ByteSize::ZERO),
        ("disk", TierPreference::Disk, ByteSize::ZERO),
    ];
    let results = par_map(tiers.to_vec(), |_, (_, pref, nvm_pool)| {
        let dm = cluster(nvm_pool);
        let server = dm.servers()[0];
        let t0 = dm.clock().now();
        for key in 0..PAGES {
            dm.put_pref(server, key, vec![key as u8; 4096], pref).unwrap();
        }
        let store = dm.clock().now() - t0;
        let t1 = dm.clock().now();
        for key in 0..PAGES {
            dm.get(server, key).unwrap();
        }
        let load = dm.clock().now() - t1;
        (store, load)
    });
    for ((label, _, _), (store, load)) in tiers.into_iter().zip(results) {
        table.row([
            label.to_owned(),
            store.to_string(),
            load.to_string(),
            (store + load).to_string(),
        ]);
    }
    table.emit("ext_nvm_tier");

    // Sweep 2: per-access cost of NVM vs one remote RDMA read as transfer
    // size grows — the §VI crossover.
    let cost = CostModel::paper_default();
    let mut crossover = Table::new(
        "Extension — NVM vs remote DRAM per access (device model)",
        &["transfer size", "local NVM", "remote RDMA read", "winner"],
    );
    for kib in [1usize, 4, 16, 64, 256, 1024] {
        let bytes = kib * 1024;
        let nvm = cost.nvm.transfer(bytes);
        let rdma = cost.rdma.transfer(bytes);
        crossover.row([
            ByteSize::from(bytes).to_string(),
            nvm.to_string(),
            rdma.to_string(),
            if nvm <= rdma { "NVM" } else { "remote DRAM" }.to_owned(),
        ]);
    }
    crossover.emit("ext_nvm_crossover");
    println!("\nReading: local NVM wins small (latency-bound) accesses — no verbs, no");
    println!("replication — while remote DRAM's 5 GB/s overtakes NVM's 2 GB/s on large");
    println!("transfers. Which tier a workload wants is exactly the paper's §VI question.");
}
