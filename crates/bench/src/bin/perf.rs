//! Wall-clock regression harness for the simulator's hot paths.
//!
//! Unlike the `fig*` binaries — whose output is *virtual* time and thus
//! independent of host speed — this harness measures real elapsed time
//! for three representative scenarios and writes
//! `results/BENCH_perf.json`:
//!
//! * `fig4_paging_sweep` — the Fig. 4 compressibility sweep (paging
//!   engine + FastSwap backend + compression, the fault-loop hot path);
//! * `fig10_rdd` — the Fig. 10 Spark-vs-DAHI job grid (RDD cache,
//!   spill/recompute path);
//! * `chaos_32_seeds` — the chaos harness over 32 seeds (whole-cluster
//!   put/get/failure churn).
//!
//! Modes:
//!
//! * default — run the full scenarios and write `results/BENCH_perf.json`;
//! * `--quick` — smaller variants (same code paths) for CI;
//! * `--check <baseline.json>` — after running, compare each scenario's
//!   wall time against the named baseline and fail (exit 1) on a gross
//!   (> 3x) regression. The wide tolerance absorbs host noise; it exists
//!   to catch accidental O(n log n) → O(n²) regressions, not percent-level
//!   drift.
//!
//! Scenarios always run sequentially (jobs=1) so wall numbers are stable
//! and comparable across machines with different core counts.

use dmem_bench::speedup;
use dmem_rdd::job::{run_iterative_job, DatasetSize, JobSpec, SpillTier};
use dmem_swap::{build_system_with_pages, SwapScale, SystemKind};
use dmem_types::{ByteSize, CompressionMode, DistributionRatio};
use dmem_workloads::{catalog, TraceConfig};
use memory_disaggregation::chaos::{run_seed, ChaosSettings};
use memory_disaggregation::sim::ChaosConfig;
use std::fmt::Write as _;
use std::time::Instant;

struct Measurement {
    scenario: &'static str,
    wall_ms: f64,
    faults_per_s: f64,
    pages_per_s: f64,
}

fn fig4_paging_sweep(quick: bool) -> Measurement {
    let ratios: &[f64] = if quick { &[2.0] } else { &[1.3, 2.0, 3.0, 4.5] };
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    scale.shared_donation = 0.25;
    scale.remote_pool = ByteSize::from_mib(1);
    if quick {
        scale.working_set_pages = 512;
    }

    let mut faults = 0u64;
    let mut accesses = 0u64;
    let t0 = Instant::now();
    for &ratio in ratios {
        let kind = SystemKind::FastSwap {
            ratio: DistributionRatio::FS_SM,
            compression: CompressionMode::FourGranularity,
            pbs: true,
        };
        let mut engine = build_system_with_pages(kind, &scale, ratio, 0.4).unwrap();
        let profile = catalog::by_name("LogisticRegression").unwrap();
        let trace = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);
        let (stats, _) = engine.run(trace).unwrap();
        faults += stats.major_faults;
        accesses += stats.accesses;
    }
    let wall = t0.elapsed().as_secs_f64();
    Measurement {
        scenario: "fig4_paging_sweep",
        wall_ms: wall * 1e3,
        faults_per_s: faults as f64 / wall.max(1e-9),
        pages_per_s: accesses as f64 / wall.max(1e-9),
    }
}

fn fig10_rdd(quick: bool) -> Measurement {
    let sizes: &[DatasetSize] = if quick {
        &[DatasetSize::Small]
    } else {
        &DatasetSize::ALL
    };
    let mut spill_pages = 0u64;
    let t0 = Instant::now();
    for spec in JobSpec::fig10_suite() {
        for &size in sizes {
            let vanilla = run_iterative_job(&spec, size, SpillTier::VanillaDisk).unwrap();
            let dahi = run_iterative_job(&spec, size, SpillTier::Dahi).unwrap();
            spill_pages += vanilla.cache.spills + dahi.cache.spills;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    Measurement {
        scenario: "fig10_rdd",
        wall_ms: wall * 1e3,
        faults_per_s: 0.0,
        pages_per_s: spill_pages as f64 / wall.max(1e-9),
    }
}

fn chaos_sweep(quick: bool) -> Measurement {
    let seeds: u64 = if quick { 8 } else { 32 };
    let config = ChaosConfig::default();
    let settings = ChaosSettings::default();
    let t0 = Instant::now();
    let mut failures = 0u64;
    for seed in 0..seeds {
        if run_seed(seed, &config, &settings).is_err() {
            failures += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(failures, 0, "chaos invariants must hold during perf runs");
    Measurement {
        scenario: "chaos_32_seeds",
        wall_ms: wall * 1e3,
        faults_per_s: 0.0,
        pages_per_s: seeds as f64 / wall.max(1e-9),
    }
}

fn render_json(results: &[Measurement]) -> String {
    let mut out = String::from("[\n");
    for (i, m) in results.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"scenario\": \"{}\", \"wall_ms\": {:.1}, \"faults_per_s\": {:.0}, \"pages_per_s\": {:.0}}}",
            m.scenario, m.wall_ms, m.faults_per_s, m.pages_per_s
        );
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Pulls `(scenario, wall_ms)` pairs out of a `BENCH_perf.json`-shaped
/// file without a JSON dependency: the writer above emits one object per
/// line with `"scenario"` before `"wall_ms"`.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(s0) = line.find("\"scenario\"") else {
            continue;
        };
        let rest = &line[s0 + "\"scenario\"".len()..];
        let Some(name) = rest.split('"').nth(1) else {
            continue;
        };
        let Some(w0) = line.find("\"wall_ms\"") else {
            continue;
        };
        let after = &line[w0 + "\"wall_ms\"".len()..];
        let number: String = after
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        if let Ok(ms) = number.parse::<f64>() {
            out.push((name.to_owned(), ms));
        }
    }
    out
}

const TOLERANCE: f64 = 3.0;

fn main() {
    let mut quick = false;
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => baseline_path = Some(args.next().expect("--check needs a path")),
            other => panic!("unknown argument {other} (usage: perf [--quick] [--check BASELINE])"),
        }
    }

    let results = vec![fig4_paging_sweep(quick), fig10_rdd(quick), chaos_sweep(quick)];

    println!("== perf — wall-clock scenarios{} ==", if quick { " (quick)" } else { "" });
    for m in &results {
        println!(
            "{:>20}: {:>9.1} ms  ({:.0} faults/s, {:.0} pages/s)",
            m.scenario, m.wall_ms, m.faults_per_s, m.pages_per_s
        );
    }

    let out_name = if quick { "BENCH_perf_quick.json" } else { "BENCH_perf.json" };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{out_name}");
    std::fs::write(&path, render_json(&results)).expect("write perf json");
    println!("[written {path}]");

    if let Some(baseline_path) = baseline_path {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text);
        let mut failed = false;
        for m in &results {
            match baseline.iter().find(|(name, _)| name == m.scenario) {
                Some((_, base_ms)) => {
                    let factor = m.wall_ms / base_ms.max(1e-9);
                    let verdict = if factor > TOLERANCE { "REGRESSION" } else { "ok" };
                    println!(
                        "check {:>20}: {:.1} ms vs baseline {:.1} ms ({} slower-by, limit {TOLERANCE}x): {verdict}",
                        m.scenario,
                        m.wall_ms,
                        base_ms,
                        speedup((m.wall_ms * 1e6) as u64, (base_ms * 1e6) as u64),
                    );
                    failed |= factor > TOLERANCE;
                }
                None => {
                    println!("check {:>20}: no baseline entry, skipping", m.scenario);
                }
            }
        }
        if failed {
            eprintln!("perf: gross wall-clock regression (> {TOLERANCE}x) detected");
            std::process::exit(1);
        }
    }
}
