//! Table 3: the ten memory-intensive applications used in §V.
//!
//! Run with: `cargo run --release -p dmem-bench --bin table3`

use dmem_bench::Table;
use dmem_workloads::{catalog, AppKind};

fn main() {
    let mut table = Table::new(
        "Table 3 — applications used in experiments (paper: working sets 25-30 GB, inputs 12-20 GB)",
        &["application", "kind", "working set", "input", "iterations/mix", "page compressibility"],
    );
    for app in catalog::table3() {
        let (kind, structure) = match app.kind {
            AppKind::IterativeMl { iterations } => {
                ("iterative ML/graph".to_owned(), format!("{iterations} iterations"))
            }
            AppKind::KeyValue { read_fraction } => (
                "key-value / OLTP".to_owned(),
                format!("{:.0}% reads", read_fraction * 100.0),
            ),
        };
        table.row([
            app.name.to_owned(),
            kind,
            app.working_set.to_string(),
            app.input_size.to_string(),
            structure,
            format!("{:.1}x ± {:.1}", app.compress_mean, app.compress_spread),
        ]);
    }
    table.emit("table3");
}
