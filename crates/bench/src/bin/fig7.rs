//! Fig. 7: machine-learning workload comparison — completion time of
//! FastSwap vs Infiniswap vs Linux for PageRank, LogisticRegression,
//! TunkRank, KMeans and SVM at the 75% and 50% configurations, with the
//! paper's headline speedup aggregates.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig7`

use dmem_bench::{par_map, speedup, Table};
use dmem_swap::{run_ml_workload, SwapScale, SystemKind};

const WORKLOADS: [&str; 5] = ["PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"];

fn main() {
    let base = SwapScale::bench();
    for (fraction, label) in [(0.75, "75%"), (0.50, "50%")] {
        let scale = base.with_fraction(fraction);
        let mut table = Table::new(
            &format!("Fig. 7 — ML workloads @{label} (completion time)"),
            &["workload", "Linux", "Infiniswap", "FastSwap", "vs Linux", "vs Infiniswap"],
        );
        let mut vs_linux: Vec<f64> = Vec::new();
        let mut vs_inf: Vec<f64> = Vec::new();
        let results = par_map(WORKLOADS.to_vec(), |_, workload| {
            let linux = run_ml_workload(SystemKind::Linux, workload, &scale).unwrap();
            let inf = run_ml_workload(SystemKind::Infiniswap, workload, &scale).unwrap();
            let fast = run_ml_workload(SystemKind::fastswap_default(), workload, &scale).unwrap();
            (linux, inf, fast)
        });
        for (workload, (linux, inf, fast)) in WORKLOADS.into_iter().zip(results) {
            vs_linux
                .push(linux.completion.as_nanos() as f64 / fast.completion.as_nanos() as f64);
            vs_inf.push(inf.completion.as_nanos() as f64 / fast.completion.as_nanos() as f64);
            table.row([
                workload.to_owned(),
                linux.completion.to_string(),
                inf.completion.to_string(),
                fast.completion.to_string(),
                speedup(linux.completion.as_nanos(), fast.completion.as_nanos()),
                speedup(inf.completion.as_nanos(), fast.completion.as_nanos()),
            ]);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        table.row([
            "AVG / MAX".to_owned(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.0}x / {:.0}x", mean(&vs_linux), max(&vs_linux)),
            format!("{:.1}x / {:.1}x", mean(&vs_inf), max(&vs_inf)),
        ]);
        table.emit(&format!("fig7_{}", label.trim_end_matches('%')));
    }
    println!("\nPaper reference points: @75% FastSwap averages 24x over Linux (max 83x)");
    println!("and 2.3x over Infiniswap; @50% it averages 45x (max 85x) and 2.6x.");
    println!("Shape check: ordering holds everywhere, speedups grow with pressure.");
}
