//! Ablation (§IV-D): replication degree — write amplification vs
//! availability under node failures.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ablation_replication`

use dmem_bench::{par_map, Table};
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_sim::{DetRng, FailureEvent};
use rand::RngCore;
use dmem_types::{
    ByteSize, ClusterConfig, DonationPolicy, ReplicationFactor,
};

const ENTRIES: u64 = 200;
const KILL_NODES: usize = 2;

fn run(factor: usize) -> (f64, f64, f64) {
    let mut config = ClusterConfig::small();
    config.nodes = 8;
    config.group_size = 8;
    config.replication = ReplicationFactor::new(factor).unwrap();
    config.server.donation = DonationPolicy::fixed(0.0); // remote only
    config.node.recv_pool = ByteSize::from_mib(8);
    let dm = DisaggregatedMemory::new(config).unwrap();
    let server = dm.servers()[0];

    let t0 = dm.clock().now();
    let mut payload_rng = DetRng::new(1);
    for key in 0..ENTRIES {
        // Incompressible payloads so stored bytes reflect replication, not
        // the codec.
        let mut page = vec![0u8; 4096];
        payload_rng.fill_bytes(&mut page);
        dm.put_pref(server, key, page, TierPreference::Remote)
            .unwrap();
    }
    let write_time = (dm.clock().now() - t0).as_millis_f64();

    // Kill two random remote nodes (never the owner's).
    let mut rng = DetRng::new(99);
    let candidates: Vec<_> = dm
        .membership()
        .nodes()
        .iter()
        .copied()
        .filter(|n| *n != server.node())
        .collect();
    for idx in rng.sample_indices(candidates.len(), KILL_NODES) {
        dm.failures()
            .inject_now(FailureEvent::NodeDown(candidates[idx]));
    }

    let mut readable = 0u64;
    for key in 0..ENTRIES {
        if dm.get(server, key).is_ok() {
            readable += 1;
        }
    }
    let remote_bytes = dm
        .membership()
        .nodes()
        .iter()
        .map(|&n| {
            dm.remote_store()
                .stats(n)
                .map(|s| s.capacity.as_u64() - s.free.as_u64())
                .unwrap_or(0)
        })
        .sum::<u64>() as f64;
    (
        write_time,
        remote_bytes / (ENTRIES as f64 * 4096.0),
        readable as f64 / ENTRIES as f64,
    )
}

fn main() {
    let mut table = Table::new(
        "Ablation — replication degree: cost vs availability (8 nodes, 2 crashed)",
        &["replicas", "write time (200 pages)", "storage amplification", "readable after 2 crashes"],
    );
    let factors = [1usize, 2, 3];
    let results = par_map(factors.to_vec(), |_, factor| run(factor));
    for (factor, (write_ms, amplification, availability)) in factors.into_iter().zip(results) {
        table.row([
            format!("r={factor}"),
            format!("{write_ms:.2} ms"),
            format!("{amplification:.2}x"),
            format!("{:.1}%", availability * 100.0),
        ]);
    }
    table.emit("ablation_replication");
    println!("\nExpectation: triple replication (the paper's HDFS-style choice) costs ~3x");
    println!("the writes and bytes of r=1 but keeps every entry readable through the");
    println!("double failure, where r=1 loses a large fraction.");
}
