//! Extension (§IV-C): two-tier hierarchical grouping with leader-
//! coordinated leases.
//!
//! A group whose disaggregated memory runs dry can either spill to disk
//! (flat grouping) or consult the tier-2 super-group and lease nodes from
//! a sibling group. This experiment fills group 0's pools and measures
//! where the next 64 pages land and what they cost, with and without the
//! federation.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_federation`

use dmem_bench::{par_map, Table};
use dmem_cluster::{
    ClusterMembership, Federation, GroupTable, LeaderElection, Placer, RemoteStore, Replicator,
};
use dmem_net::Fabric;
use dmem_sim::{CostModel, DetRng, FailureInjector, SimClock, SimDuration};
use dmem_types::{
    ByteSize, EntryId, NodeId, PlacementStrategy, ReplicationFactor, ServerId,
};
use std::sync::Arc;

const NODES: u32 = 8;
const GROUP: usize = 4;
const PAGES: u64 = 64;

struct World {
    clock: SimClock,
    membership: ClusterMembership,
    store: Arc<RemoteStore>,
    replicator: Replicator,
    federation: Federation,
}

fn world() -> World {
    let clock = SimClock::new();
    let failures = FailureInjector::new(clock.clone());
    let fabric = Fabric::new(clock.clone(), CostModel::paper_default(), failures.clone());
    let ids: Vec<NodeId> = (0..NODES).map(NodeId::new).collect();
    let membership = ClusterMembership::new(ids.clone(), failures);
    let store =
        Arc::new(RemoteStore::new(fabric, membership.clone(), ByteSize::from_kib(256)).unwrap());
    let placer = Placer::new(
        PlacementStrategy::PowerOfTwoChoices,
        membership.clone(),
        DetRng::new(1),
    );
    let replicator = Replicator::new(Arc::clone(&store), placer, ReplicationFactor::TRIPLE);
    let groups = GroupTable::partition(&ids, GROUP).unwrap();
    let election = LeaderElection::new(
        membership.clone(),
        clock.clone(),
        SimDuration::from_millis(50),
    );
    let federation = Federation::new(
        membership.clone(),
        clock.clone(),
        groups,
        election,
        SimDuration::from_secs(1),
        3,
    );
    World {
        clock,
        membership,
        store,
        replicator,
        federation,
    }
}

fn exhaust_group_zero(w: &World) {
    // Fill nodes 1-3 (node 0's group peers) completely.
    let filler = ServerId::new(NodeId::new(7), 9);
    for n in 1..GROUP as u32 {
        let mut key = 0;
        while w
            .store
            .store(
                NodeId::new(7),
                NodeId::new(n),
                EntryId::new(filler, (n as u64) << 32 | key),
                vec![0u8; 4096],
            )
            .is_ok()
        {
            key += 1;
        }
    }
}

fn run(with_federation: bool) -> (u64, u64, f64) {
    let w = world();
    exhaust_group_zero(&w);
    let owner = ServerId::new(NodeId::new(0), 0);
    let node = NodeId::new(0);
    let mut remote = 0u64;
    let mut spilled = 0u64;
    let t0 = w.clock.now();
    for key in 0..PAGES {
        let candidates = if with_federation {
            w.federation
                .check_pressure(
                    w.federation.group_of(node).unwrap(),
                    // Node 0's own (unused) pool still counts toward the
                    // group's free memory, so pressure is judged against
                    // more than one node's worth of capacity.
                    ByteSize::from_kib(512),
                )
                .ok();
            w.federation.candidates_for(node).unwrap()
        } else {
            // Flat grouping: only the (full) group peers.
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)]
        };
        match w.replicator.store_replicated(
            node,
            EntryId::new(owner, key),
            &[7u8; 4096],
            Some(&candidates),
        ) {
            Ok(_) => remote += 1,
            Err(_) => {
                // The flat system's fallback: local disk (charged at HDD
                // cost, like the core's tiering would).
                w.clock
                    .advance(CostModel::paper_default().hdd.transfer(4096));
                spilled += 1;
            }
        }
    }
    let elapsed = (w.clock.now() - t0).as_millis_f64();
    let _ = &w.membership;
    (remote, spilled, elapsed)
}

fn main() {
    let mut table = Table::new(
        "Extension — flat grouping vs two-tier federation under group-local exhaustion",
        &["configuration", "pages in remote memory", "pages spilled to disk", "time for 64 pages"],
    );
    let configs = [("flat groups", false), ("two-tier federation", true)];
    let results = par_map(configs.to_vec(), |_, (_, fed)| run(fed));
    for ((label, _), (remote, spilled, ms)) in configs.into_iter().zip(results) {
        table.row([
            label.to_owned(),
            remote.to_string(),
            spilled.to_string(),
            format!("{ms:.2} ms"),
        ]);
    }
    table.emit("ext_federation");
    println!("\nReading: with its own group full, the flat system spills every page to");
    println!("disk; the federation leases sibling-group nodes and keeps the overflow in");
    println!("cluster memory — §IV-C's dynamic re-grouping motivation, quantified.");
}
