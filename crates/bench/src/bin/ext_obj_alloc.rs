//! Extension (ROADMAP item 3): object vs page granularity — the
//! Clio-style access-amplification figure.
//!
//! The paper charges paging-based disaggregation with moving a whole
//! 4 KB page over the fabric to touch a few dozen bytes. This
//! experiment drives the *same* deterministic allocation schedule
//! through two [`ObjectHeap`]s that share the identical dlmalloc-style
//! allocator and differ only in backing granularity:
//!
//! * **object** — one cluster entry per object; a read moves exactly
//!   the framed object, an update is a pure write;
//! * **page** — one entry per 4 KiB page image with read-modify-write,
//!   the paging baseline.
//!
//! Reported per object-size distribution (uniform-small, zipf, mixed):
//! real fabric bytes (the fabric's own `net.*` counters), access
//! amplification (fetched/useful from the `alloc.*` family),
//! fragmentation %, and virtual-clock throughput.
//!
//! Modes:
//!
//! * default — full sweep, writes `results/ext_obj_alloc.csv`;
//! * `--smoke` — reduced CI-sized sweep, writes
//!   `results/ext_obj_alloc_smoke.csv`; both modes self-assert the
//!   acceptance bound (object path moves ≥ 10x fewer fabric bytes than
//!   the page path on uniform-small) and exit nonzero on failure;
//! * `--perf [--check BASELINE]` — wall-clock of both granularities,
//!   written to `results/BENCH_alloc.json`; with `--check`, fail on a
//!   > 3x regression against the committed baseline.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_obj_alloc`

use dmem_alloc::{Granularity, HeapConfig, ObjectHeap};
use dmem_bench::{par_map, Table};
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_sim::DetRng;
use dmem_types::{
    ByteSize, ClusterConfig, CompressionMode, DonationPolicy, NodeConfig, ServerConfig,
};
use dmem_workloads::ZipfSampler;
use std::process::ExitCode;
use std::sync::Arc;

/// Sweep dimensions; `--smoke` shrinks them for the CI golden check.
struct Scale {
    /// Objects allocated up front (in batched windows).
    allocs: usize,
    /// Steady-state ops replayed after the fill.
    ops: usize,
    csv_name: &'static str,
}

const FULL: Scale = Scale {
    allocs: 3000,
    ops: 9000,
    csv_name: "ext_obj_alloc",
};

const SMOKE: Scale = Scale {
    allocs: 300,
    ops: 900,
    csv_name: "ext_obj_alloc_smoke",
};

const DISTRIBUTIONS: [&str; 3] = ["uniform-small", "zipf", "mixed"];

/// All donation to zero and compression off: nothing is absorbed into
/// the node shared pool or shrunk in flight, so the fabric byte
/// counters measure exactly the transfer granularity under test.
fn alloc_cluster() -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        servers_per_node: 2,
        node: NodeConfig {
            dram: ByteSize::from_mib(64),
            slab_size: ByteSize::from_kib(64),
            send_pool: ByteSize::from_kib(512),
            recv_pool: ByteSize::from_mib(24),
            nvm_pool: ByteSize::ZERO,
        },
        server: ServerConfig {
            memory: ByteSize::from_mib(2),
            donation: DonationPolicy::fixed(0.0),
        },
        compression: CompressionMode::Off,
        ..ClusterConfig::small()
    }
}

/// One op of the pre-generated schedule, replayed identically on both
/// granularities so transfer granularity is the only variable.
enum Op {
    /// Read the object at live-list position `i % live`.
    Get(usize),
    /// Overwrite it in place with fresh bytes of its current length.
    Update(usize),
    /// Free it and allocate a replacement of `len` bytes.
    Churn(usize, usize),
}

struct Schedule {
    fill: Vec<Vec<u8>>,
    ops: Vec<Op>,
}

fn payload(rng: &mut DetRng, len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ (rng.below(256) as u8)).collect()
}

/// Object-size draw for one distribution.
fn draw_len(dist: &str, rng: &mut DetRng, zipf: &ZipfSampler) -> usize {
    match dist {
        // The paper's motivating case: a few dozen to a few hundred
        // bytes per object, dwarfed by a 4 KiB page.
        "uniform-small" => 16 + rng.below(240),
        // Zipf-popular ranks map to small objects, the tail to large
        // ones — a skewed heap like real object stores see.
        "zipf" => {
            const PALETTE: [usize; 9] = [30, 62, 126, 254, 510, 1022, 2046, 4094, 8190];
            PALETTE[zipf.sample(rng)]
        }
        // Mixed: mostly small, some mid classes, occasional multi-page
        // runs to exercise coalescing.
        _ => match rng.below(10) {
            0..=5 => 16 + rng.below(240),
            6..=8 => 256 + rng.below(1792),
            _ => 4096 + rng.below(12_288),
        },
    }
}

/// The deterministic schedule for one distribution — generated once,
/// replayed on both granularities.
fn schedule(dist: &str, scale: &Scale) -> Schedule {
    let mut rng = DetRng::new(0xa110c).fork(dist);
    let zipf = ZipfSampler::new(9, 1.15);
    let fill = (0..scale.allocs)
        .map(|_| {
            let len = draw_len(dist, &mut rng, &zipf);
            payload(&mut rng, len)
        })
        .collect();
    let ops = (0..scale.ops)
        .map(|_| {
            let pick = rng.below(1 << 30);
            match rng.below(100) {
                // Read-heavy, like the far-memory workloads the paper
                // surveys.
                0..=54 => Op::Get(pick),
                55..=79 => Op::Update(pick),
                _ => {
                    let len = draw_len(dist, &mut rng, &zipf);
                    Op::Churn(pick, len)
                }
            }
        })
        .collect();
    Schedule { fill, ops }
}

struct RunResult {
    fabric_bytes: u64,
    fetched_bytes: u64,
    useful_bytes: u64,
    frag_pct: f64,
    kops_per_vs: f64,
}

/// Replays one schedule through a fresh cluster + heap at the given
/// granularity and measures real fabric traffic around it.
fn run(dist: &str, granularity: Granularity, scale: &Scale) -> RunResult {
    let sched = schedule(dist, scale);
    let dm = Arc::new(DisaggregatedMemory::new(alloc_cluster()).expect("cluster"));
    let server = dm.servers()[0];
    let config =
        HeapConfig::new(granularity).with_pref(TierPreference::Remote);
    let mut heap = ObjectHeap::new(Arc::clone(&dm), server, config);
    heap.arm_telemetry(dm.metrics());

    // Everything the fabric moves: two-sided control messages plus the
    // one-sided RDMA READ/WRITE payloads the data path rides on.
    let fabric_bytes = |dm: &DisaggregatedMemory| {
        ["net.send.bytes", "net.recv.bytes", "net.write.bytes", "net.read.bytes"]
            .iter()
            .map(|key| dm.fabric().metrics().counter(key).get())
            .sum::<u64>()
    };
    let fabric_before = fabric_bytes(&dm);
    let t0 = dm.clock().now();

    // Fill in batched windows: object mode shares fabric round-trips
    // via the cluster's batched put verb.
    let mut addrs: Vec<u64> = Vec::with_capacity(sched.fill.len());
    for window in sched.fill.chunks(16) {
        addrs.extend(heap.alloc_many(window).expect("fill alloc"));
    }
    // Steady state: replay the op stream against the live list. The
    // current length of every object is tracked locally so updates stay
    // in-slot without an extra read (identical on both granularities).
    let mut lens: Vec<usize> = sched.fill.iter().map(Vec::len).collect();
    let mut churn_tag = 0u8;
    for op in &sched.ops {
        match op {
            Op::Get(pick) => {
                let bytes = heap.get(addrs[pick % addrs.len()]).expect("get");
                std::hint::black_box(bytes);
            }
            Op::Update(pick) => {
                let i = pick % addrs.len();
                let data = vec![churn_tag; lens[i].max(1)];
                churn_tag = churn_tag.wrapping_add(1);
                heap.update(addrs[i], &data).expect("update");
                lens[i] = data.len();
            }
            Op::Churn(pick, len) => {
                let i = pick % addrs.len();
                heap.free(addrs[i]).expect("free");
                let data = vec![churn_tag; *len];
                churn_tag = churn_tag.wrapping_add(1);
                addrs[i] = heap.alloc(&data).expect("realloc");
                lens[i] = *len;
            }
        }
    }

    let elapsed = dm.clock().now().duration_since(t0);
    let stats = heap.stats();
    let total_ops = (scale.allocs + scale.ops) as f64;
    RunResult {
        fabric_bytes: fabric_bytes(&dm) - fabric_before,
        fetched_bytes: stats.fetched_bytes,
        useful_bytes: stats.useful_bytes,
        frag_pct: stats.total_frag_pct(),
        kops_per_vs: total_ops / (elapsed.as_micros_f64() / 1e6) / 1e3,
    }
}

fn amp(r: &RunResult) -> f64 {
    r.fetched_bytes as f64 / (r.useful_bytes as f64).max(1.0)
}

fn sweep(scale: &Scale) -> ExitCode {
    let mut table = Table::new(
        "Extension — object vs page granularity: fabric bytes, amplification, fragmentation (Clio-style figure)",
        &[
            "distribution",
            "objects",
            "ops",
            "obj fabric KiB",
            "page fabric KiB",
            "bytes ratio",
            "obj amp",
            "page amp",
            "obj frag",
            "page frag",
            "obj kops/vs",
            "page kops/vs",
        ],
    );
    let results = par_map(DISTRIBUTIONS.to_vec(), |_, dist| {
        (
            run(dist, Granularity::Object, scale),
            run(dist, Granularity::Page, scale),
        )
    });
    let mut uniform_ratio = 0.0f64;
    for (dist, (obj, page)) in DISTRIBUTIONS.iter().zip(&results) {
        let ratio = page.fabric_bytes as f64 / (obj.fabric_bytes as f64).max(1.0);
        if *dist == "uniform-small" {
            uniform_ratio = ratio;
        }
        table.row([
            (*dist).to_string(),
            scale.allocs.to_string(),
            scale.ops.to_string(),
            format!("{:.0}", obj.fabric_bytes as f64 / 1024.0),
            format!("{:.0}", page.fabric_bytes as f64 / 1024.0),
            format!("{ratio:.1}x"),
            format!("{:.2}x", amp(obj)),
            format!("{:.2}x", amp(page)),
            format!("{:.1}%", obj.frag_pct),
            format!("{:.1}%", page.frag_pct),
            format!("{:.1}", obj.kops_per_vs),
            format!("{:.1}", page.kops_per_vs),
        ]);
    }
    table.emit(scale.csv_name);

    println!("\nReading: both heaps run the identical size-class allocator over the same");
    println!("schedule; only the backing entry granularity differs. The page path drags a");
    println!("4 KiB image through the fabric (read-modify-write on writes) for every touch,");
    println!("the object path moves exactly the framed object — the paper's access-");
    println!("amplification gap, reproduced as real fabric byte counters.");

    // Acceptance (ISSUE 9): on uniform-small the object path must move
    // >= 10x fewer fabric bytes than the page path.
    if uniform_ratio >= 10.0 {
        println!("obj alloc: PASS (page path moves {uniform_ratio:.1}x the fabric bytes on uniform-small)");
        ExitCode::SUCCESS
    } else {
        println!("obj alloc: FAIL (page/object fabric ratio only {uniform_ratio:.1}x on uniform-small, need >= 10x)");
        ExitCode::FAILURE
    }
}

const TOLERANCE: f64 = 3.0;

/// Wall-clock mode: real elapsed time of both granularities on the
/// mixed distribution, `results/BENCH_alloc.json`, compared to a
/// committed baseline with the same gross 3x tolerance as `perf.rs`.
fn perf_mode(check: Option<&str>) -> ExitCode {
    let scenarios: [(&str, Granularity); 2] = [
        ("alloc_object", Granularity::Object),
        ("alloc_page", Granularity::Page),
    ];
    let mut json = String::from("[\n");
    let mut measured: Vec<(&str, f64)> = Vec::new();
    for (i, (name, granularity)) in scenarios.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let result = run("mixed", *granularity, &FULL);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:>14}: {wall_ms:>8.1} ms wall ({:.1} kops/vs, {} KiB fabric)",
            result.kops_per_vs,
            result.fabric_bytes / 1024
        );
        json.push_str(&format!(
            "  {{\"scenario\": \"{name}\", \"wall_ms\": {wall_ms:.1}, \"kops_per_vs\": {:.1}}}{}",
            result.kops_per_vs,
            if i + 1 < scenarios.len() { ",\n" } else { "\n" }
        ));
        measured.push((name, wall_ms));
    }
    json.push_str("]\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_alloc.json", &json).expect("write alloc perf json");
    println!("[written results/BENCH_alloc.json]");

    let Some(baseline_path) = check else {
        return ExitCode::SUCCESS;
    };
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let mut failed = false;
    for (name, wall_ms) in &measured {
        match baseline_wall_ms(&text, name) {
            Some(base_ms) => {
                let factor = wall_ms / base_ms.max(1e-9);
                let verdict = if factor > TOLERANCE { "REGRESSION" } else { "ok" };
                println!(
                    "check {name:>14}: {wall_ms:.1} ms vs baseline {base_ms:.1} ms (limit {TOLERANCE}x): {verdict}"
                );
                failed |= factor > TOLERANCE;
            }
            None => println!("check {name:>14}: no baseline entry, skipping"),
        }
    }
    if failed {
        eprintln!("ext_obj_alloc: gross wall-clock regression (> {TOLERANCE}x) detected");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn baseline_wall_ms(text: &str, scenario: &str) -> Option<f64> {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"{scenario}\"")))?;
    let after = &line[line.find("\"wall_ms\"")? + "\"wall_ms\"".len()..];
    let number: String = after
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut perf = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--perf" => perf = true,
            "--check" => check = Some(args.next().expect("--check needs a path")),
            other => panic!(
                "unknown argument {other} (usage: ext_obj_alloc [--smoke] [--perf] [--check BASELINE])"
            ),
        }
    }
    if perf {
        perf_mode(check.as_deref())
    } else {
        sweep(if smoke { &SMOKE } else { &FULL })
    }
}
