//! Rack-scale remote-paging sweep on the sharded engine (Fig. 4 class).
//!
//! Scales the paper's remote-memory paging scenario to whole racks —
//! 256 to 1024 hosts, 50–200× the host counts of the chaos and figure
//! harnesses — by running `memory_disaggregation::rack` on the
//! epoch-barrier sharded engine. Every table cell is *virtual* (latency
//! quantiles, fault counts, digests), so the CSV is byte-identical at
//! every `--shards` level and on every machine; wall-clock numbers go
//! only to stderr and to the perf JSON.
//!
//! Modes:
//!
//! * default — host sweep at 256/512/1024, table + `results/fig4_rack.csv`;
//! * `--smoke` — one small scenario, `results/fig4_rack_smoke.csv`; the
//!   stdout of two runs at different `--shards` must byte-match (CI gate);
//! * `--shards N` — worker-thread count (the scenario's logical shard
//!   partition is fixed by its config; this only fans it across threads);
//! * `--perf` — wall-clock scaling measurement at 1 vs 4 workers,
//!   written to `results/BENCH_rack.json`; on a 4+ core machine the
//!   4-worker run must be ≥ 2x faster (exit 1 otherwise; skipped with a
//!   note on smaller machines);
//! * `--check BASELINE` — with `--perf`: fail on a > 3x wall-clock
//!   regression against the named baseline JSON;
//! * `--trace-out FILE` — write the merged shard trace (JSONL) of the
//!   last run;
//! * `--timeline-out FILE` — write the merged per-window metric timeline
//!   (CSV) of the last run.

use memory_disaggregation::rack::{run_rack, RackConfig, RackReport};
use std::fmt::Write as _;
use std::time::Instant;

/// Gross-regression tolerance for `--check`, matching `perf.rs`.
const TOLERANCE: f64 = 3.0;
/// Required parallel speedup at 4 workers on a 4+ core machine.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn usage() -> ! {
    eprintln!(
        "usage: fig4_rack [--smoke] [--shards N] [--perf] [--check BASELINE] [--trace-out FILE] \
         [--timeline-out FILE]"
    );
    std::process::exit(2);
}

fn report_row(table: &mut dmem_bench::Table, r: &RackReport) {
    table.row([
        r.hosts.to_string(),
        r.shards.to_string(),
        r.accesses.to_string(),
        r.hits.to_string(),
        r.remote_reads.to_string(),
        r.writebacks.to_string(),
        r.failovers.to_string(),
        r.probes.to_string(),
        r.cross_messages.to_string(),
        r.epochs.to_string(),
        r.fault_p50_ns.to_string(),
        r.fault_p99_ns.to_string(),
        r.digest.clone(),
    ]);
}

const HEADER: &[&str] = &[
    "hosts",
    "shards",
    "accesses",
    "hits",
    "remote_reads",
    "writebacks",
    "failovers",
    "probes",
    "cross_msgs",
    "epochs",
    "fault_p50_ns",
    "fault_p99_ns",
    "digest",
];

/// Times one run, returning the report and wall milliseconds.
fn timed(config: &RackConfig, workers: usize) -> (RackReport, f64) {
    let t0 = Instant::now();
    let report = run_rack(config, workers);
    (report, t0.elapsed().as_secs_f64() * 1e3)
}

fn perf_mode(workers_hi: usize, check: Option<&str>) -> i32 {
    let config = {
        let mut c = RackConfig::rack_default(256);
        c.accesses_per_host = 400;
        c
    };
    // Best of two per worker level: absorbs one-off scheduler noise.
    let (base, w1a) = timed(&config, 1);
    let (_, w1b) = timed(&config, 1);
    let (hi, wna) = timed(&config, workers_hi);
    let (_, wnb) = timed(&config, workers_hi);
    let (wall1, walln) = (w1a.min(w1b), wna.min(wnb));
    assert_eq!(
        base.csv_row(),
        hi.csv_row(),
        "perf runs must stay byte-identical across worker counts"
    );
    let ratio = wall1 / walln.max(1e-9);
    eprintln!(
        "rack perf: workers=1 {wall1:.1} ms, workers={workers_hi} {walln:.1} ms ({ratio:.2}x)"
    );

    let mut json = String::from("[\n");
    let _ = writeln!(
        json,
        "  {{\"scenario\": \"rack_fabric_workers1\", \"wall_ms\": {wall1:.1}, \"faults_per_s\": {:.0}, \"pages_per_s\": {:.0}}},",
        base.remote_reads as f64 / (wall1 / 1e3).max(1e-9),
        base.accesses as f64 / (wall1 / 1e3).max(1e-9),
    );
    let _ = writeln!(
        json,
        "  {{\"scenario\": \"rack_fabric_workers{workers_hi}\", \"wall_ms\": {walln:.1}, \"faults_per_s\": {:.0}, \"pages_per_s\": {:.0}}}",
        hi.remote_reads as f64 / (walln / 1e3).max(1e-9),
        hi.accesses as f64 / (walln / 1e3).max(1e-9),
    );
    json.push_str("]\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_rack.json", &json).expect("write rack perf json");
    println!("[written results/BENCH_rack.json]");

    let mut failed = false;
    let cores = scoped_pool::available_parallelism();
    if cores >= 4 && workers_hi >= 4 {
        if ratio < REQUIRED_SPEEDUP {
            eprintln!(
                "rack perf: SPEEDUP REGRESSION — {ratio:.2}x < required {REQUIRED_SPEEDUP:.1}x \
                 at {workers_hi} workers on {cores} cores"
            );
            failed = true;
        } else {
            eprintln!("rack perf: speedup gate ok ({ratio:.2}x >= {REQUIRED_SPEEDUP:.1}x)");
        }
    } else {
        eprintln!(
            "rack perf: speedup gate skipped ({cores} cores available, need >= 4)"
        );
    }

    if let Some(path) = check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        for (scenario, wall) in [
            ("rack_fabric_workers1", wall1),
            (&format!("rack_fabric_workers{workers_hi}"), walln),
        ] {
            match baseline_wall_ms(&text, scenario) {
                Some(base_ms) => {
                    let factor = wall / base_ms.max(1e-9);
                    let verdict = if factor > TOLERANCE { "REGRESSION" } else { "ok" };
                    println!(
                        "check {scenario}: {wall:.1} ms vs baseline {base_ms:.1} ms (limit {TOLERANCE}x): {verdict}"
                    );
                    failed |= factor > TOLERANCE;
                }
                None => println!("check {scenario}: no baseline entry, skipping"),
            }
        }
    }
    i32::from(failed)
}

/// Pulls one scenario's `wall_ms` out of a `BENCH_rack.json`-shaped file
/// (one object per line, `"scenario"` before `"wall_ms"`).
fn baseline_wall_ms(text: &str, scenario: &str) -> Option<f64> {
    for line in text.lines() {
        if !line.contains(&format!("\"{scenario}\"")) {
            continue;
        }
        let after = &line[line.find("\"wall_ms\"")? + "\"wall_ms\"".len()..];
        let number: String = after
            .chars()
            .skip_while(|c| !c.is_ascii_digit())
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        return number.parse().ok();
    }
    None
}

fn main() {
    let mut smoke = false;
    let mut perf = false;
    let mut workers: Option<usize> = None;
    let mut check: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut timeline_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--perf" => perf = true,
            "--shards" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                );
            }
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--timeline-out" => timeline_out = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    if perf {
        let code = perf_mode(workers.unwrap_or(4), check.as_deref());
        std::process::exit(code);
    }

    let workers = workers.unwrap_or_else(dmem_bench::bench_jobs);
    let mut table = dmem_bench::Table::new(
        if smoke {
            "fig4_rack (smoke) — rack-scale remote paging, sharded engine"
        } else {
            "fig4_rack — rack-scale remote paging, sharded engine"
        },
        HEADER,
    );

    let configs: Vec<RackConfig> = if smoke {
        vec![RackConfig::smoke()]
    } else {
        vec![
            RackConfig::rack_default(256),
            RackConfig::rack_default(512),
            RackConfig::rack_default(1024),
        ]
    };

    let mut last: Option<RackReport> = None;
    for config in &configs {
        let (report, wall_ms) = timed(config, workers);
        eprintln!(
            "fig4_rack: {} hosts / {} shards done in {wall_ms:.1} ms (workers={workers})",
            report.hosts, report.shards
        );
        report_row(&mut table, &report);
        last = Some(report);
    }
    table.emit(if smoke { "fig4_rack_smoke" } else { "fig4_rack" });

    if let (Some(path), Some(report)) = (trace_out.as_deref(), last.as_ref()) {
        std::fs::write(path, &report.trace_jsonl).expect("write trace jsonl");
        println!("[written {path}]");
    }
    if let (Some(path), Some(report)) = (timeline_out.as_deref(), last.as_ref()) {
        std::fs::write(path, report.timeline.to_csv()).expect("write timeline csv");
        println!("[written {path}]");
    }
}
