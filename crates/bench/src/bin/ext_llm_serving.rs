//! Extension (§III): LLM KV-cache serving on disaggregated memory.
//!
//! The paper's killer-app argument — memory capacity is the binding
//! resource and a fast fabric turns "doesn't fit" into "fits, at
//! microsecond cost" — maps directly onto LLM serving: per-conversation
//! KV-cache state outgrows any single host, and what the server does
//! with cold conversations decides the tail. This experiment drives the
//! same deterministic open-loop conversation stream
//! ([`ConversationStream`]) through three engines that differ only in
//! their spill policy:
//!
//! * **tiered** — `TieredKvEngine` over disaggregated memory (local →
//!   remote → disk, batched fabric verbs, remote prefix cache, QoS
//!   tenant split between rookie and long-running conversations);
//! * **disk-offload** — cold conversations go straight to the ~4 ms
//!   disk tier, the conventional swap design;
//! * **local-only** — cold conversations are dropped and their whole
//!   history is re-prefilled on the next turn.
//!
//! Reported per arrival rate: p50/p99 time-to-first-token (arrival →
//! first generated token, queueing included — an overloaded restore
//! path backs up the whole server) and generated tokens per virtual
//! second.
//!
//! Modes:
//!
//! * default — full sweep, writes `results/ext_llm_serving.csv`;
//! * `--smoke` — reduced CI-sized sweep, writes
//!   `results/ext_llm_serving_smoke.csv`; both modes self-assert the
//!   acceptance bound (tiered p99 TTFT ≥ 5x better than disk-offload at
//!   the largest session count) and exit nonzero on failure;
//! * `--perf [--check BASELINE]` — wall-clock of the three engines at a
//!   fixed scale, written to `results/BENCH_llm.json`; with `--check`,
//!   fail on a > 3x regression against the committed baseline.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_llm_serving`

use dmem_bench::{par_map, Table};
use dmem_core::DisaggregatedMemory;
use dmem_kv::{LlmCostModel, SpillPolicy, TieredKvConfig, TieredKvEngine};
use dmem_qos::{QosConfig, QosEngine, TenantSpec};
use dmem_sim::{SimDuration, SimInstant};
use dmem_types::{ByteSize, ClusterConfig, NodeConfig, ServerConfig};
use dmem_workloads::{ConversationConfig, ConversationStream};
use std::process::ExitCode;
use std::sync::Arc;

/// Sweep dimensions; `--smoke` shrinks them for the CI golden check.
struct Scale {
    /// `(lambda, turns)` pairs: arrival rate and stream length grow
    /// together, so later rows mean more sessions under more load.
    points: &'static [(f64, usize)],
    csv_name: &'static str,
}

const FULL: Scale = Scale {
    points: &[(25.0, 300), (50.0, 600), (100.0, 1200), (200.0, 2400)],
    csv_name: "ext_llm_serving",
};

const SMOKE: Scale = Scale {
    points: &[(50.0, 300), (200.0, 600)],
    csv_name: "ext_llm_serving_smoke",
};

const WORKLOAD_SEED: u64 = 11;

/// A serving host whose fast tiers are deliberately small against the
/// stream's live KV state, so every policy must spill continuously —
/// the regime where the three designs separate.
fn serving_cluster() -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        servers_per_node: 3,
        node: NodeConfig {
            dram: ByteSize::from_mib(8),
            slab_size: ByteSize::from_kib(64),
            send_pool: ByteSize::from_kib(512),
            recv_pool: ByteSize::from_mib(1),
            nvm_pool: ByteSize::ZERO,
        },
        server: ServerConfig::new(ByteSize::from_mib(2)),
        ..ClusterConfig::small()
    }
}

fn engine_config(spill: SpillPolicy) -> TieredKvConfig {
    TieredKvConfig {
        // ~12 hot conversations; the stream keeps ~2-3x more live.
        local_capacity: ByteSize::from_kib(1536),
        remote_capacity: ByteSize::from_mib(12),
        // All 8 system prompts fit (512 tokens x 64 B each).
        prefix_cache_capacity: ByteSize::from_kib(320),
        spill,
        long_running_turns: 3,
        // 64 B of KV per token; prefill at 20 us/token makes a
        // recomputed 2k-token history cost ~40 ms of compute — the
        // price the local-only design pays per cold hit.
        cost: LlmCostModel {
            kv_bytes_per_token: 64,
            prefill_per_token: SimDuration::from_micros(20),
            ..LlmCostModel::default()
        },
    }
}

struct ServingResult {
    sessions: u64,
    ttft_p50: SimDuration,
    ttft_p99: SimDuration,
    tokens_per_s: f64,
    prefix_hit_rate: f64,
}

/// Serves `turns` events of the conversation stream at `lambda` through
/// one engine and measures TTFT (arrival → first generated token) and
/// generated-token throughput, all on the virtual clock.
fn serve(lambda: f64, turns: usize, spill: SpillPolicy) -> ServingResult {
    let dm = Arc::new(DisaggregatedMemory::new(serving_cluster()).unwrap());
    let servers = dm.servers();
    let (rookie, veteran) = (servers[0], servers[1]);

    // QoS tenant split (§IV-F): long-running conversations hold a
    // protected quota at high priority; the rookie flood is admission-
    // limited so a flash crowd of new sessions degrades to disk instead
    // of evicting the veterans' KV state.
    let qos = Arc::new(QosEngine::new(QosConfig::default()));
    let veterans = qos.register_tenant(
        TenantSpec::new("veteran-convs", 200, ByteSize::from_mib(16))
            .with_slo_p99(SimDuration::from_micros(500)),
    );
    qos.assign_server(veteran, veterans);
    let rookies =
        qos.register_tenant(TenantSpec::new("rookie-convs", 10, ByteSize::from_mib(2)));
    qos.assign_server(rookie, rookies);
    dm.install_qos(qos);

    let mut engine = TieredKvEngine::with_servers(dm.clone(), rookie, veteran, engine_config(spill));
    let clock = dm.clock().clone();
    let t_start = clock.now();

    let config = ConversationConfig {
        lambda_rate: lambda,
        ..ConversationConfig::default()
    };
    let max_turns = config.max_turns;
    let stream = ConversationStream::new(config, WORKLOAD_SEED);

    let mut ttfts: Vec<SimDuration> = Vec::with_capacity(turns);
    let mut output_tokens = 0u64;
    for (i, event) in stream.take(turns).enumerate() {
        // Open loop: the request arrives on the stream's schedule; if the
        // server is still busy the difference is queueing delay and it
        // counts against TTFT.
        let arrival: SimInstant = t_start + event.at;
        clock.advance_to(arrival);
        engine
            .begin_turn(
                event.session,
                event.turn,
                event.prefix_id,
                event.context_tokens,
                event.prompt_tokens,
            )
            .unwrap();
        clock.advance(engine.cost().decode(1)); // first token out
        ttfts.push(clock.now() - arrival);
        if event.output_tokens > 1 {
            clock.advance(engine.cost().decode(event.output_tokens - 1));
        }
        output_tokens += u64::from(event.output_tokens);
        engine
            .end_turn(event.session, event.prompt_tokens + event.output_tokens)
            .unwrap();
        if event.turn + 1 >= max_turns {
            engine.retire(event.session);
        }
        if i % 64 == 63 {
            dm.qos_tick();
        }
    }

    let elapsed = (clock.now() - t_start).as_secs_f64();
    let stats = engine.stats();
    ttfts.sort_unstable();
    let pick = |q: usize| ttfts[(ttfts.len() * q / 100).min(ttfts.len() - 1)];
    ServingResult {
        sessions: stats.conversations,
        ttft_p50: pick(50),
        ttft_p99: pick(99),
        tokens_per_s: output_tokens as f64 / elapsed.max(1e-9),
        prefix_hit_rate: stats.prefix_hit_rate(),
    }
}

fn sweep(scale: &Scale) -> ExitCode {
    let mut table = Table::new(
        "Extension — LLM KV-cache serving: TTFT and throughput, tiered vs local-only vs disk-offload (§III)",
        &[
            "lambda/s",
            "sessions",
            "tiered p50",
            "tiered p99",
            "local-only p99",
            "disk p99",
            "tiered tok/s",
            "disk tok/s",
            "prefix hits",
            "p99 vs disk",
        ],
    );
    let results = par_map(scale.points.to_vec(), |_, (lambda, turns)| {
        (
            serve(lambda, turns, SpillPolicy::RemoteThenDisk),
            serve(lambda, turns, SpillPolicy::DropCold),
            serve(lambda, turns, SpillPolicy::DiskOnly),
        )
    });
    let us = |d: SimDuration| format!("{:.1} us", d.as_micros_f64());
    let mut last_gap = 0.0f64;
    for ((lambda, _), (tiered, drop, disk)) in scale.points.iter().zip(&results) {
        let gap = disk.ttft_p99.as_nanos() as f64 / tiered.ttft_p99.as_nanos().max(1) as f64;
        last_gap = gap;
        table.row([
            format!("{lambda:.0}"),
            tiered.sessions.to_string(),
            us(tiered.ttft_p50),
            us(tiered.ttft_p99),
            us(drop.ttft_p99),
            us(disk.ttft_p99),
            format!("{:.0}", tiered.tokens_per_s),
            format!("{:.0}", disk.tokens_per_s),
            format!("{:.0}%", tiered.prefix_hit_rate * 100.0),
            format!("{gap:.1}x"),
        ]);
    }
    table.emit(scale.csv_name);

    println!("\nReading: every engine overflows local memory at these rates; the difference");
    println!("is where cold conversations land. Disk restores cost ~4 ms and back up the");
    println!("whole service queue; dropped conversations re-prefill entire histories; the");
    println!("tiered engine restores over the fabric in microseconds with batched verbs");
    println!("and serves shared system prompts from its remote prefix cache.");

    // Acceptance (ISSUE 7): at the largest session count the tiered
    // engine's p99 TTFT must beat the disk-offload baseline >= 5x.
    if last_gap >= 5.0 {
        println!("llm serving: PASS (p99 TTFT {last_gap:.1}x better than disk-offload)");
        ExitCode::SUCCESS
    } else {
        println!("llm serving: FAIL (p99 TTFT only {last_gap:.1}x better than disk-offload, need >= 5x)");
        ExitCode::FAILURE
    }
}

const TOLERANCE: f64 = 3.0;

/// Wall-clock mode: real elapsed time of the three engines at a fixed
/// scale, `results/BENCH_llm.json`, compared to a committed baseline
/// with the same gross 3x tolerance as `perf.rs`.
fn perf_mode(check: Option<&str>) -> ExitCode {
    let scenarios: [(&str, SpillPolicy); 3] = [
        ("llm_tiered", SpillPolicy::RemoteThenDisk),
        ("llm_local_only", SpillPolicy::DropCold),
        ("llm_disk_offload", SpillPolicy::DiskOnly),
    ];
    let mut json = String::from("[\n");
    let mut measured: Vec<(&str, f64)> = Vec::new();
    for (i, (name, spill)) in scenarios.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let result = serve(100.0, 600, *spill);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:>16}: {wall_ms:>8.1} ms wall ({} sessions, {:.0} tok/s virtual)",
            result.sessions, result.tokens_per_s
        );
        json.push_str(&format!(
            "  {{\"scenario\": \"{name}\", \"wall_ms\": {wall_ms:.1}, \"tokens_per_s\": {:.0}}}{}",
            result.tokens_per_s,
            if i + 1 < scenarios.len() { ",\n" } else { "\n" }
        ));
        measured.push((name, wall_ms));
    }
    json.push_str("]\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_llm.json", &json).expect("write llm perf json");
    println!("[written results/BENCH_llm.json]");

    let Some(baseline_path) = check else {
        return ExitCode::SUCCESS;
    };
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let mut failed = false;
    for (name, wall_ms) in &measured {
        match baseline_wall_ms(&text, name) {
            Some(base_ms) => {
                let factor = wall_ms / base_ms.max(1e-9);
                let verdict = if factor > TOLERANCE { "REGRESSION" } else { "ok" };
                println!(
                    "check {name:>16}: {wall_ms:.1} ms vs baseline {base_ms:.1} ms (limit {TOLERANCE}x): {verdict}"
                );
                failed |= factor > TOLERANCE;
            }
            None => println!("check {name:>16}: no baseline entry, skipping"),
        }
    }
    if failed {
        eprintln!("ext_llm_serving: gross wall-clock regression (> {TOLERANCE}x) detected");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Pulls one scenario's `wall_ms` out of a `BENCH_llm.json`-shaped file
/// (one object per line, `"scenario"` before `"wall_ms"`).
fn baseline_wall_ms(text: &str, scenario: &str) -> Option<f64> {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"{scenario}\"")))?;
    let after = &line[line.find("\"wall_ms\"")? + "\"wall_ms\"".len()..];
    let number: String = after
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut perf = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--perf" => perf = true,
            "--check" => check = Some(args.next().expect("--check needs a path")),
            other => panic!(
                "unknown argument {other} (usage: ext_llm_serving [--smoke] [--perf] [--check BASELINE])"
            ),
        }
    }
    if perf {
        perf_mode(check.as_deref())
    } else {
        sweep(if smoke { &SMOKE } else { &FULL })
    }
}
