//! Extension (§IV-F): multi-tenant QoS isolation under antagonists.
//!
//! The paper's resource-management section argues disaggregated memory
//! needs cluster-wide QoS policies — per-application quotas (policy 1)
//! and priority between applications (policy 2) — because a shared
//! memory fabric lets one tenant's appetite destroy another's tail
//! latency. This experiment measures exactly that: a high-priority KV
//! tenant serves a zipf-skewed read/refresh stream while 1→16
//! low-priority antagonist tenants hammer the same cluster's fast
//! tiers. Without the control plane the antagonists crowd the KV pages
//! down to disk and its p99 collapses by orders of magnitude; with
//! `dmem-qos` (quotas + priority eviction + fabric rate limits) the KV
//! p99 stays flat no matter how many antagonists pile on.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_qos`
//! (`--smoke` runs a reduced, CI-sized sweep and writes
//! `results/ext_qos_smoke.csv` instead).

use dmem_bench::{par_map, Table};
use dmem_core::DisaggregatedMemory;
use dmem_qos::{QosConfig, QosEngine, TenantSpec};
use dmem_sim::{DetRng, SimDuration, TelemetryHub};
use dmem_types::{ByteSize, ClusterConfig, NodeConfig, ServerConfig};
use dmem_workloads::ZipfSampler;
use std::process::ExitCode;
use std::sync::Arc;

/// Sampling grid for the alert passes: wide enough that each window
/// holds several KV gets, fine enough that the burn shows up as a
/// multi-window run rather than one blob.
const ALERT_WINDOW: SimDuration = SimDuration::from_millis(20);

/// Sweep dimensions; `--smoke` shrinks them for the CI golden check.
struct Scale {
    antagonist_counts: &'static [usize],
    rounds: usize,
    csv_name: &'static str,
}

const FULL: Scale = Scale {
    antagonist_counts: &[1, 2, 4, 8, 16],
    rounds: 400,
    csv_name: "ext_qos",
};

const SMOKE: Scale = Scale {
    antagonist_counts: &[1, 4, 16],
    rounds: 120,
    csv_name: "ext_qos_smoke",
};

/// KV tenant working set: small pages it keeps refreshing and reading.
const KV_KEYS: usize = 96;
const KV_VALUE: usize = 4 * 1024;
/// Antagonist payloads: page-sized and incompressible, so they compete
/// with the KV tenant in *both* fast tiers (the node shared pool takes
/// only single pages; larger values would bypass it) and none of the
/// bytes compress away.
const ANT_KEYS: u64 = 96;
const ANT_VALUE: usize = 4 * 1024;

/// A deliberately memory-tight cluster: 6 small nodes whose combined
/// fast tiers hold a few antagonists comfortably but not sixteen, so the
/// sweep crosses from "fits" to "overcommitted" — the regime §IV-F's
/// policies exist for.
fn tight_cluster() -> ClusterConfig {
    ClusterConfig {
        nodes: 6,
        servers_per_node: 3,
        node: NodeConfig {
            dram: ByteSize::from_mib(8),
            slab_size: ByteSize::from_kib(64),
            send_pool: ByteSize::from_kib(512),
            recv_pool: ByteSize::from_mib(1),
            nvm_pool: ByteSize::ZERO,
        },
        server: ServerConfig::new(ByteSize::from_mib(2)),
        ..ClusterConfig::small()
    }
}

/// Deterministic incompressible payload (defeats the LZ codec so the
/// stored size equals the logical size).
fn noisy(rng: &mut DetRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.below(256) as u8).collect()
}

/// QoS wiring for one pass.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// No engine at all — the uncontrolled baseline rows.
    Off,
    /// Quotas + priority + fabric rate limits — the QoS rows.
    Controlled,
    /// Engine installed for attribution only: equal priorities, ample
    /// quotas, no rate limits. The cluster crowds exactly like an
    /// ungoverned one, but the `qos.kv.get.ns` histogram still feeds the
    /// hub's burn-rate rule — how you watch a fleet you haven't gated yet.
    ObserveOnly,
}

/// One cluster, one KV tenant, `antagonists` greedy tenants. Returns the
/// KV tenant's (p50, p99) get latency over the measured rounds. When
/// `hub` is given it is installed before the workload and ticked on the
/// maintenance cadence, turning the pass into an alert run.
fn run(
    antagonists: usize,
    mode: Mode,
    rounds: usize,
    hub: Option<&Arc<TelemetryHub>>,
) -> (SimDuration, SimDuration) {
    let dm = Arc::new(DisaggregatedMemory::new(tight_cluster()).unwrap());
    let servers = dm.servers();
    let kv_server = servers[0];
    let ant_servers = &servers[1..=antagonists];

    if mode != Mode::Off {
        let engine = Arc::new(QosEngine::new(QosConfig::default()));
        let kv = engine.register_tenant(
            TenantSpec::new("kv", 200, ByteSize::from_mib(16))
                .with_slo_p99(SimDuration::from_micros(500)),
        );
        engine.assign_server(kv_server, kv);
        for (i, server) in ant_servers.iter().enumerate() {
            let spec = if mode == Mode::Controlled {
                TenantSpec::new(format!("antag-{i:02}"), 10, ByteSize::from_kib(64))
                    .with_fabric_rate(ByteSize::from_mib(16).as_u64())
            } else {
                // Observe-only: same priority and ample quota, no rate
                // limit — the engine attributes but never intervenes.
                TenantSpec::new(format!("antag-{i:02}"), 200, ByteSize::from_mib(16))
            };
            engine.assign_server(*server, engine.register_tenant(spec));
        }
        if let Some(hub) = hub {
            hub.set_rules(engine.burn_rate_rules(1, 4, 5000, 500));
            dm.install_telemetry(Arc::clone(hub));
        }
        dm.install_qos(engine);
    }

    let clock = dm.clock().clone();
    let mut payload_rng = DetRng::new(0x0e07_9051);
    let zipf = ZipfSampler::new(KV_KEYS, 0.99);
    let mut zipf_rng = DetRng::new(7);

    // KV tenant loads its working set into an otherwise idle cluster.
    for key in 0..KV_KEYS {
        dm.put(kv_server, key as u64, noisy(&mut payload_rng, KV_VALUE))
            .unwrap();
    }

    let mut latencies: Vec<SimDuration> = Vec::with_capacity(rounds);
    for round in 0..rounds {
        // The KV working set slides one key per round, the way a cache
        // churns: the coldest object is dropped, a new one will be
        // admitted below. The capacity the delete frees is up for grabs —
        // in a real cluster the antagonists race for it concurrently, so
        // the schedule lets them move between the drop and the insert.
        let oldest = round as u64;
        dm.delete(kv_server, oldest).unwrap();
        // Antagonists rotate over their key spaces, continuously
        // re-putting incompressible pages — exactly the greedy neighbour
        // §IV-F worries about.
        for (i, server) in ant_servers.iter().enumerate() {
            let key = (round as u64 + i as u64) % ANT_KEYS;
            dm.put(*server, key, noisy(&mut payload_rng, ANT_VALUE))
                .unwrap();
        }
        // The KV tenant admits the newest object — the placement decision
        // where crowding bites — and serves one zipf-skewed read over the
        // live window, newest keys hottest.
        let newest = KV_KEYS as u64 + round as u64;
        dm.put(kv_server, newest, noisy(&mut payload_rng, KV_VALUE))
            .unwrap();
        let key = newest - zipf.sample(&mut zipf_rng) as u64;
        let t0 = clock.now();
        let value = dm.get(kv_server, key).unwrap();
        latencies.push(clock.now() - t0);
        assert_eq!(value.len(), KV_VALUE, "kv data must survive the antagonists");
        // The closed loop runs off the maintenance tick in production; the
        // bench drives it at the same 16-round cadence in both modes (a
        // no-op without an engine installed).
        if round % 16 == 15 {
            dm.qos_tick();
        }
        // Telemetry sampling rides the round cadence; a no-op without an
        // installed hub, so the table passes are untouched.
        dm.telemetry_tick();
    }
    if let Some(hub) = hub {
        hub.flush(clock.now());
    }

    latencies.sort_unstable();
    let pick = |q: usize| latencies[(latencies.len() * q / 100).min(latencies.len() - 1)];
    (pick(50), pick(99))
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };

    let mut table = Table::new(
        "Extension — QoS isolation: high-priority KV p99 vs antagonist count (§IV-F policies 1 & 2)",
        &[
            "antagonists",
            "no-QoS p50",
            "no-QoS p99",
            "QoS p50",
            "QoS p99",
            "p99 ratio",
        ],
    );
    let results = par_map(scale.antagonist_counts.to_vec(), |_, n| {
        (
            run(n, Mode::Off, scale.rounds, None),
            run(n, Mode::Controlled, scale.rounds, None),
        )
    });
    let us = |d: SimDuration| format!("{:.1} us", d.as_micros_f64());
    let mut noqos_p99 = Vec::new();
    let mut qos_p99 = Vec::new();
    for (n, ((base_p50, base_p99), (q_p50, q_p99))) in
        scale.antagonist_counts.iter().zip(results)
    {
        table.row([
            n.to_string(),
            us(base_p50),
            us(base_p99),
            us(q_p50),
            us(q_p99),
            format!(
                "{:.1}x",
                base_p99.as_nanos() as f64 / q_p99.as_nanos().max(1) as f64
            ),
        ]);
        noqos_p99.push(base_p99);
        qos_p99.push(q_p99);
    }
    table.emit(scale.csv_name);

    // Two dedicated alert passes at the top of the sweep: an
    // observe-only cluster (engine attributes, never intervenes) whose
    // KV burn-rate alert must fire, and the governed cluster, which must
    // stay strictly quieter. Logs and digests are pure virtual-time
    // functions — byte-identical across machines and reruns.
    let worst = *scale.antagonist_counts.last().unwrap();
    let mut firing = [0usize; 2];
    for (slot, mode, label) in [
        (0, Mode::ObserveOnly, "observe-only"),
        (1, Mode::Controlled, "qos"),
    ] {
        let hub = Arc::new(TelemetryHub::new(ALERT_WINDOW));
        run(worst, mode, scale.rounds, Some(&hub));
        let log = hub.alert_log();
        println!(
            "\nalert log ({label}, {worst} antagonists): {} ({} windows)",
            hub.alert_digest(),
            hub.timeline().windows.len()
        );
        for line in &log {
            println!("  {line}");
        }
        if log.is_empty() {
            println!("  (no alerts)");
        }
        firing[slot] = log.iter().filter(|l| l.contains("FIRING")).count();
    }

    // Acceptance, enforced so CI fails loudly if isolation regresses:
    // under QoS the KV p99 must stay within 2x of its 1-antagonist value
    // at the top of the sweep, while the uncontrolled run must degrade —
    // and the SLO burn alert must see it: firing on the observe-only
    // cluster, quieter under governance.
    let qos_flat = qos_p99.last().unwrap().as_nanos() <= 2 * qos_p99[0].as_nanos().max(1);
    let base_worse = noqos_p99.last().unwrap() > &(*qos_p99.last().unwrap() * 2);
    let alerts_seen = firing[0] >= 1 && firing[1] < firing[0];
    println!("\nReading: every antagonist added to the uncontrolled cluster pushes more of");
    println!("the KV tenant's pages to disk, so its p99 climbs toward the 4 ms disk read;");
    println!("quotas + priority eviction keep the same pages fast-tier resident and the");
    println!("p99 flat — the paper's per-application quota and priority policies at work.");
    if qos_flat && base_worse && alerts_seen {
        println!("isolation: PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "isolation: FAIL (qos flat: {qos_flat}, uncontrolled degrades: {base_worse}, \
             alerts seen: {alerts_seen})"
        );
        ExitCode::FAILURE
    }
}
