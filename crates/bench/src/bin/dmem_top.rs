//! `dmem-top`: a text telemetry report for the simulated cluster, in the
//! spirit of `top`/`iostat` for disaggregated memory.
//!
//! Default mode runs the fig4 remote-overflow scenario (LogisticRegression
//! @50%, shared pool full, 3.0x-compressible pages) with the tracer
//! enabled and prints:
//!
//!   * where simulated time went, per component (exclusive self time);
//!   * per-tier latency histograms and operation counters;
//!   * span counts per category.
//!
//! `--trace-out FILE` / `--metrics-out FILE` additionally export the
//! Chrome-trace JSON (+ `.jsonl` sibling) and the digest text.
//!
//! `--qos` attributes the run to named tenants (the swap traffic becomes
//! the high-priority `paging` tenant) and appends per-tenant rows —
//! residency vs quota, priority, throttle level — plus the QoS decision
//! digest. Without the flag the report is byte-identical to the plain
//! tool.
//!
//! `--kv` instead reports on the tiered LLM KV-cache engine: it serves
//! a deterministic conversation stream through `TieredKvEngine` and
//! prints per-tier KV occupancy (conversations and bytes in local,
//! remote and disk, plus the prefix cache), serving counters, the
//! prefix-hit rate and the demotion digest. Byte-identical across
//! machines and reruns; pinned by `results/dmem_top_kv.txt`.
//!
//! `--timeline` instead prints the rack smoke scenario's merged
//! per-window metric timeline as sparkline rows (one per counter /
//! histogram series) — `top`'s history strip for the virtual rack.
//!
//! `--alerts` instead replays a chaos `--faults` seed and prints the
//! deterministic alert log: burn-rate / retry-storm / suspect-churn
//! firing and resolved edges with their FNV digest.
//!
//! `--alloc` instead replays one deterministic object-heap schedule at
//! both backing granularities and prints the allocator's amplification
//! and fragmentation accounting plus the armed `alloc.*` counter
//! family — `top` for the far-memory heap. Pinned byte-for-byte by
//! `results/dmem_top_alloc.txt`.
//!
//! `--cxl` instead drives one deterministic schedule through the CXL
//! pooled-memory tier — PGAS puts, remote fetch-add/CAS cells, a
//! pool-node outage window replayed against the disk shadow — and
//! prints per-pool-node occupancy, the atomic cells, and the armed
//! `cxl.*` counter family. Pinned byte-for-byte by
//! `results/dmem_top_cxl.txt`.
//!
//! `--all` runs every section in one pass — qos report, KV report,
//! timeline, alerts, allocator, CXL pool — and is pinned byte-for-byte
//! by `results/dmem_top_all.txt`.
//!
//! `--check-trace FILE` instead validates a previously exported
//! Chrome-trace JSON: it must parse, be shaped like the trace-event
//! format, and contain spans from at least four simulation layers. Used
//! by `ci.sh` to gate the traced fig4 artifact. Exits nonzero on failure.

use dmem_bench::TelemetryArgs;
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_kv::{LlmCostModel, SpillPolicy, TieredKvConfig, TieredKvEngine};
use dmem_qos::{QosConfig, QosEngine, TenantSpec};
use dmem_sim::{jsonlite, sparkline, DetRng, SimDuration};
use memory_disaggregation::chaos::{run_seed, ChaosSettings};
use memory_disaggregation::rack::{run_rack, RackConfig};
use memory_disaggregation::sim::chaos::ChaosConfig;
use dmem_swap::{build_system_with_pages, SwapScale, SystemKind};
use dmem_types::{ByteSize, CompressionMode, CxlPoolConfig, DistributionRatio};
use dmem_workloads::{catalog, ConversationConfig, ConversationStream, TraceConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

/// Layers a healthy full-stack trace must cover (at least [`MIN_LAYERS`]).
const EXPECTED_CATEGORIES: [&str; 6] = ["cluster", "compress", "core", "net", "rdd", "swap"];
/// Minimum distinct expected categories for `--check-trace` to pass.
const MIN_LAYERS: usize = 4;

fn check_trace(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = jsonlite::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(jsonlite::Value::as_array)
        .ok_or_else(|| format!("{path}: missing traceEvents array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    let mut per_category: BTreeMap<String, usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "cat", "ph"] {
            if ev.get(key).and_then(jsonlite::Value::as_str).is_none() {
                return Err(format!("{path}: event {i} lacks string field {key:?}"));
            }
        }
        if ev.get("ts").and_then(jsonlite::Value::as_f64).is_none() {
            return Err(format!("{path}: event {i} lacks numeric ts"));
        }
        let cat = ev.get("cat").and_then(jsonlite::Value::as_str).unwrap();
        *per_category.entry(cat.to_owned()).or_insert(0) += 1;
    }
    let covered: Vec<&str> = EXPECTED_CATEGORIES
        .iter()
        .copied()
        .filter(|c| per_category.contains_key(*c))
        .collect();
    if covered.len() < MIN_LAYERS {
        return Err(format!(
            "{path}: only {}/{} expected layers present ({covered:?}); need {MIN_LAYERS}",
            covered.len(),
            EXPECTED_CATEGORIES.len()
        ));
    }
    let mut report = format!(
        "{path}: OK — {} events, {}/{} expected layers covered\n",
        events.len(),
        covered.len(),
        EXPECTED_CATEGORIES.len()
    );
    for (cat, n) in &per_category {
        writeln!(report, "  {cat:>10}  {n} spans").unwrap();
    }
    Ok(report)
}

fn run_report(telemetry: &TelemetryArgs, qos: bool) -> String {
    // The fig4 (a) scenario at 3.0x: small shared pool that fills
    // immediately, overflow absorbed by a tight remote tier.
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    scale.shared_donation = 0.25;
    scale.remote_pool = ByteSize::from_mib(1);
    let kind = SystemKind::FastSwap {
        ratio: DistributionRatio::FS_SM,
        compression: CompressionMode::FourGranularity,
        pbs: true,
    };
    let mut engine = build_system_with_pages(kind, &scale, 3.0, 0.4).unwrap();
    // `--qos`: attribute the run to named tenants so the report grows
    // per-tenant rows and `qos.*` metric keys. Off by default, keeping
    // the plain report byte-identical to the pre-QoS tool.
    if qos {
        if let Some(dm) = engine.cluster() {
            let qos_engine = std::sync::Arc::new(QosEngine::new(QosConfig::default()));
            let paging = qos_engine.register_tenant(
                TenantSpec::new("paging", 200, ByteSize::from_mib(8))
                    .with_slo_p99(SimDuration::from_millis(1)),
            );
            let batch = qos_engine
                .register_tenant(TenantSpec::new("batch", 20, ByteSize::from_mib(1)));
            for (i, server) in dm.servers().into_iter().enumerate() {
                qos_engine.assign_server(*server, if i == 0 { paging } else { batch });
            }
            dm.install_qos(qos_engine);
        }
    }
    let profile = catalog::by_name("LogisticRegression").unwrap();
    let accesses = TraceConfig::scaled_from(profile, scale.working_set_pages).generate(scale.seed);

    engine.clock().tracer().enable();
    let (stats, completion) = engine.run(accesses).unwrap();
    engine.clock().tracer().disable();
    let trace = engine.clock().tracer().finish();
    telemetry.write_trace(&trace);

    let mut out = String::new();
    writeln!(out, "dmem-top — {} (virtual time)", engine.system_name()).unwrap();
    writeln!(
        out,
        "run: LogisticRegression @50%, shared pool full, overflow to remote, 3.0x pages"
    )
    .unwrap();
    writeln!(
        out,
        "completion: {:.1} ms   faults: {} major / {} minor   spans: {}",
        completion.as_nanos() as f64 / 1e6,
        stats.major_faults,
        stats.minor_faults,
        trace.spans.len()
    )
    .unwrap();

    writeln!(out, "\n{}", trace.attribution(completion)).unwrap();

    let mut per_category: BTreeMap<&str, usize> = BTreeMap::new();
    for s in &trace.spans {
        *per_category.entry(s.category).or_insert(0) += 1;
    }
    writeln!(out, "spans by layer:").unwrap();
    for (cat, n) in &per_category {
        writeln!(out, "  {cat:>10}  {n}").unwrap();
    }

    if let Some(dm) = engine.cluster() {
        writeln!(out, "\n{}", dm.metrics()).unwrap();
        if let Some(qos_engine) = dm.qos() {
            writeln!(out, "tenants (qos):").unwrap();
            write!(out, "{}", qos_engine.report()).unwrap();
            writeln!(out, "qos decisions: {}", qos_engine.decision_digest()).unwrap();
        }
    }
    out
}

/// The `--kv` report: a fixed tiered-serving scenario, then per-tier
/// occupancy and prefix-reuse telemetry — `top` for conversation KV state.
fn run_kv_report() -> String {
    let config = dmem_types::ClusterConfig::small();
    let dm = std::sync::Arc::new(DisaggregatedMemory::new(config).unwrap());
    let servers = dm.servers();
    let (rookie, veteran) = (servers[0], servers[1]);
    let mut engine = TieredKvEngine::with_servers(
        dm.clone(),
        rookie,
        veteran,
        TieredKvConfig {
            local_capacity: ByteSize::from_kib(512),
            remote_capacity: ByteSize::from_mib(4),
            prefix_cache_capacity: ByteSize::from_kib(320),
            spill: SpillPolicy::RemoteThenDisk,
            long_running_turns: 3,
            cost: LlmCostModel {
                kv_bytes_per_token: 64,
                ..LlmCostModel::default()
            },
        },
    );

    const TURNS: usize = 400;
    let conv_config = ConversationConfig::default();
    let max_turns = conv_config.max_turns;
    let stream = ConversationStream::new(conv_config, 11);
    for event in stream.take(TURNS) {
        engine
            .begin_turn(
                event.session,
                event.turn,
                event.prefix_id,
                event.context_tokens,
                event.prompt_tokens,
            )
            .unwrap();
        engine
            .end_turn(event.session, event.prompt_tokens + event.output_tokens)
            .unwrap();
        if event.turn + 1 >= max_turns {
            engine.retire(event.session);
        }
    }

    let stats = engine.stats();
    let occ = engine.occupancy();
    let mut out = String::new();
    writeln!(out, "dmem-top — tiered KV serving (virtual time)").unwrap();
    writeln!(
        out,
        "run: conversation stream seed 11, {TURNS} turns, local 512 KiB, remote 4 MiB"
    )
    .unwrap();
    writeln!(
        out,
        "turns: {}   conversations: {}   retired: {}",
        stats.turns,
        stats.conversations,
        stats.conversations as usize
            - (occ.local_convs + occ.remote_convs + occ.disk_convs)
    )
    .unwrap();

    writeln!(out, "
kv tiers (occupancy):").unwrap();
    let row = |out: &mut String, tier: &str, convs: usize, bytes: u64| {
        writeln!(out, "  {tier:>8}  {convs:>5} convs  {:>12}", ByteSize::new(bytes).to_string())
            .unwrap();
    };
    row(&mut out, "local", occ.local_convs, occ.local_bytes);
    row(&mut out, "remote", occ.remote_convs, occ.remote_bytes);
    row(&mut out, "disk", occ.disk_convs, occ.disk_bytes);
    writeln!(
        out,
        "  {:>8}  {:>5} cached {:>12}",
        "prefixes",
        occ.prefix_entries,
        ByteSize::new(occ.prefix_bytes).to_string()
    )
    .unwrap();

    writeln!(out, "
kv serving:").unwrap();
    writeln!(out, "  local hits        {:>6}", stats.local_hits).unwrap();
    writeln!(out, "  remote fetches    {:>6}", stats.remote_fetches).unwrap();
    writeln!(out, "  disk fetches      {:>6}", stats.disk_fetches).unwrap();
    writeln!(out, "  recomputes        {:>6}", stats.recomputes).unwrap();
    writeln!(out, "  demote -> remote  {:>6}", stats.demote_to_remote).unwrap();
    writeln!(out, "  demote -> disk    {:>6}", stats.demote_to_disk).unwrap();
    writeln!(
        out,
        "  prefix hit rate   {:>6}  ({} hits / {} misses, {} evicted)",
        format!("{:.1}%", stats.prefix_hit_rate() * 100.0),
        stats.prefix_hits,
        stats.prefix_misses,
        stats.prefix_evictions
    )
    .unwrap();
    writeln!(out, "kv demotions: {}", engine.demotion_digest()).unwrap();

    writeln!(out, "
{}", dm.metrics()).unwrap();
    out
}

/// The `--timeline` report: runs the rack smoke scenario and renders its
/// merged per-window metric timeline as one sparkline row per series.
/// Worker count never changes the merged timeline, so the output is
/// byte-identical across machines and `bench_jobs` values.
fn run_timeline_report() -> String {
    let config = RackConfig::smoke();
    let report = run_rack(&config, dmem_bench::bench_jobs());
    let timeline = &report.timeline;
    let mut out = String::new();
    writeln!(out, "dmem-top — rack timeline (virtual time)").unwrap();
    writeln!(
        out,
        "run: rack smoke, {} hosts / {} shards, {} windows of {} ns",
        report.hosts,
        report.shards,
        timeline.windows.len(),
        config.timeline_window.as_nanos()
    )
    .unwrap();
    for (name, is_histogram) in timeline.series_names() {
        if is_histogram {
            let p99 = timeline.p99_series(&name);
            let total: u64 = timeline.count_series(&name).iter().sum();
            writeln!(
                out,
                "  {name:<26} {} p99<= {} ns, n={total}",
                sparkline(&p99),
                p99.iter().copied().max().unwrap_or(0)
            )
            .unwrap();
        } else {
            let series = timeline.counter_series(&name);
            let total: u64 = series.iter().sum();
            writeln!(out, "  {name:<26} {} total={total}", sparkline(&series)).unwrap();
        }
    }
    out
}

/// The `--alerts` report: replays one chaos `--faults` seed and prints
/// the alert engine's firing/resolved edges with their digest — the
/// exact log `chaos --faults` emits per clean seed.
fn run_alerts_report() -> String {
    let config = ChaosConfig {
        fabric_faults: true,
        ..ChaosConfig::default()
    };
    let settings = ChaosSettings {
        faults: true,
        ..ChaosSettings::default()
    };
    let mut out = String::new();
    writeln!(out, "dmem-top — chaos alert log (virtual time)").unwrap();
    writeln!(
        out,
        "run: chaos --faults seed 0x0, default schedule, 50 ms windows"
    )
    .unwrap();
    match run_seed(0, &config, &settings) {
        Ok(stats) => {
            writeln!(
                out,
                "alerts: {} ({} windows)",
                stats.alert_digest, stats.telemetry_windows
            )
            .unwrap();
            for line in &stats.alert_log {
                writeln!(out, "  {line}").unwrap();
            }
        }
        Err(report) => {
            writeln!(out, "UNEXPECTED VIOLATION:").unwrap();
            writeln!(out, "{report}").unwrap();
        }
    }
    out
}

/// The `--alloc` report: the same DetRng schedule replayed through an
/// [`ObjectHeap`] at object and page backing granularity, reduced to
/// the allocator's amplification / fragmentation accounting plus the
/// armed `alloc.*` counter family — `top` for the far-memory heap.
fn run_alloc_report() -> String {
    use memory_disaggregation::alloc::{Granularity, HeapConfig, ObjectHeap};

    const OPS: usize = 160;
    let run = |granularity: Granularity| {
        let mut config = dmem_types::ClusterConfig::small();
        // Exact byte accounting: stored length equals framed length.
        config.compression = CompressionMode::Off;
        let dm = std::sync::Arc::new(DisaggregatedMemory::new(config).unwrap());
        let server = dm.servers()[0];
        let mut heap = ObjectHeap::new(dm.clone(), server, HeapConfig::new(granularity));
        heap.arm_telemetry(dm.metrics());
        let mut rng = DetRng::new(0xa110c).fork("dmem_top.alloc");
        let mut live: Vec<u64> = Vec::new();
        for op in 0..OPS {
            let roll = rng.unit();
            if live.is_empty() || roll < 0.45 {
                let len = match rng.below(8) {
                    0..=4 => 16 + rng.below(240),
                    5..=6 => 256 + rng.below(1792),
                    _ => 4097 + rng.below(8192),
                };
                let data: Vec<u8> =
                    (0..len).map(|i| (op as u8).wrapping_add(i as u8)).collect();
                live.push(heap.alloc(&data).unwrap());
            } else if roll < 0.60 {
                let idx = rng.below(live.len());
                heap.free(live.swap_remove(idx)).unwrap();
            } else {
                let addr = live[rng.below(live.len())];
                heap.get(addr).unwrap();
            }
        }
        (heap.stats(), dm)
    };

    let (obj_stats, obj_dm) = run(Granularity::Object);
    let (page_stats, _page_dm) = run(Granularity::Page);

    let mut out = String::new();
    writeln!(out, "dmem-top — object allocator (virtual time)").unwrap();
    writeln!(
        out,
        "run: DetRng 0xa110c, {OPS} ops, object vs page backing on one server"
    )
    .unwrap();
    writeln!(out, "
heap accounting:").unwrap();
    writeln!(
        out,
        "  {:<8} {:>12} {:>12} {:>12} {:>8} {:>9} {:>9}",
        "backing", "live", "slot", "reserved", "amp", "int frag", "tot frag"
    )
    .unwrap();
    for stats in [&obj_stats, &page_stats] {
        writeln!(
            out,
            "  {:<8} {:>12} {:>12} {:>12} {:>7.2}x {:>8.1}% {:>8.1}%",
            stats.granularity.label(),
            ByteSize::new(stats.live_bytes).to_string(),
            ByteSize::new(stats.slot_bytes).to_string(),
            ByteSize::new(stats.reserved_bytes).to_string(),
            stats.amplification(),
            stats.internal_frag_pct(),
            stats.total_frag_pct(),
        )
        .unwrap();
    }

    writeln!(out, "
alloc.* counters (object heap, armed registry):").unwrap();
    for (name, value) in obj_dm.metrics().counter_snapshot() {
        if name.starts_with("alloc.") {
            writeln!(out, "  {name:<28} {value:>12}").unwrap();
        }
    }
    for (name, value) in obj_dm.metrics().gauge_snapshot() {
        if name.starts_with("alloc.") {
            writeln!(out, "  {name:<28} {value:>12}").unwrap();
        }
    }
    writeln!(
        out,
        "ops: alloc {} / free {} / get {} / update {}",
        obj_stats.ops.alloc, obj_stats.ops.free, obj_stats.ops.get, obj_stats.ops.update
    )
    .unwrap();
    out
}

/// The `--cxl` report: one DetRng schedule against the CXL pooled
/// tier — PGAS puts through `TierPreference::Cxl`, a handful of remote
/// fetch-add / CAS cells, then a pool-node outage window replayed
/// against the write-behind disk shadow — reduced to per-pool-node
/// occupancy, the atomic cells and the `cxl.*` counter family.
fn run_cxl_report() -> String {
    const PUTS: u64 = 48;
    const SLOTS: usize = 3;
    const OUTAGE_NODE: u16 = 1;

    let mut config = dmem_types::ClusterConfig::small();
    // Exact byte accounting in the occupancy rows: stored length equals
    // framed length, no compression residue.
    config.compression = CompressionMode::Off;
    config.cxl = CxlPoolConfig::new(4, ByteSize::from_kib(256));
    let dm = std::sync::Arc::new(DisaggregatedMemory::new(config).unwrap());
    let server = dm.servers()[0];
    let pool = dm.cxl_pool().expect("cxl tier enabled").clone();

    // Deterministic payloads: the outage replay re-reads every key and
    // verifies the shadow copy byte-for-byte.
    let payload = |key: u64, len: usize| -> Vec<u8> {
        (0..len)
            .map(|i| (key.wrapping_mul(0x9e37).wrapping_add(i as u64) >> 5) as u8)
            .collect()
    };
    let mut rng = DetRng::new(0xc81).fork("dmem_top.cxl");
    let mut lens: Vec<usize> = Vec::new();
    for key in 0..PUTS {
        let len = match rng.below(4) {
            0 => 64 + rng.below(192),
            1..=2 => 512 + rng.below(1536),
            _ => 4096 + rng.below(4096),
        };
        dm.put_pref(server, key, payload(key, len), TierPreference::Cxl)
            .unwrap();
        lens.push(len);
    }

    // Remote atomics: a few counter cells hammered with fetch-adds,
    // then one CAS handoff on slot 0.
    let cells: Vec<_> = (0..SLOTS)
        .map(|slot| pool.alloc_counter(0x510_7000 ^ slot as u64).unwrap())
        .collect();
    for _ in 0..24 {
        let slot = rng.below(SLOTS);
        pool.fetch_add(cells[slot], 1 + rng.below(9) as u64).unwrap();
    }
    let observed = pool.counter_value(cells[0]).unwrap();
    let swapped = pool.cas(cells[0], observed, observed * 2).unwrap() == observed;

    // Outage window: every read still lands (shadow failover), byte-exact.
    pool.set_pool_node_down(OUTAGE_NODE);
    for key in 0..PUTS {
        let got = dm.get(server, key).unwrap();
        assert_eq!(got, payload(key, lens[key as usize]), "shadow read at key {key}");
    }
    let shadow_reads = dm.metrics().counter("cxl.failover.reads").get();
    pool.set_pool_node_up(OUTAGE_NODE);

    let mut out = String::new();
    writeln!(out, "dmem-top — CXL memory pool (virtual time)").unwrap();
    writeln!(
        out,
        "run: DetRng 0xc81, {PUTS} PGAS puts, {SLOTS} atomic cells, pool-{OUTAGE_NODE} outage replay"
    )
    .unwrap();

    writeln!(out, "\ncxl pool (occupancy):").unwrap();
    for (node, used, down) in pool.occupancy() {
        writeln!(
            out,
            "  pool-{node}  {:>12} of {:>12}  {}",
            ByteSize::new(used).to_string(),
            pool.capacity_per_node().to_string(),
            if down { "DOWN" } else { "up" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "  {:>6}  {:>12} of {:>12}",
        "total",
        pool.used_total().to_string(),
        ByteSize::new(pool.capacity_per_node().as_u64() * u64::from(pool.pool_nodes()))
            .to_string()
    )
    .unwrap();

    writeln!(out, "\nremote atomics:").unwrap();
    for (slot, addr) in cells.iter().enumerate() {
        writeln!(
            out,
            "  slot {slot}  pool-{}  value {:>4}  rmw ops {:>3}",
            addr.pool_node(),
            pool.counter_value(*addr).unwrap(),
            pool.counter_ops(*addr)
        )
        .unwrap();
    }
    writeln!(
        out,
        "  cas handoff on slot 0: {}",
        if swapped { "installed" } else { "lost the race" }
    )
    .unwrap();

    writeln!(
        out,
        "\noutage replay: {PUTS} reads during pool-{OUTAGE_NODE} outage, {shadow_reads} served from the disk shadow, all byte-exact"
    )
    .unwrap();

    writeln!(out, "\ncxl.* counters (registry):").unwrap();
    for (name, value) in dm.metrics().counter_snapshot() {
        if name.starts_with("cxl.") {
            writeln!(out, "  {name:<28} {value:>12}").unwrap();
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--check-trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--check-trace needs a file argument");
            return ExitCode::FAILURE;
        };
        return match check_trace(path) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("check-trace FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let qos = args.iter().any(|a| a == "--qos");
    let kv = args.iter().any(|a| a == "--kv");
    let timeline = args.iter().any(|a| a == "--timeline");
    let alerts = args.iter().any(|a| a == "--alerts");
    let alloc = args.iter().any(|a| a == "--alloc");
    let cxl = args.iter().any(|a| a == "--cxl");
    let all = args.iter().any(|a| a == "--all");
    let telemetry = TelemetryArgs::parse(args.into_iter());
    let report = if all {
        // One pass over every section; each is independently
        // deterministic, so the concatenation is too (pinned by
        // results/dmem_top_all.txt).
        [
            run_report(&telemetry, true),
            run_kv_report(),
            run_timeline_report(),
            run_alerts_report(),
            run_alloc_report(),
            run_cxl_report(),
        ]
        .join("\n")
    } else if timeline {
        run_timeline_report()
    } else if alerts {
        run_alerts_report()
    } else if alloc {
        run_alloc_report()
    } else if cxl {
        run_cxl_report()
    } else if kv {
        run_kv_report()
    } else {
        run_report(&telemetry, qos)
    };
    print!("{report}");
    telemetry.write_metrics(&report);
    ExitCode::SUCCESS
}
