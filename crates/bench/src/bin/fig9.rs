//! Fig. 9: Memcached (ETC) throughput over time at the 50% configuration,
//! recovering from a cold start with the whole working set on the swap
//! device — FastSwap with PBS, FastSwap without PBS, Infiniswap.
//!
//! The paper plots 300 wall seconds for a 25 GB working set. Our scaled
//! working set recovers proportionally faster, so the timeline uses
//! proportionally finer buckets: 300 buckets cover the recovery the same
//! way the paper's 300 seconds do.
//!
//! Run with: `cargo run --release -p dmem-bench --bin fig9`

use dmem_bench::{par_map, Table};
use dmem_swap::{build_system_with_pages, SwapScale, SystemKind};
use dmem_sim::SimDuration;
use dmem_types::{CompressionMode, DistributionRatio, PageId};
use dmem_workloads::{catalog, KvWorkload};

const BUCKETS: usize = 300;

/// Runs the recovery and returns ops completed per bucket.
fn timeline(kind: SystemKind, scale: &SwapScale, horizon: SimDuration) -> Vec<u64> {
    let profile = catalog::by_name("Memcached").unwrap();
    let mut scale = scale.clone();
    scale.compute_per_access = SimDuration::from_micros(1); // KV op cost
    let mut engine =
        build_system_with_pages(kind, &scale, profile.compress_mean, profile.compress_spread)
            .unwrap();
    engine.preload_swapped(scale.working_set_pages).unwrap();
    let mut kv = KvWorkload::from_profile(&profile, scale.working_set_pages, scale.seed);
    let bucket_len = SimDuration::from_nanos(horizon.as_nanos() / BUCKETS as u64);
    let mut series = vec![0u64; BUCKETS];
    let start = engine.clock().now();
    loop {
        let elapsed = engine.clock().now() - start;
        if elapsed >= horizon {
            break;
        }
        let op = kv.next_op();
        engine
            .access(PageId::new(op.key()).pfn(), op.is_write())
            .unwrap();
        let bucket = (elapsed.as_nanos() / bucket_len.as_nanos().max(1)) as usize;
        series[bucket.min(BUCKETS - 1)] += 1;
    }
    series
}

fn main() {
    let mut scale = SwapScale::bench();
    scale.memory_fraction = 0.5;
    // The store's working set was swapped out to *cluster* memory (the
    // node pool is small), so recovery exercises the remote swap-in path
    // where batched fetches matter.
    scale.shared_donation = 0.05;
    // Horizon chosen so the slowest system is still visibly ramping at
    // the end, like Infiniswap in the paper's 300 s window.
    let horizon = SimDuration::from_millis(80);

    let systems = [
        ("FastSwap+PBS", SystemKind::fastswap_default()),
        (
            "FastSwap w/o PBS",
            SystemKind::FastSwap {
                ratio: DistributionRatio::FS_SM,
                compression: CompressionMode::FourGranularity,
                pbs: false,
            },
        ),
        ("Infiniswap", SystemKind::Infiniswap),
    ];

    let serieses: Vec<(&str, Vec<u64>)> = par_map(systems.to_vec(), |_, (label, kind)| {
        (label, timeline(kind, &scale, horizon))
    });

    let mut table = Table::new(
        "Fig. 9 — Memcached ETC throughput recovery (@50%, cold start); 300 scaled-time buckets",
        &["bucket", "FastSwap+PBS", "FastSwap w/o PBS", "Infiniswap"],
    );
    // Print every 10th bucket to keep the table readable; the CSV holds
    // every bucket.
    for b in 0..BUCKETS {
        if b % 10 == 0 {
            table.row([
                b.to_string(),
                serieses[0].1[b].to_string(),
                serieses[1].1[b].to_string(),
                serieses[2].1[b].to_string(),
            ]);
        }
    }
    table.emit("fig9");

    println!();
    for (label, series) in &serieses {
        let peak = *series.iter().max().unwrap_or(&1);
        let recover_at = series
            .iter()
            .position(|&v| v as f64 >= peak as f64 * 0.9)
            .unwrap_or(BUCKETS);
        let tail: u64 = series[BUCKETS - 30..].iter().sum::<u64>() / 30;
        println!(
            "{label}: peak {peak} ops/bucket, first reaches 90% of peak at bucket {recover_at}, \
             final-10% average {tail} ({:.0}% of peak)",
            tail as f64 / peak as f64 * 100.0
        );
    }
    println!("\nShape check (paper): PBS recovers to optimal throughput quickly; without");
    println!("PBS recovery takes several times longer; Infiniswap recovers slowest and");
    println!("ends the window below its optimum.");
}
