//! Extension (ROADMAP item 4): the RDMA / CXL / NVM crossover figure.
//!
//! The paper's §VI argues no single far-memory transport dominates:
//! RDMA pays a microsecond verb floor but streams large transfers at
//! full link bandwidth, a CXL memory pool does cacheline load/stores a
//! few hundred nanoseconds away but its per-line framing drags on bulk
//! moves, and local NVM is slower per byte than either yet holds
//! working sets that blow past what a pool or a donated receive buffer
//! can absorb. This experiment sweeps working-set size x access
//! granularity and drives the *same* deterministic fill-then-read
//! schedule through three clusters that differ only in tier
//! preference (CXL pool / remote RDMA / local NVM, each spilling to
//! disk on capacity). The reported metric is average read latency on
//! the virtual clock; the winner of every cell is named in the table.
//!
//! Acceptance: each backend must win at least one cell — CXL at small
//! granularity, RDMA on bulk transfers, NVM when the working set
//! exceeds pool and receive-buffer capacity — or the run exits
//! nonzero. This retires the old `ext_nvm_tier` two-way table, whose
//! device-model crossover had no self-assertion.
//!
//! Modes:
//!
//! * default — full sweep, writes `results/ext_crossover.csv`;
//! * `--smoke` — reduced CI-sized sweep, writes
//!   `results/ext_crossover_smoke.csv`; both modes self-assert;
//! * `--perf [--check BASELINE]` — wall-clock of the 4 KiB column,
//!   written to `results/BENCH_cxl.json`; with `--check`, fail on a
//!   > 3x regression against the committed baseline.
//!
//! Run with: `cargo run --release -p dmem-bench --bin ext_crossover`

use dmem_bench::{par_map, Table};
use dmem_core::{DisaggregatedMemory, TierPreference};
use dmem_sim::DetRng;
use dmem_types::{
    ByteSize, ClusterConfig, CompressionMode, CxlPoolConfig, DonationPolicy, NodeConfig,
    ServerConfig,
};
use std::process::ExitCode;

/// Sweep dimensions; `--smoke` shrinks both the working sets and every
/// tier capacity in proportion so the winner pattern is preserved.
struct Scale {
    /// The working set that fits every fast tier.
    small_ws: u64,
    /// The working set that overflows the CXL pool and the donated
    /// receive buffers but still fits the NVM devices.
    large_ws: u64,
    /// Per-pool-node CXL capacity (4 pool nodes).
    cxl_node: ByteSize,
    /// Per-node donated RDMA receive pool (4 nodes, triple-replicated
    /// remote entries).
    recv_pool: ByteSize,
    /// Per-node NVM device — sized to hold `large_ws` whole.
    nvm_pool: ByteSize,
    csv_name: &'static str,
}

const FULL: Scale = Scale {
    small_ws: 256 * 1024,
    large_ws: 8 * 1024 * 1024,
    cxl_node: ByteSize::from_kib(512),
    recv_pool: ByteSize::from_mib(1),
    nvm_pool: ByteSize::from_mib(16),
    csv_name: "ext_crossover",
};

const SMOKE: Scale = Scale {
    small_ws: 64 * 1024,
    large_ws: 1024 * 1024,
    cxl_node: ByteSize::from_kib(64),
    recv_pool: ByteSize::from_kib(256),
    nvm_pool: ByteSize::from_mib(2),
    csv_name: "ext_crossover_smoke",
};

/// Access granularities under test: a cacheline-scale object, one
/// page, and a bulk 64 KiB streaming transfer.
const GRANULARITIES: [usize; 3] = [64, 4096, 65536];

const BACKENDS: [(&str, TierPreference); 3] = [
    ("cxl", TierPreference::Cxl),
    ("rdma", TierPreference::Remote),
    ("nvm", TierPreference::Nvm),
];

/// Donation zero and compression off, so the tier under test is the
/// only thing a put or get touches; every tier spills to disk when its
/// capacity runs out, which is exactly the capacity wall the large
/// working set is built to hit.
fn cluster(scale: &Scale) -> ClusterConfig {
    ClusterConfig {
        nodes: 4,
        servers_per_node: 2,
        node: NodeConfig {
            dram: ByteSize::from_mib(64),
            slab_size: ByteSize::from_kib(64),
            send_pool: ByteSize::from_kib(512),
            recv_pool: scale.recv_pool,
            nvm_pool: scale.nvm_pool,
        },
        server: ServerConfig {
            memory: ByteSize::from_mib(2),
            donation: DonationPolicy::fixed(0.0),
        },
        compression: CompressionMode::Off,
        cxl: CxlPoolConfig::new(4, scale.cxl_node),
        ..ClusterConfig::small()
    }
}

/// Deterministic payload for `key`: derived from a per-sweep salt so
/// the read pass can verify every byte without storing the fill.
fn payload(salt: u64, key: u64, len: usize) -> Vec<u8> {
    let seed = salt ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (0..len)
        .map(|i| (seed.wrapping_add(i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d) >> 56) as u8)
        .collect()
}

/// Average read latency (virtual ns) of one fill-then-read pass of
/// `ws` bytes in `gran`-byte entries through one tier preference.
fn run(pref: TierPreference, ws: u64, gran: usize, scale: &Scale) -> u64 {
    let mut rng = DetRng::new(0xc805).fork(&format!("{pref:?}/{ws}/{gran}"));
    let salt = rng.below(1 << 62) as u64;
    let entries = (ws / gran as u64).max(1);
    let dm = DisaggregatedMemory::new(cluster(scale)).expect("cluster");
    let server = dm.servers()[0];
    for key in 0..entries {
        dm.put_pref(server, key, payload(salt, key, gran), pref).expect("fill");
    }
    let t0 = dm.clock().now();
    for key in 0..entries {
        let got = dm.get(server, key).expect("read");
        assert_eq!(got, payload(salt, key, gran), "payload integrity at key {key}");
    }
    dm.clock().now().duration_since(t0).as_nanos() / entries
}

fn us(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e3)
}

fn sweep(scale: &Scale) -> ExitCode {
    let mut table = Table::new(
        "Extension — RDMA vs CXL vs NVM crossover: average read latency by working set x granularity (§VI figure)",
        &[
            "working set",
            "granularity",
            "entries",
            "cxl us",
            "rdma us",
            "nvm us",
            "winner",
        ],
    );
    let working_sets: [(&str, u64); 2] =
        [("small", scale.small_ws), ("large", scale.large_ws)];
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for ws in 0..working_sets.len() {
        for gran in GRANULARITIES {
            cells.push((ws, gran));
        }
    }
    let results = par_map(cells.clone(), |_, (ws, gran)| {
        BACKENDS.map(|(_, pref)| run(pref, working_sets[ws].1, gran, scale))
    });
    let mut wins = [0usize; 3];
    for ((ws, gran), lat) in cells.iter().zip(&results) {
        let winner = (0..3).min_by_key(|&b| lat[b]).expect("three backends");
        wins[winner] += 1;
        let (ws_name, ws_bytes) = working_sets[*ws];
        table.row([
            format!("{} ({} KiB)", ws_name, ws_bytes / 1024),
            format!("{gran} B"),
            (ws_bytes / *gran as u64).max(1).to_string(),
            us(lat[0]),
            us(lat[1]),
            us(lat[2]),
            BACKENDS[winner].0.to_string(),
        ]);
    }
    table.emit(scale.csv_name);

    println!("\nReading: the same fill-then-read schedule runs through three tiers that");
    println!("differ only in transport. The CXL pool's sub-microsecond line transfers win");
    println!("small-granularity cells, RDMA's bandwidth amortizes its verb floor on bulk");
    println!("64 KiB moves, and once the working set overflows both the pool and the");
    println!("donated receive buffers, their reads degrade to the disk spill path while");
    println!("the NVM column — slower per byte, but big enough — wins on capacity. That");
    println!("three-way split is the paper's §VI claim that no transport dominates.");

    // Acceptance (ISSUE 10): every backend must win at least one cell.
    if wins.iter().all(|&w| w > 0) {
        println!(
            "crossover: PASS (cxl wins {}, rdma wins {}, nvm wins {} of {} cells)",
            wins[0],
            wins[1],
            wins[2],
            results.len()
        );
        ExitCode::SUCCESS
    } else {
        for (b, w) in BACKENDS.iter().zip(&wins) {
            println!("crossover: {} wins {w} cells", b.0);
        }
        println!("crossover: FAIL (every backend must win at least one cell)");
        ExitCode::FAILURE
    }
}

const TOLERANCE: f64 = 3.0;

/// Wall-clock mode: real elapsed time of the page-granularity column
/// on both working sets, `results/BENCH_cxl.json`, compared to a
/// committed baseline with the same gross 3x tolerance as `perf.rs`.
fn perf_mode(check: Option<&str>) -> ExitCode {
    let scenarios: [(&str, u64); 2] = [
        ("crossover_small_ws", FULL.small_ws),
        ("crossover_large_ws", FULL.large_ws),
    ];
    let mut json = String::from("[\n");
    let mut measured: Vec<(&str, f64)> = Vec::new();
    for (i, (name, ws)) in scenarios.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let lat: Vec<u64> = BACKENDS
            .iter()
            .map(|(_, pref)| run(*pref, *ws, 4096, &FULL))
            .collect();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:>20}: {wall_ms:>8.1} ms wall (cxl {} us, rdma {} us, nvm {} us)",
            us(lat[0]),
            us(lat[1]),
            us(lat[2])
        );
        json.push_str(&format!(
            "  {{\"scenario\": \"{name}\", \"wall_ms\": {wall_ms:.1}, \"cxl_read_us\": {}}}{}",
            us(lat[0]),
            if i + 1 < scenarios.len() { ",\n" } else { "\n" }
        ));
        measured.push((name, wall_ms));
    }
    json.push_str("]\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_cxl.json", &json).expect("write cxl perf json");
    println!("[written results/BENCH_cxl.json]");

    let Some(baseline_path) = check else {
        return ExitCode::SUCCESS;
    };
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let mut failed = false;
    for (name, wall_ms) in &measured {
        match baseline_wall_ms(&text, name) {
            Some(base_ms) => {
                let factor = wall_ms / base_ms.max(1e-9);
                let verdict = if factor > TOLERANCE { "REGRESSION" } else { "ok" };
                println!(
                    "check {name:>20}: {wall_ms:.1} ms vs baseline {base_ms:.1} ms (limit {TOLERANCE}x): {verdict}"
                );
                failed |= factor > TOLERANCE;
            }
            None => println!("check {name:>20}: no baseline entry, skipping"),
        }
    }
    if failed {
        eprintln!("ext_crossover: gross wall-clock regression (> {TOLERANCE}x) detected");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn baseline_wall_ms(text: &str, scenario: &str) -> Option<f64> {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"{scenario}\"")))?;
    let after = &line[line.find("\"wall_ms\"")? + "\"wall_ms\"".len()..];
    let number: String = after
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut perf = false;
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--perf" => perf = true,
            "--check" => check = Some(args.next().expect("--check needs a path")),
            other => panic!(
                "unknown argument {other} (usage: ext_crossover [--smoke] [--perf] [--check BASELINE])"
            ),
        }
    }
    if perf {
        perf_mode(check.as_deref())
    } else {
        sweep(if smoke { &SMOKE } else { &FULL })
    }
}
