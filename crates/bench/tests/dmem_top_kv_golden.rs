//! Golden-file test for `dmem_top --kv` (ISSUE 7, tiered KV serving).
//!
//! The per-tier KV occupancy report — tier rows, serving counters, the
//! prefix-hit rate and the demotion digest — runs entirely on the
//! virtual clock, so its output is byte-identical across machines,
//! build profiles and reruns. This test pins the whole report against a
//! committed fixture; any intentional change must regenerate it:
//!
//! ```sh
//! cargo run --release -q -p dmem-bench --bin dmem_top -- --kv \
//!     > results/dmem_top_kv.txt
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn kv_report_matches_committed_fixture() {
    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/dmem_top_kv.txt");
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));

    let output = Command::new(env!("CARGO_BIN_EXE_dmem_top"))
        .arg("--kv")
        .output()
        .expect("run dmem_top --kv");
    assert!(
        output.status.success(),
        "dmem_top --kv exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("report is UTF-8");

    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "report diverges from fixture at line {}", i + 1);
        }
        panic!(
            "report and fixture differ in length: {} vs {} bytes \
             (regenerate results/dmem_top_kv.txt if the change is intended)",
            actual.len(),
            expected.len()
        );
    }
}
