//! Golden-file test for `dmem_top --qos` (ROADMAP "telemetry").
//!
//! The per-tenant report — attribution table, metric keys, tenant rows
//! and the QoS decision digest — runs entirely on the virtual clock, so
//! its output is byte-identical across machines, build profiles and
//! reruns. This test pins the whole report against a committed fixture;
//! any intentional change to the report must regenerate it:
//!
//! ```sh
//! cargo run --release -q -p dmem-bench --bin dmem_top -- --qos \
//!     > results/dmem_top_qos.txt
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn qos_report_matches_committed_fixture() {
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/dmem_top_qos.txt");
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));

    let output = Command::new(env!("CARGO_BIN_EXE_dmem_top"))
        .arg("--qos")
        .output()
        .expect("run dmem_top --qos");
    assert!(
        output.status.success(),
        "dmem_top --qos exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("report is UTF-8");

    if actual != expected {
        // A byte-diff dump beats assert_eq!'s one-line mismatch for a
        // 40-line report: show the first diverging line.
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "report diverges from fixture at line {}", i + 1);
        }
        panic!(
            "report and fixture differ in length: {} vs {} bytes \
             (regenerate results/dmem_top_qos.txt if the change is intended)",
            actual.len(),
            expected.len()
        );
    }
}
