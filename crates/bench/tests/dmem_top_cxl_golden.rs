//! Golden-file test for `dmem_top --cxl` (ISSUE 10, CXL pooled tier).
//!
//! The CXL report — per-pool-node occupancy, the remote atomic cells,
//! the outage replay against the disk shadow and the armed `cxl.*`
//! counter family — replays one DetRng schedule entirely on the
//! virtual clock, so its output is byte-identical across machines,
//! build profiles and reruns. This test pins the whole report against
//! a committed fixture; any intentional change must regenerate it:
//!
//! ```sh
//! cargo run --release -q -p dmem-bench --bin dmem_top -- --cxl \
//!     > results/dmem_top_cxl.txt
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn cxl_report_matches_committed_fixture() {
    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/dmem_top_cxl.txt");
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));

    let output = Command::new(env!("CARGO_BIN_EXE_dmem_top"))
        .arg("--cxl")
        .output()
        .expect("run dmem_top --cxl");
    assert!(
        output.status.success(),
        "dmem_top --cxl exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("report is UTF-8");

    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "report diverges from fixture at line {}", i + 1);
        }
        panic!(
            "report and fixture differ in length: {} vs {} bytes \
             (regenerate results/dmem_top_cxl.txt if the change is intended)",
            actual.len(),
            expected.len()
        );
    }

    // Structural spot-checks so the fixture cannot silently pin a
    // degenerate report: every pool node listed, the outage actually
    // exercised the shadow path, atomics non-trivial.
    for marker in [
        "dmem-top — CXL memory pool",
        "cxl pool (occupancy):",
        "  pool-0",
        "  pool-3",
        "remote atomics:",
        "cas handoff on slot 0: installed",
        "cxl.failover.reads",
        "cxl.atomic.ops",
    ] {
        assert!(actual.contains(marker), "--cxl report lacks {marker:?}");
    }
    assert!(
        !actual.contains(" 0 served from the disk shadow"),
        "outage replay produced no shadow reads"
    );
}
