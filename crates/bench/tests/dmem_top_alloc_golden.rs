//! Golden-file test for `dmem_top --alloc` (ISSUE 9, object allocator).
//!
//! The allocator report — heap accounting rows at object and page
//! granularity plus the armed `alloc.*` counter family — replays one
//! DetRng schedule entirely on the virtual clock, so its output is
//! byte-identical across machines, build profiles and reruns. This
//! test pins the whole report against a committed fixture; any
//! intentional change must regenerate it:
//!
//! ```sh
//! cargo run --release -q -p dmem-bench --bin dmem_top -- --alloc \
//!     > results/dmem_top_alloc.txt
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn alloc_report_matches_committed_fixture() {
    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/dmem_top_alloc.txt");
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));

    let output = Command::new(env!("CARGO_BIN_EXE_dmem_top"))
        .arg("--alloc")
        .output()
        .expect("run dmem_top --alloc");
    assert!(
        output.status.success(),
        "dmem_top --alloc exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("report is UTF-8");

    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "report diverges from fixture at line {}", i + 1);
        }
        panic!(
            "report and fixture differ in length: {} vs {} bytes \
             (regenerate results/dmem_top_alloc.txt if the change is intended)",
            actual.len(),
            expected.len()
        );
    }

    // Structural spot-checks so the fixture cannot silently pin a
    // degenerate report: both granularity rows present, the armed
    // counter family non-trivial.
    for marker in [
        "dmem-top — object allocator",
        "heap accounting:",
        "  object ",
        "  page ",
        "alloc.amplification_bytes",
        "alloc.fragmentation_bp",
    ] {
        assert!(actual.contains(marker), "--alloc report lacks {marker:?}");
    }
}
