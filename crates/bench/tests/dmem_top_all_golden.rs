//! Golden-file test for `dmem_top --all` (ISSUE 8, observability).
//!
//! `--all` concatenates every report section in one pass — the traced
//! qos report, the tiered-KV report, the rack timeline sparklines, the
//! chaos alert log, and the object-allocator report. Each section runs
//! entirely on the virtual
//! clock, so the combined output is byte-identical across machines,
//! build profiles, worker counts and reruns. This test pins it against
//! a committed fixture; any intentional change must regenerate it:
//!
//! ```sh
//! cargo run --release -q -p dmem-bench --bin dmem_top -- --all \
//!     > results/dmem_top_all.txt
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn all_report_matches_committed_fixture() {
    let fixture_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/dmem_top_all.txt");
    let expected = std::fs::read_to_string(&fixture_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture_path.display()));

    let output = Command::new(env!("CARGO_BIN_EXE_dmem_top"))
        .arg("--all")
        .output()
        .expect("run dmem_top --all");
    assert!(
        output.status.success(),
        "dmem_top --all exited with {:?}:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let actual = String::from_utf8(output.stdout).expect("report is UTF-8");

    if actual != expected {
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(a, e, "report diverges from fixture at line {}", i + 1);
        }
        panic!(
            "report and fixture differ in length: {} vs {} bytes \
             (regenerate results/dmem_top_all.txt if the change is intended)",
            actual.len(),
            expected.len()
        );
    }

    // Structural spot-checks so the fixture cannot silently pin a
    // degenerate report: every section present, alerts firing.
    for marker in [
        "dmem-top — ",
        "tenants (qos):",
        "kv tiers (occupancy):",
        "rack timeline",
        "chaos alert log",
        "FIRING retry-backoff-burn",
        "FIRING retry-storm",
        "object allocator",
        "alloc.amplification_bytes",
    ] {
        assert!(actual.contains(marker), "--all report lacks {marker:?}");
    }
}
