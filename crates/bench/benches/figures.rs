//! Criterion harness over the figure kernels: one group per table/figure,
//! measuring the real (wall-clock) cost of regenerating each experiment's
//! core computation at reduced scale. The authoritative reproduction
//! output comes from the `fig*` binaries; these benches guard against
//! engine-performance regressions in the paths those binaries exercise.

use criterion::{criterion_group, criterion_main, Criterion};
use dmem_compress::{synth, PageCodec};
use dmem_rdd::job::{run_iterative_job, DatasetSize, JobSpec, SpillTier};
use dmem_sim::{DetRng, SimDuration};
use dmem_swap::{
    build_system, run_kv_throughput, run_ml_workload, SwapScale, SystemKind,
};
use dmem_types::CompressionMode;

fn small_scale() -> SwapScale {
    let mut scale = SwapScale::small();
    scale.working_set_pages = 256;
    scale
}

fn bench_fig3_kernel(c: &mut Criterion) {
    // Fig. 3 kernel: compress a page population and account class ratios.
    let mut rng = DetRng::new(5);
    let pages: Vec<Vec<u8>> = (0..64)
        .map(|_| synth::page_mixture(2.8, 0.9, synth::DEFAULT_ZERO_FRACTION, &mut rng))
        .collect();
    let codec = PageCodec::new(CompressionMode::FourGranularity);
    c.bench_function("fig3_aggregate_ratio_64pages", |b| {
        b.iter(|| codec.aggregate_ratio(pages.iter().map(Vec::as_slice)))
    });
}

fn bench_fig6_kernel(c: &mut Criterion) {
    // Fig. 6 kernel: a swap-in dominated sweep on FastSwap.
    let scale = small_scale();
    c.bench_function("fig6_recovery_sweep_fastswap", |b| {
        b.iter(|| {
            let mut engine = build_system(SystemKind::fastswap_default(), &scale).unwrap();
            engine.preload_swapped(scale.working_set_pages).unwrap();
            for pfn in 0..scale.working_set_pages {
                engine.access(pfn, false).unwrap();
            }
        })
    });
}

fn bench_fig7_kernel(c: &mut Criterion) {
    // Fig. 7 kernel: one ML completion-time run per system.
    let scale = small_scale();
    let mut group = c.benchmark_group("fig7_kernel");
    group.sample_size(10);
    for (name, kind) in [
        ("fastswap", SystemKind::fastswap_default()),
        ("infiniswap", SystemKind::Infiniswap),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| run_ml_workload(kind, "KMeans", &scale).unwrap())
        });
    }
    group.finish();
}

fn bench_fig8_kernel(c: &mut Criterion) {
    let scale = small_scale();
    let mut group = c.benchmark_group("fig8_kernel");
    group.sample_size(10);
    group.bench_function("memcached_fs_sm_1k_ops", |b| {
        b.iter(|| {
            run_kv_throughput(SystemKind::fastswap_default(), "Memcached", &scale, 1_000)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_fig10_kernel(c: &mut Criterion) {
    let spec = JobSpec {
        base_records: 600, // reduced from the figure's 6000 for wall-time
        ..JobSpec::named("KMeans").unwrap()
    };
    let mut group = c.benchmark_group("fig10_kernel");
    group.sample_size(10);
    group.bench_function("kmeans_medium_dahi", |b| {
        b.iter(|| run_iterative_job(&spec, DatasetSize::Medium, SpillTier::Dahi).unwrap())
    });
    group.finish();
}

fn bench_fig9_kernel(c: &mut Criterion) {
    use dmem_swap::run_kv_timeline;
    let scale = small_scale();
    let mut group = c.benchmark_group("fig9_kernel");
    group.sample_size(10);
    group.bench_function("memcached_recovery_timeline", |b| {
        b.iter(|| {
            run_kv_timeline(
                SystemKind::fastswap_default(),
                "Memcached",
                &scale,
                SimDuration::from_millis(5),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = bench_fig3_kernel, bench_fig6_kernel, bench_fig7_kernel,
              bench_fig8_kernel, bench_fig9_kernel, bench_fig10_kernel
}
criterion_main!(figures);
